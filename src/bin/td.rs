//! `td` — command-line front end for the token-dropping toolkit.
//!
//! Run `td --help` for the full usage text (mirrored in the README).
//! `<file>` may be `-` for stdin. Graph files are edge lists
//! (`td_graph::io`); game files use `td_core::game_io`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufReader, Read};
use token_dropping::assign::semi_matching::optimal_semi_matching;
use token_dropping::assign::AssignmentInstance;
use token_dropping::core::{game_io, lockstep, TokenGame};
use token_dropping::graph::{algo, io as gio, CsrGraph};
use token_dropping::local::Simulator;
use token_dropping::orient::phases::{solve_stable_orientation, PhaseConfig};
use token_dropping::orient::protocol::run_distributed;
use token_dropping::prelude::*;

const USAGE: &str =
    "usage: td <gen|info|orient|game|assign|bench|churn|fuzz|perf|serve|trace|compare|exp> ... \
     (td --help for details)";

const HELP: &str = "\
td — distributed token dropping, stable orientations, and semi-matchings
    (Brandt, Keller, Rybicki, Suomela, Uitto — SPAA 2021)

USAGE:
  td gen gnm <n> <m> [seed]            random G(n,m) edge list -> stdout
  td gen regular <n> <d> [seed]        random d-regular graph
  td gen tree <d> <depth>              perfect d-ary tree
  td gen comb <k>                      contention-comb token game (.tdg)
  td gen game <w1,w2,..> <deg> [seed]  random layered token game (.tdg)
  td info <file>                       graph statistics
  td orient <file> [--distributed]     stable orientation + verification
  td game <file>                       solve a token game + verification
  td assign <file> --customers <nc> [--bounded <k>] [--optimal]
                                       stable / k-bounded / optimal assignment
  td bench                             list the registered scenarios
  td bench <scenario> [--size N] [--seed S] [--threads T] [--shards K]
                                       run one scenario and report its cost;
                                       --shards K > 1 uses the sharded
                                       executor (same outputs, batched
                                       boundary delivery)
  td churn                             list the churn (dynamic) scenarios
  td churn <scenario> [--events N] [--size N] [--seed S] [--threads T]
           [--full] [--compare]        stream a churn trace through the
                                       incremental repair engine; --full uses
                                       the full-recompute fallback, --compare
                                       also measures from-scratch recompute
  td fuzz                              list the workload generator families
  td fuzz --budget N [--seed S]        run N seeded specs through the
                                       differential fuzz plane (all protocol
                                       stacks x all executors, verifier +
                                       metamorphic checks); failing specs are
                                       printed as repro lines and written to
                                       fuzz-failures.spec
  td fuzz --spec <spec>                replay one spec, e.g.
                                       'small-world:size=32:seed=7'
  td perf                              run the perf telemetry sweep
                                       (scenario x executor x size) and
                                       write the versioned BENCH_10.json
  td perf --list                       list the perf scenarios
  td perf [--scenario <name> [--sizes N,N,..]] [--seed S] [--threads T]
          [--shards K] [--out FILE] [--quick] [--repeat N]
                                       restrict / reshape the sweep
                                       (--sizes needs --scenario: size
                                       units differ per scenario); --quick
                                       runs the smallest size of each
                                       ladder (the CI smoke); --repeat N
                                       takes min-of-N wall timing per point
                                       (default 3, 1 under --quick)
  td serve                             list the servable churn families
  td serve <family> [--size N] [--seed S] [--rate R] [--budget B]
           [--threads T] [--shards K] [--queue Q] [--out FILE]
                                       long-running daemon: stream a seeded
                                       open-loop event mix through a live
                                       repair engine, then report events/sec
                                       sustained, the saturation rate (where
                                       the repair plane falls behind), and
                                       p50/p99/p999 repair latency; --rate 0
                                       (the default) emits unpaced, --out
                                       writes the td-serve/v1 JSON report
  td trace                             list the recorded workload shapes
  td trace record --spec <spec> [--out FILE]
  td trace record --shape <name> [--size N] [--seed S] [--events N] [--out FILE]
                                       record a churn event stream into a
                                       portable td-trace/v1 file: either a
                                       spec's own seeded mix, or a registered
                                       shape (diurnal, rack-burst, drain-wave,
                                       flash-crowd, hotspot)
  td trace info <file>                 header, event mix, and fingerprint
  td trace replay <file> [--consumer engine|differential|serve|all]
           [--threads T] [--shards K] [--full] [--rate R]
                                       replay a trace through the repair
                                       engines (any executor), the fuzz
                                       differential, or a live serve session;
                                       every consumer reports the same
                                       solution fingerprint
  td trace convert <file> --seed S [--out FILE]
                                       re-derive the same recording under a
                                       new seed
  td compare [--families f1,f2,..] [--protocols p1,p2,..] [--size N]
             [--seed S] [--threads T] [--shards K] [--events N]
             [--trace FILE]... [--out FILE]
                                       race the competing balancers (token
                                       dropping vs rotor-router vs matching
                                       exchange) over the generator families
                                       and/or recorded traces: convergence
                                       rounds, messages, tokens moved, and
                                       final discrepancy per protocol, with
                                       bit-identity checked across the
                                       sequential/parallel/sharded executor
                                       grid; --out writes the td-compare/v1
                                       JSON report
  td exp                               list the registered experiments
                                       (same as td exp --list)
  td exp run [id..] [--quick] [--force] [--results DIR] [--seed S]
             [--threads T] [--shards K] [--repeat N]
                                       run experiments through the results
                                       cache: configurations whose
                                       results/<exp>/<key>.json already
                                       exists are skipped untouched,
                                       --force re-executes, and
                                       results/manifest.json records the
                                       hit/miss split; no ids = all,
                                       --quick is the kick-tires tier
                                       (small sizes, 2x2 grid, repeat 1)
  td exp render [id..] [--quick] [--results DIR] [--plots DIR]
                [--bench FILE] [--experiments-md FILE] [--seed S]
                [--threads T] [--shards K] [--repeat N]
                                       regenerate the derived artifacts
                                       from a warm cache: deterministic
                                       SVG plots under --plots (default
                                       plots/), generated markdown tables
                                       spliced between the
                                       <!-- exp:<id>:begin/end --> markers
                                       of --experiments-md, and (with the
                                       perf experiment) the td-perf/v1
                                       benchmark file at --bench; pass the
                                       exact flags the cache was run with
  td --help | -h                       this text

FILES:
  <file> may be '-' for stdin. Graphs are whitespace edge lists with an
  'n m' header; token games use the .tdg format of td_core::game_io.

EXAMPLES:
  td gen gnm 30 75 7 | td orient -
  td gen comb 5 | td game -
  td bench server-farm --size 24 --seed 3
  td churn rolling-restart --events 20 --compare
  td fuzz --budget 64 --seed 7
  td serve churn-orient --size 48 --rate 2000 --budget 256
  td trace record --shape rack-burst | td trace replay - --consumer all
  td compare --families grid,torus,rotor --size 16 --threads 4 --shards 3
  td exp run e17 e21 --quick && td exp render e17 e21 --quick
";

/// Restore the default SIGPIPE disposition. Rust ignores SIGPIPE at
/// startup, turning `td gen ... | head` into a broken-pipe panic; a
/// pipeline-first CLI should die quietly like every other Unix filter.
#[cfg(unix)]
fn reset_sigpipe() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGPIPE: i32 = 13;
    const SIG_DFL: usize = 0;
    unsafe {
        signal(SIGPIPE, SIG_DFL);
    }
}

#[cfg(not(unix))]
fn reset_sigpipe() {}

fn main() {
    reset_sigpipe();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args);
    std::process::exit(code);
}

fn run(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | Some("help") => {
            print!("{HELP}");
            0
        }
        Some("gen") => cmd_gen(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("orient") => cmd_orient(&args[1..]),
        Some("game") => cmd_game(&args[1..]),
        Some("assign") => cmd_assign(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("churn") => cmd_churn(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("perf") => cmd_perf(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("exp") => cmd_exp(&args[1..]),
        Some(other) => {
            eprintln!("td: unknown subcommand '{other}'");
            eprintln!("{USAGE}");
            2
        }
        None => {
            eprintln!("{USAGE}");
            2
        }
    }
}

/// The numeric/boolean flags shared by the scenario-running subcommands
/// (`td bench`, `td churn`). One parser, so flag semantics cannot drift
/// between the two.
struct RunFlags {
    size: u32,
    events: u32,
    seed: u64,
    threads: usize,
    shards: usize,
    full: bool,
    compare: bool,
}

impl RunFlags {
    fn new(default_size: u32, default_events: u32) -> Self {
        RunFlags {
            size: default_size,
            events: default_events,
            seed: 42,
            threads: 1,
            shards: 1,
            full: false,
            compare: false,
        }
    }

    /// Parses `args`, accepting `--size/--seed/--threads` always and the
    /// flags listed in `extra` additionally. Returns `Err(2)` (the exit
    /// code) after printing a message on any malformed or unknown flag.
    fn parse(&mut self, cmd: &str, args: &[String], extra: &[&str]) -> Result<(), i32> {
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let known_extra = extra.contains(&flag);
            match flag {
                "--full" if known_extra => {
                    self.full = true;
                    i += 1;
                }
                "--compare" if known_extra => {
                    self.compare = true;
                    i += 1;
                }
                "--size" | "--seed" | "--threads" | "--events" | "--shards"
                    if (flag != "--events" && flag != "--shards") || known_extra =>
                {
                    let Some(raw) = args.get(i + 1) else {
                        eprintln!("{cmd}: {flag} needs an integer");
                        return Err(2);
                    };
                    match flag {
                        "--size" => match raw.parse() {
                            Ok(v) => self.size = v,
                            Err(_) => {
                                eprintln!("{cmd}: --size needs an integer");
                                return Err(2);
                            }
                        },
                        "--events" => match raw.parse() {
                            Ok(v) => self.events = v,
                            Err(_) => {
                                eprintln!("{cmd}: --events needs an integer");
                                return Err(2);
                            }
                        },
                        "--seed" => match raw.parse() {
                            Ok(v) => self.seed = v,
                            Err(_) => {
                                eprintln!("{cmd}: --seed needs an integer");
                                return Err(2);
                            }
                        },
                        "--shards" => match raw.parse() {
                            Ok(v) if v >= 1 => self.shards = v,
                            _ => {
                                eprintln!("{cmd}: --shards needs an integer >= 1");
                                return Err(2);
                            }
                        },
                        _ => match raw.parse() {
                            Ok(v) if v >= 1 => self.threads = v,
                            _ => {
                                eprintln!("{cmd}: --threads needs an integer >= 1");
                                return Err(2);
                            }
                        },
                    }
                    i += 2;
                }
                other => {
                    eprintln!("{cmd}: unknown flag '{other}'");
                    return Err(2);
                }
            }
        }
        Ok(())
    }
}

fn cmd_bench(args: &[String]) -> i32 {
    use td_bench::scenario;
    let Some(name) = args.first().map(String::as_str) else {
        println!("registered scenarios:\n");
        print!("{}", scenario::listing());
        println!("\nrun one with: td bench <name> [--size N] [--seed S] [--threads T]");
        return 0;
    };
    let Some(sc) = scenario::find(name) else {
        eprintln!("td bench: unknown scenario '{name}'; registered:\n");
        eprint!("{}", scenario::listing());
        return 2;
    };
    let mut flags = RunFlags::new(sc.default_size(), 0);
    if let Err(code) = flags.parse("td bench", &args[1..], &["--shards"]) {
        return code;
    }
    let (size, seed, threads, shards) = (flags.size, flags.seed, flags.threads, flags.shards);
    // `--shards 1` is exactly the default (unsharded) path; outputs are
    // bit-identical across all three executors either way.
    let sim = if shards > 1 {
        Simulator::sharded(shards, threads)
    } else if threads > 1 {
        Simulator::parallel(threads)
    } else {
        Simulator::sequential()
    };
    let rep = sc.run(size, seed, &sim);
    println!("scenario:   {} ({})", rep.scenario, sc.kind().label());
    if shards > 1 {
        println!("executor:   sharded ({shards} shards, {threads} threads)");
    }
    println!(
        "instance:   n = {}, m = {}, size = {}, seed = {}",
        rep.nodes, rep.edges, rep.size, rep.seed
    );
    println!("rounds:     {}", rep.rounds);
    println!("messages:   {}", rep.messages);
    println!("wall time:  {:.3} ms", rep.wall.as_secs_f64() * 1e3);
    for (k, v) in &rep.notes {
        println!("  {k}: {v}");
    }
    println!("verified:   ok");
    0
}

fn cmd_churn(args: &[String]) -> i32 {
    use td_bench::churn;
    use token_dropping::local::churn::RepairMode;
    let Some(name) = args.first().map(String::as_str) else {
        println!("registered churn scenarios:\n");
        print!("{}", churn::churn_listing());
        println!(
            "\nrun one with: td churn <name> [--events N] [--size N] [--seed S] [--threads T]"
        );
        return 0;
    };
    let Some(sc) = churn::find_churn(name) else {
        eprintln!("td churn: unknown scenario '{name}'; registered:\n");
        eprint!("{}", churn::churn_listing());
        return 2;
    };
    let mut flags = RunFlags::new(sc.default_size(), sc.default_events());
    if let Err(code) = flags.parse("td churn", &args[1..], &["--events", "--full", "--compare"]) {
        return code;
    }
    let mode = if flags.full {
        RepairMode::FullRecompute
    } else {
        RepairMode::Incremental
    };
    let rep = sc.run(
        flags.size,
        flags.events,
        flags.seed,
        flags.threads,
        mode,
        flags.compare,
    );
    println!(
        "scenario:   {} ({}, churn)",
        rep.scenario,
        sc.kind().label()
    );
    println!(
        "instance:   n = {}, m = {}, size = {}, seed = {}",
        rep.nodes, rep.edges, rep.size, rep.seed
    );
    println!(
        "events:     {} applied, every repair verified stable",
        rep.events
    );
    let per = |x: u64| {
        if rep.events == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", x as f64 / rep.events as f64)
        }
    };
    println!(
        "repair:     {} rounds, {} messages, {} node-steps",
        rep.repair.rounds, rep.repair.messages, rep.repair.node_steps
    );
    println!(
        "per event:  {} rounds, {} messages, {} node-steps",
        per(rep.repair.rounds as u64),
        per(rep.repair.messages),
        per(rep.repair.node_steps)
    );
    if let Some(rec) = &rep.recompute {
        println!(
            "recompute:  {} rounds, {} messages, {} node-steps (from scratch per event)",
            rec.rounds, rec.messages, rec.node_steps
        );
        if rep.repair.node_steps > 0 {
            println!(
                "advantage:  {:.1}x fewer node-steps than recompute",
                rec.node_steps as f64 / rep.repair.node_steps as f64
            );
        }
    }
    println!("wall time:  {:.3} ms", rep.wall.as_secs_f64() * 1e3);
    for (k, v) in &rep.notes {
        println!("  {k}: {v}");
    }
    println!("verified:   ok");
    0
}

fn cmd_fuzz(args: &[String]) -> i32 {
    use td_bench::fuzz;
    use td_bench::spec::{self, WorkloadSpec};
    // `td fuzz` with no arguments lists the generator families.
    if args.is_empty() {
        println!("workload generator families:\n");
        print!("{}", spec::family_listing());
        println!(
            "\nrun a bounded fuzz with: td fuzz --budget N [--seed S]\n\
             replay one spec with:    td fuzz --spec '<family>:size=N:seed=S[:param=v]*'"
        );
        return 0;
    }
    let mut budget: usize = 32;
    let mut seed: u64 = 42;
    let mut corpus_flags = false;
    let mut one_spec: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) if v >= 1 => {
                    budget = v;
                    corpus_flags = true;
                    i += 2;
                }
                _ => {
                    eprintln!("td fuzz: --budget needs an integer >= 1");
                    return 2;
                }
            },
            "--seed" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) => {
                    seed = v;
                    corpus_flags = true;
                    i += 2;
                }
                None => {
                    eprintln!("td fuzz: --seed needs an integer");
                    return 2;
                }
            },
            "--spec" => match args.get(i + 1) {
                Some(s) => {
                    one_spec = Some(s.clone());
                    i += 2;
                }
                None => {
                    eprintln!("td fuzz: --spec needs a spec string");
                    return 2;
                }
            },
            other => {
                eprintln!("td fuzz: unknown flag '{other}'");
                return 2;
            }
        }
    }
    // A spec string is already fully seeded and sized; silently ignoring
    // the corpus flags next to it would fake coverage, so reject the mix.
    if one_spec.is_some() && corpus_flags {
        eprintln!(
            "td fuzz: --spec replays one exact spec; --budget/--seed do not \
             apply (put seed=… inside the spec string)"
        );
        return 2;
    }
    let specs: Vec<WorkloadSpec> = match one_spec {
        Some(s) => match WorkloadSpec::parse(&s) {
            Ok(spec) => vec![spec],
            Err(e) => {
                eprintln!("td fuzz: bad spec '{s}': {e}");
                eprintln!("families:\n{}", spec::family_listing());
                return 2;
            }
        },
        None => fuzz::corpus(budget, seed),
    };
    let t0 = std::time::Instant::now();
    let mut failures: Vec<(WorkloadSpec, String)> = Vec::new();
    let mut passed = 0usize;
    for spec in &specs {
        match fuzz::check(spec) {
            Ok(rep) => {
                passed += 1;
                println!(
                    "ok   {spec}  (n = {}, m = {}, rounds = {}, messages = {}, {} executor/mode points)",
                    rep.nodes, rep.edges, rep.rounds, rep.messages, rep.compared
                );
            }
            Err(e) => {
                println!("FAIL {spec}: {e}");
                failures.push((spec.clone(), e));
            }
        }
    }
    println!(
        "\n{passed}/{} specs clean in {:.2} s",
        specs.len(),
        t0.elapsed().as_secs_f64()
    );
    if failures.is_empty() {
        return 0;
    }
    eprintln!("\n{} failing spec(s); repro lines:", failures.len());
    let mut file = String::new();
    for (spec, e) in &failures {
        eprintln!("  {}   # {e}", fuzz::repro_line(spec));
        file.push_str(&format!("{spec}\n"));
    }
    // One spec per line, replayable with `td fuzz --spec` (and by the
    // regression-corpus test once checked in under tests/corpus/).
    if let Err(e) = std::fs::write("fuzz-failures.spec", file) {
        eprintln!("td fuzz: cannot write fuzz-failures.spec: {e}");
    } else {
        eprintln!("failing specs written to fuzz-failures.spec");
    }
    1
}

fn cmd_perf(args: &[String]) -> i32 {
    use td_bench::perf::{self, SweepConfig};
    let mut cfg = SweepConfig::default();
    let mut out_path = String::from("BENCH_10.json");
    // Pre-scan the perf-specific flags; everything else goes through the
    // shared RunFlags parser so --seed/--threads/--shards keep exactly the
    // bench/churn validation semantics (exit 2 on 0/garbage).
    let mut rest: Vec<String> = Vec::new();
    // `--list` is honored only after the whole command line validates, so
    // `td perf --threads 0 --list` still exits 2 like every other
    // malformed invocation.
    let mut want_list = false;
    // `--repeat N`: min-of-N wall timing for every point. Deferred so
    // `--quick` (which implies repeat 1, like `SweepConfig::quick()`) and
    // an explicit `--repeat` compose in either flag order.
    let mut repeat_flag: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                want_list = true;
                i += 1;
            }
            "--quick" => {
                cfg.quick = true;
                i += 1;
            }
            "--scenario" => match args.get(i + 1) {
                Some(name) => {
                    cfg.scenario = Some(name.clone());
                    i += 2;
                }
                None => {
                    eprintln!("td perf: --scenario needs a name (see td perf --list)");
                    return 2;
                }
            },
            "--out" => match args.get(i + 1) {
                Some(p) => {
                    out_path = p.clone();
                    i += 2;
                }
                None => {
                    eprintln!("td perf: --out needs a file path");
                    return 2;
                }
            },
            "--sizes" => {
                let parsed: Option<Vec<u32>> = args.get(i + 1).and_then(|raw| {
                    raw.split(',')
                        .map(|p| p.trim().parse::<u32>().ok().filter(|&v| v >= 1))
                        .collect()
                });
                match parsed {
                    Some(sizes) if !sizes.is_empty() => {
                        cfg.sizes = Some(sizes);
                        i += 2;
                    }
                    _ => {
                        eprintln!("td perf: --sizes needs a comma-separated list of integers >= 1");
                        return 2;
                    }
                }
            }
            "--repeat" => match args.get(i + 1).and_then(|raw| raw.parse::<usize>().ok()) {
                Some(n) if n >= 1 => {
                    repeat_flag = Some(n);
                    i += 2;
                }
                _ => {
                    eprintln!("td perf: --repeat needs an integer >= 1");
                    return 2;
                }
            },
            // `--size` is the one-shot knob of bench/churn; perf sweeps a
            // ladder, so steer the caller instead of silently accepting it.
            "--size" => {
                eprintln!(
                    "td perf: unknown flag '--size' (perf sweeps a ladder: use --sizes N,N,..)"
                );
                return 2;
            }
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    let mut flags = RunFlags::new(0, 0);
    flags.threads = cfg.threads;
    flags.shards = cfg.shards;
    flags.seed = cfg.seed;
    if let Err(code) = flags.parse("td perf", &rest, &["--shards"]) {
        return code;
    }
    cfg.threads = flags.threads;
    cfg.shards = flags.shards;
    cfg.seed = flags.seed;
    cfg.repeat = repeat_flag.unwrap_or(if cfg.quick { 1 } else { cfg.repeat });
    // `size` means different things per scenario (nodes, side, servers…):
    // one list applied to every ladder would build absurd instances
    // (a 131072×131072 torus). Overriding sizes requires naming the
    // scenario the numbers are meant for.
    if cfg.sizes.is_some() && cfg.scenario.is_none() {
        eprintln!(
            "td perf: --sizes overrides one scenario's ladder; pair it with \
             --scenario <name> (size units differ per scenario)"
        );
        return 2;
    }
    if want_list {
        println!("perf scenarios:\n");
        print!("{}", perf::listing());
        println!("\nrun the sweep with: td perf [--scenario <name> [--sizes N,N,..]]");
        return 0;
    }
    let t0 = std::time::Instant::now();
    let report = match perf::run_sweep(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("td perf: {e}");
            // Unknown scenario names are usage errors; divergences and
            // verifier failures are runtime failures.
            return if e.contains("unknown perf scenario") {
                2
            } else {
                1
            };
        }
    };
    print!("{}", perf::summary_table(&report));
    for sc in perf::REGISTRY {
        if let Some(x) = report.sparse_speedup(sc.name) {
            println!(
                "sparse speedup ({}, sharded(1,1) vs sequential): {x:.2}x",
                sc.name
            );
        }
        if let Some(x) = report.parallel_speedup(sc.name) {
            println!(
                "parallel speedup ({}, parallel({}) vs sequential): {x:.2}x",
                sc.name, report.threads
            );
        }
    }
    let json = perf::write_json(&report);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("td perf: cannot write {out_path}: {e}");
        return 1;
    }
    println!(
        "\n{} points ({} schema) written to {out_path} in {:.2} s",
        report.points.len(),
        perf::SCHEMA,
        t0.elapsed().as_secs_f64()
    );
    0
}

fn cmd_serve(args: &[String]) -> i32 {
    use td_bench::serve::{self, ServeConfig};
    let Some(name) = args.first().map(String::as_str) else {
        println!("servable churn families:\n");
        for f in serve::churn_families() {
            println!("  {f}");
        }
        println!("\nrun one with: td serve <family> [--size N] [--seed S] [--rate R] [--budget B]");
        return 0;
    };
    if name.starts_with('-') {
        eprintln!("td serve: first argument must be a churn family (run td serve for the list)");
        return 2;
    }
    let mut cfg = match ServeConfig::new(name) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("td serve: {e}");
            return 2;
        }
    };
    // Pre-scan the serve-specific flags; everything else goes through the
    // shared RunFlags parser so --size/--seed/--threads/--shards keep
    // exactly the bench/churn validation semantics (exit 2 on garbage).
    let mut out_path: Option<String> = None;
    let mut budget_req: Option<u64> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--rate" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) => {
                    cfg.rate = v;
                    i += 2;
                }
                None => {
                    eprintln!("td serve: --rate needs an integer (events/sec; 0 = unpaced)");
                    return 2;
                }
            },
            // Parsed wide (u64) so absurd requests are judged as given,
            // not masked by a narrowing parse failure.
            "--budget" => match args.get(i + 1).and_then(|r| r.parse::<u64>().ok()) {
                Some(v) if v >= 1 => {
                    budget_req = Some(v);
                    i += 2;
                }
                _ => {
                    eprintln!("td serve: --budget needs an integer >= 1");
                    return 2;
                }
            },
            "--queue" => match args.get(i + 1).and_then(|r| r.parse::<usize>().ok()) {
                Some(v) if v >= 1 => {
                    cfg.queue = v;
                    i += 2;
                }
                _ => {
                    eprintln!("td serve: --queue needs an integer >= 1");
                    return 2;
                }
            },
            "--out" => match args.get(i + 1) {
                Some(p) => {
                    out_path = Some(p.clone());
                    i += 2;
                }
                None => {
                    eprintln!("td serve: --out needs a file path");
                    return 2;
                }
            },
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    let mut flags = RunFlags::new(cfg.spec.size, 0);
    flags.seed = cfg.spec.seed;
    if let Err(code) = flags.parse("td serve", &rest, &["--shards"]) {
        return code;
    }
    cfg.spec = cfg.spec.with_size(flags.size).with_seed(flags.seed);
    cfg.threads = flags.threads;
    cfg.shards = flags.shards;
    // A degenerate spec (size 0, out-of-range params) is a usage error,
    // not a runtime failure — reject it before spinning up the daemon.
    if let Err(e) = cfg.spec.validate() {
        eprintln!("td serve: {e}");
        return 2;
    }
    // Absurd --rate/--budget pairs are usage errors too: a schedule whose
    // last tick runs past the u64 nanosecond horizon would stall on a
    // saturated offset instead of pacing.
    if let Some(b) = budget_req {
        if serve::schedule_overflows(cfg.rate, b) {
            eprintln!(
                "td serve: --rate {} with --budget {b} overflows the tick schedule \
                 (last emission would be past the u64 nanosecond horizon)",
                cfg.rate
            );
            return 2;
        }
        match u32::try_from(b) {
            Ok(v) => cfg.budget = v,
            Err(_) => {
                eprintln!(
                    "td serve: --budget {b} exceeds the supported maximum {}",
                    u32::MAX
                );
                return 2;
            }
        }
    }
    let report = match serve::serve(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("td serve: {e}");
            return 1;
        }
    };
    report.summary_table().print();
    if let Some(path) = out_path {
        let json = serve::write_json(&report);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("td serve: cannot write {path}: {e}");
            return 1;
        }
        println!("\n{} report written to {path}", serve::SCHEMA);
    }
    0
}

fn cmd_trace(args: &[String]) -> i32 {
    use td_bench::trace;
    match args.first().map(String::as_str) {
        None => {
            println!("recorded workload shapes:\n");
            print!("{}", trace::shape_listing());
            println!(
                "\nrecord one with: td trace record --shape <name> [--size N] [--seed S] \
                 [--events N]\nor a spec mix:   td trace record --spec '<spec>'"
            );
            0
        }
        Some("record") => trace_record(&args[1..]),
        Some("info") => trace_info(&args[1..]),
        Some("replay") => trace_replay(&args[1..]),
        Some("convert") => trace_convert(&args[1..]),
        Some(other) => {
            eprintln!("td trace: unknown action '{other}' (record|info|replay|convert)");
            2
        }
    }
}

/// Emits a finished trace to `--out` or stdout (the pipeline-first default).
fn trace_emit(doc: &str, out: Option<&str>) -> i32 {
    match out {
        None => {
            print!("{doc}");
            0
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, doc) {
                eprintln!("td trace: cannot write {path}: {e}");
                return 1;
            }
            println!("{} trace written to {path}", td_bench::trace::SCHEMA);
            0
        }
    }
}

/// Loads and parses a trace file; any malformation is a data error (exit 1).
fn trace_load(cmd: &str, path: &str) -> Result<td_bench::Trace, i32> {
    td_bench::Trace::read(&read_input(path)).map_err(|e| {
        eprintln!("{cmd}: {path}: {e}");
        1
    })
}

fn trace_record(args: &[String]) -> i32 {
    use td_bench::trace::{find_shape, Trace};
    use td_bench::WorkloadSpec;
    let mut spec_str: Option<String> = None;
    let mut shape: Option<String> = None;
    let mut size: Option<u32> = None;
    let mut seed: Option<u64> = None;
    let mut events: Option<u32> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(raw) = args.get(i + 1) else {
            eprintln!("td trace record: {flag} needs a value");
            return 2;
        };
        match flag {
            "--spec" => spec_str = Some(raw.clone()),
            "--shape" => shape = Some(raw.clone()),
            "--out" => out = Some(raw.clone()),
            "--size" | "--seed" | "--events" => {
                let Ok(v) = raw.parse::<u64>() else {
                    eprintln!("td trace record: {flag} needs an integer");
                    return 2;
                };
                match flag {
                    "--size" => size = Some(v as u32),
                    "--events" => events = Some(v as u32),
                    _ => seed = Some(v),
                }
            }
            other => {
                eprintln!("td trace record: unknown flag '{other}'");
                return 2;
            }
        }
        i += 2;
    }
    let trace = match (spec_str, shape) {
        (Some(s), None) => {
            if size.is_some() || seed.is_some() || events.is_some() {
                eprintln!(
                    "td trace record: --size/--seed/--events apply to --shape; \
                     with --spec, put them in the spec string"
                );
                return 2;
            }
            let spec = match WorkloadSpec::parse(&s) {
                Ok(sp) => sp,
                Err(e) => {
                    eprintln!("td trace record: {e}");
                    return 2;
                }
            };
            match Trace::from_spec(&spec) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("td trace record: {e}");
                    return 2;
                }
            }
        }
        (None, Some(name)) => {
            let info = match find_shape(&name) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("td trace record: {e}");
                    return 2;
                }
            };
            match Trace::from_shape(
                &name,
                size.unwrap_or(info.default_size),
                seed.unwrap_or(42),
                events.unwrap_or(info.default_events),
            ) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("td trace record: {e}");
                    return 2;
                }
            }
        }
        _ => {
            eprintln!("td trace record: exactly one of --spec or --shape is required");
            return 2;
        }
    };
    trace_emit(&trace.write(), out.as_deref())
}

fn trace_info(args: &[String]) -> i32 {
    let [path] = args else {
        eprintln!("td trace info: expects exactly one file argument ('-' for stdin)");
        return 2;
    };
    match trace_load("td trace info", path) {
        Ok(t) => {
            t.summary_table().print();
            0
        }
        Err(code) => code,
    }
}

fn trace_replay(args: &[String]) -> i32 {
    use td_bench::trace::{replay_differential, replay_engine, replay_serve};
    use token_dropping::local::RepairMode;
    let Some(path) = args
        .first()
        .filter(|a| !a.starts_with('-') || a.as_str() == "-")
    else {
        eprintln!("td trace replay: expects a file argument first ('-' for stdin)");
        return 2;
    };
    let path = path.clone();
    let mut consumer = "engine".to_string();
    let mut rate: u64 = 0;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--consumer" => match args.get(i + 1).map(String::as_str) {
                Some(c @ ("engine" | "differential" | "serve" | "all")) => {
                    consumer = c.to_string();
                    i += 2;
                }
                _ => {
                    eprintln!("td trace replay: --consumer needs engine|differential|serve|all");
                    return 2;
                }
            },
            "--rate" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) => {
                    rate = v;
                    i += 2;
                }
                None => {
                    eprintln!("td trace replay: --rate needs an integer (events/sec; 0 = unpaced)");
                    return 2;
                }
            },
            _ => {
                rest.push(args[i].clone());
                i += 1;
            }
        }
    }
    let mut flags = RunFlags::new(0, 0);
    if let Err(code) = flags.parse("td trace replay", &rest, &["--shards", "--full"]) {
        return code;
    }
    let mode = if flags.full {
        RepairMode::FullRecompute
    } else {
        RepairMode::Incremental
    };
    let trace = match trace_load("td trace replay", &path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let mut table =
        td_bench::Table::new(&["consumer", "events", "rounds", "messages", "fingerprint"]);
    let mut fps: Vec<u64> = Vec::new();
    if consumer == "engine" || consumer == "all" {
        match replay_engine(&trace, mode, flags.threads, flags.shards) {
            Ok(o) => {
                fps.push(o.solution_fp);
                table.row(vec![
                    "engine".to_string(),
                    o.events.to_string(),
                    o.stats.rounds.to_string(),
                    o.stats.messages.to_string(),
                    format!("{:016x}", o.solution_fp),
                ]);
            }
            Err(e) => {
                eprintln!("td trace replay: engine: {e}");
                return 1;
            }
        }
    }
    if consumer == "differential" || consumer == "all" {
        match replay_differential(&trace) {
            Ok(r) => table.row(vec![
                format!("differential({}x)", r.compared),
                trace.events.len().to_string(),
                r.rounds.to_string(),
                r.messages.to_string(),
                "-".to_string(),
            ]),
            Err(e) => {
                eprintln!("td trace replay: differential: {e}");
                return 1;
            }
        }
    }
    if consumer == "serve" || consumer == "all" {
        match replay_serve(&trace, rate, flags.threads, flags.shards) {
            Ok(r) => {
                fps.push(r.fingerprint);
                table.row(vec![
                    "serve".to_string(),
                    r.events.to_string(),
                    r.repair.rounds.to_string(),
                    r.repair.messages.to_string(),
                    format!("{:016x}", r.fingerprint),
                ]);
            }
            Err(e) => {
                eprintln!("td trace replay: serve: {e}");
                return 1;
            }
        }
    }
    table.print();
    if fps.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("td trace replay: consumers disagree on the solution fingerprint");
        return 1;
    }
    if consumer == "all" {
        println!("\nall consumers agree: fingerprint {:016x}", fps[0]);
    }
    0
}

fn trace_convert(args: &[String]) -> i32 {
    let Some(path) = args
        .first()
        .filter(|a| !a.starts_with('-') || a.as_str() == "-")
    else {
        eprintln!("td trace convert: expects a file argument first ('-' for stdin)");
        return 2;
    };
    let path = path.clone();
    let mut seed: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) => {
                    seed = Some(v);
                    i += 2;
                }
                None => {
                    eprintln!("td trace convert: --seed needs an integer");
                    return 2;
                }
            },
            "--out" => match args.get(i + 1) {
                Some(p) => {
                    out = Some(p.clone());
                    i += 2;
                }
                None => {
                    eprintln!("td trace convert: --out needs a file path");
                    return 2;
                }
            },
            other => {
                eprintln!("td trace convert: unknown flag '{other}'");
                return 2;
            }
        }
    }
    let Some(seed) = seed else {
        eprintln!("td trace convert: --seed is required (the point of converting)");
        return 2;
    };
    let trace = match trace_load("td trace convert", &path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match trace.reseed(seed) {
        Ok(t) => trace_emit(&t.write(), out.as_deref()),
        Err(e) => {
            eprintln!("td trace convert: {e}");
            1
        }
    }
}

fn cmd_compare(args: &[String]) -> i32 {
    use td_bench::compare::{self, CompareConfig};
    let mut cfg = CompareConfig::default();
    let mut families: Vec<String> = Vec::new();
    let mut traces: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |name: &str| -> Result<String, i32> {
            args.get(i + 1).cloned().ok_or_else(|| {
                eprintln!("td compare: {name} needs a value");
                2
            })
        };
        match flag {
            "--families" => match value(flag) {
                Ok(v) => {
                    families.extend(v.split(',').map(|s| s.trim().to_string()));
                    i += 2;
                }
                Err(code) => return code,
            },
            "--protocols" => match value(flag) {
                Ok(v) => {
                    cfg.protocols = v.split(',').map(|s| s.trim().to_string()).collect();
                    i += 2;
                }
                Err(code) => return code,
            },
            "--size" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) if v >= 1 => {
                    cfg.size = Some(v);
                    i += 2;
                }
                _ => {
                    eprintln!("td compare: --size needs an integer >= 1");
                    return 2;
                }
            },
            "--seed" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) => {
                    cfg.seed = v;
                    i += 2;
                }
                None => {
                    eprintln!("td compare: --seed needs an integer");
                    return 2;
                }
            },
            "--threads" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) if v >= 1 => {
                    cfg.threads = v;
                    i += 2;
                }
                _ => {
                    eprintln!("td compare: --threads needs an integer >= 1");
                    return 2;
                }
            },
            "--shards" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) if v >= 1 => {
                    cfg.shards = v;
                    i += 2;
                }
                _ => {
                    eprintln!("td compare: --shards needs an integer >= 1");
                    return 2;
                }
            },
            "--events" => match args.get(i + 1).and_then(|r| r.parse().ok()) {
                Some(v) => {
                    cfg.max_events = Some(v);
                    i += 2;
                }
                None => {
                    eprintln!("td compare: --events needs an integer");
                    return 2;
                }
            },
            "--trace" => match value(flag) {
                Ok(v) => {
                    traces.push(v);
                    i += 2;
                }
                Err(code) => return code,
            },
            "--out" => match value(flag) {
                Ok(v) => {
                    out_path = Some(v);
                    i += 2;
                }
                Err(code) => return code,
            },
            other => {
                eprintln!("td compare: unknown flag '{other}'");
                return 2;
            }
        }
    }
    let t0 = std::time::Instant::now();
    let mut report = match compare::compare_families(&cfg, &families) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("td compare: {e}");
            // Unknown families/protocols are usage errors; a diverging or
            // unverifiable run is a real failure.
            return if e.contains("unknown") { 2 } else { 1 };
        }
    };
    for path in &traces {
        let trace = match trace_load("td compare", path) {
            Ok(t) => t,
            Err(code) => return code,
        };
        let label = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path.as_str())
            .to_string();
        if let Err(e) = compare::compare_trace(&mut report, &label, &trace) {
            eprintln!("td compare: {e}");
            return 1;
        }
    }
    report.table().print();
    for (label, why) in &report.skipped {
        println!("\nskipped {label}: {why}");
    }
    println!(
        "\n{} rows, every protocol bit-identical across {} executor points, in {:.2} s",
        report.rows.len(),
        report.config.grid().len(),
        t0.elapsed().as_secs_f64()
    );
    if let Some(path) = out_path {
        let json = compare::write_json(&report);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("td compare: cannot write {path}: {e}");
            return 1;
        }
        println!("{} report written to {path}", compare::SCHEMA);
    }
    0
}

/// Everything `td exp run`/`td exp render` share: the experiment ids, the
/// resolved [`td_bench::ExpConfig`], and the results directory.
struct ExpInvocation {
    ids: Vec<String>,
    cfg: td_bench::ExpConfig,
    results: String,
}

/// Parses the flags common to both `td exp` actions out of `args`, leaving
/// the action-specific flags for `handle` to claim (return `true` if it
/// consumed the flag at the given index; it may look at the value slot).
/// Positional (non-flag) arguments are experiment ids. `Err(2)` on any
/// malformed or unknown flag, exactly like the other subcommands.
fn exp_parse(
    cmd: &str,
    args: &[String],
    mut handle: impl FnMut(&[String], usize) -> Result<Option<usize>, i32>,
) -> Result<ExpInvocation, i32> {
    use td_bench::ExpConfig;
    let mut ids: Vec<String> = Vec::new();
    let mut results = String::from("results");
    let mut quick = false;
    let mut repeat_flag: Option<usize> = None;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if let Some(consumed) = handle(args, i)? {
            i += consumed;
            continue;
        }
        match flag {
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--results" => match args.get(i + 1) {
                Some(p) => {
                    results = p.clone();
                    i += 2;
                }
                None => {
                    eprintln!("{cmd}: --results needs a directory path");
                    return Err(2);
                }
            },
            "--repeat" => match args.get(i + 1).and_then(|raw| raw.parse::<usize>().ok()) {
                Some(n) if n >= 1 => {
                    repeat_flag = Some(n);
                    i += 2;
                }
                _ => {
                    eprintln!("{cmd}: --repeat needs an integer >= 1");
                    return Err(2);
                }
            },
            // RunFlags owns --seed/--threads/--shards; forward the flag
            // AND its value slot so a trailing id is never mistaken for
            // one.
            "--seed" | "--threads" | "--shards" => {
                rest.push(args[i].clone());
                if let Some(v) = args.get(i + 1) {
                    rest.push(v.clone());
                }
                i += 2;
            }
            other if other.starts_with('-') => {
                // Unknown flags fall through to RunFlags for the uniform
                // "unknown flag" diagnostic and exit code.
                rest.push(args[i].clone());
                i += 1;
            }
            id => {
                ids.push(id.to_string());
                i += 1;
            }
        }
    }
    // --quick rebases every default (2x2 grid, repeat 1) before explicit
    // flags override, so the two compose in either order.
    let mut cfg = if quick {
        ExpConfig::quick()
    } else {
        ExpConfig::default()
    };
    let mut flags = RunFlags::new(0, 0);
    flags.seed = cfg.seed;
    flags.threads = cfg.threads;
    flags.shards = cfg.shards;
    flags.parse(cmd, &rest, &["--shards"])?;
    cfg.seed = flags.seed;
    cfg.threads = flags.threads;
    cfg.shards = flags.shards;
    if let Some(n) = repeat_flag {
        cfg.repeat = n;
    }
    Ok(ExpInvocation { ids, cfg, results })
}

fn cmd_exp(args: &[String]) -> i32 {
    use td_bench::exp;
    match args.first().map(String::as_str) {
        None | Some("--list") => {
            if args.len() > 1 {
                eprintln!("td exp: unexpected trailing argument '{}'", args[1]);
                return 2;
            }
            println!("registered experiments:\n");
            print!("{}", exp::listing());
            println!(
                "\nrun them with:    td exp run [id..] [--quick] [--force]\n\
                 render them with: td exp render [id..] [--quick] [--plots DIR] [--bench FILE]"
            );
            0
        }
        Some("run") => exp_run(&args[1..]),
        Some("render") => exp_render(&args[1..]),
        Some(other) => {
            eprintln!("td exp: unknown action '{other}' (run|render|--list)");
            2
        }
    }
}

fn exp_run(args: &[String]) -> i32 {
    use td_bench::exp;
    let mut force = false;
    let inv = match exp_parse("td exp run", args, |args, i| {
        if args[i] == "--force" {
            force = true;
            Ok(Some(1))
        } else {
            Ok(None)
        }
    }) {
        Ok(inv) => inv,
        Err(code) => return code,
    };
    // Unknown ids are usage errors; resolve before touching the cache.
    if let Err(e) = exp::resolve_ids(&inv.ids) {
        eprintln!("td exp run: {e}");
        return 2;
    }
    let t0 = std::time::Instant::now();
    let manifest = match exp::run(
        &inv.cfg,
        &inv.ids,
        std::path::Path::new(&inv.results),
        force,
    ) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("td exp run: {e}");
            return 1;
        }
    };
    for u in &manifest.units {
        println!("{:6} {}/{}", u.status.label(), u.exp, u.unit);
    }
    println!(
        "\nunits: {}, hits: {}, misses: {} ({} schema, manifest in {}/manifest.json, {:.2} s)",
        manifest.units.len(),
        manifest.hits(),
        manifest.misses(),
        exp::SCHEMA,
        inv.results,
        t0.elapsed().as_secs_f64()
    );
    0
}

fn exp_render(args: &[String]) -> i32 {
    use td_bench::exp;
    let mut plots_dir = String::from("plots");
    let mut bench_path: Option<String> = None;
    let mut md_path: Option<String> = None;
    let inv = match exp_parse("td exp render", args, |args, i| {
        let take_value = |name: &str| -> Result<String, i32> {
            args.get(i + 1).cloned().ok_or_else(|| {
                eprintln!("td exp render: {name} needs a path");
                2
            })
        };
        match args[i].as_str() {
            "--plots" => {
                plots_dir = take_value("--plots")?;
                Ok(Some(2))
            }
            "--bench" => {
                bench_path = Some(take_value("--bench")?);
                Ok(Some(2))
            }
            "--experiments-md" => {
                md_path = Some(take_value("--experiments-md")?);
                Ok(Some(2))
            }
            _ => Ok(None),
        }
    }) {
        Ok(inv) => inv,
        Err(code) => return code,
    };
    if let Err(e) = exp::resolve_ids(&inv.ids) {
        eprintln!("td exp render: {e}");
        return 2;
    }
    let rendered = match exp::render(&inv.cfg, &inv.ids, std::path::Path::new(&inv.results)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("td exp render: {e}");
            return 1;
        }
    };
    if bench_path.is_some() && rendered.bench.is_none() {
        eprintln!("td exp render: --bench needs the perf experiment in the selection");
        return 2;
    }
    if !rendered.plots.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&plots_dir) {
            eprintln!("td exp render: cannot create {plots_dir}: {e}");
            return 1;
        }
    }
    for (name, svg) in &rendered.plots {
        let path = std::path::Path::new(&plots_dir).join(name);
        if let Err(e) = std::fs::write(&path, svg) {
            eprintln!("td exp render: cannot write {}: {e}", path.display());
            return 1;
        }
        println!("plot:    {}", path.display());
    }
    if let (Some(path), Some(bench)) = (&bench_path, &rendered.bench) {
        if let Err(e) = std::fs::write(path, bench) {
            eprintln!("td exp render: cannot write {path}: {e}");
            return 1;
        }
        println!("bench:   {path} ({} schema)", td_bench::perf::SCHEMA);
    }
    if let Some(path) = &md_path {
        let mut text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("td exp render: cannot read {path}: {e}");
                return 1;
            }
        };
        for (id, block) in &rendered.tables {
            text = match exp::splice_generated(&text, id, block) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("td exp render: {path}: {e}");
                    return 1;
                }
            };
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("td exp render: cannot write {path}: {e}");
            return 1;
        }
        println!(
            "tables:  {} section(s) spliced into {path}",
            rendered.tables.len()
        );
    } else {
        println!(
            "tables:  {} section(s) rendered (pass --experiments-md FILE to splice them)",
            rendered.tables.len()
        );
    }
    0
}

fn read_input(path: &str) -> String {
    let mut buf = String::new();
    if path == "-" {
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("read stdin");
    } else {
        buf = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
    }
    buf
}

fn load_graph(path: &str) -> CsrGraph {
    let text = read_input(path);
    gio::read_edge_list(BufReader::new(text.as_bytes())).unwrap_or_else(|e| {
        eprintln!("bad edge list: {e}");
        std::process::exit(1);
    })
}

fn cmd_gen(args: &[String]) -> i32 {
    gen_inner(args).unwrap_or_else(|code| code)
}

/// `td gen` body. Every generator has an exact positional arity: a missing
/// argument, a trailing extra, or garbage where an integer belongs is a
/// usage error (exit 2), never a panic or a silent default — a mistyped
/// seed that quietly fell back to 42 would fake determinism.
fn gen_inner(args: &[String]) -> Result<i32, i32> {
    fn arity(sub: &str, rest: &[String], min: usize, max: usize) -> Result<(), i32> {
        if rest.len() < min {
            eprintln!("td gen {sub}: missing argument(s); see td --help");
            return Err(2);
        }
        if rest.len() > max {
            eprintln!("td gen {sub}: unexpected trailing argument '{}'", rest[max]);
            return Err(2);
        }
        Ok(())
    }
    fn int<T: std::str::FromStr>(sub: &str, what: &str, raw: &str) -> Result<T, i32> {
        raw.parse().map_err(|_| {
            eprintln!("td gen {sub}: {what} must be an integer, got '{raw}'");
            2
        })
    }
    let Some(sub) = args.first().map(String::as_str) else {
        eprintln!("usage: td gen <gnm|regular|tree|comb|game> ...");
        return Err(2);
    };
    let rest = &args[1..];
    let seed_at = |i: usize| -> Result<u64, i32> {
        match rest.get(i) {
            Some(raw) => int(sub, "[seed]", raw),
            None => Ok(42),
        }
    };
    match sub {
        "gnm" => {
            arity(sub, rest, 2, 3)?;
            let n = int(sub, "<n>", &rest[0])?;
            let m = int(sub, "<m>", &rest[1])?;
            let g = token_dropping::graph::gen::random::gnm(
                n,
                m,
                &mut SmallRng::seed_from_u64(seed_at(2)?),
            );
            gio::write_edge_list(&g, std::io::stdout().lock()).unwrap();
            Ok(0)
        }
        "regular" => {
            arity(sub, rest, 2, 3)?;
            let n = int(sub, "<n>", &rest[0])?;
            let d = int(sub, "<d>", &rest[1])?;
            match token_dropping::graph::gen::random::random_regular(
                n,
                d,
                &mut SmallRng::seed_from_u64(seed_at(2)?),
                500,
            ) {
                Some(g) => {
                    gio::write_edge_list(&g, std::io::stdout().lock()).unwrap();
                    Ok(0)
                }
                None => {
                    eprintln!("no simple {d}-regular pairing found");
                    Ok(1)
                }
            }
        }
        "tree" => {
            arity(sub, rest, 2, 2)?;
            let d = int(sub, "<d>", &rest[0])?;
            let depth = int(sub, "<depth>", &rest[1])?;
            let (g, _) =
                token_dropping::graph::gen::structured::perfect_dary_tree(d, depth, 10_000_000);
            gio::write_edge_list(&g, std::io::stdout().lock()).unwrap();
            Ok(0)
        }
        "comb" => {
            arity(sub, rest, 1, 1)?;
            let k = int(sub, "<k>", &rest[0])?;
            let game = TokenGame::contention_comb(k);
            game_io::write_game(&game, std::io::stdout().lock()).unwrap();
            Ok(0)
        }
        "game" => {
            // td gen game w1,w2,w3 deg [seed]
            arity(sub, rest, 2, 3)?;
            let widths: Vec<usize> = rest[0]
                .split(',')
                .map(|w| int(sub, "<w1,w2,..>", w.trim()))
                .collect::<Result<_, _>>()?;
            let deg = int(sub, "<deg>", &rest[1])?;
            let game =
                TokenGame::random(&widths, deg, 0.5, &mut SmallRng::seed_from_u64(seed_at(2)?));
            game_io::write_game(&game, std::io::stdout().lock()).unwrap();
            Ok(0)
        }
        _ => {
            eprintln!("usage: td gen <gnm|regular|tree|comb|game> ...");
            Err(2)
        }
    }
}

fn cmd_info(args: &[String]) -> i32 {
    // One positional (the file, default '-'); extras used to be silently
    // ignored, hiding e.g. a second file the caller thought was inspected.
    if args.len() > 1 {
        eprintln!("td info: unexpected trailing argument '{}'", args[1]);
        return 2;
    }
    let g = load_graph(args.first().map(String::as_str).unwrap_or("-"));
    println!("nodes:      {}", g.num_nodes());
    println!("edges:      {}", g.num_edges());
    println!("max degree: {}", g.max_degree());
    println!("connected:  {}", algo::is_connected(&g));
    match algo::girth(&g) {
        Some(c) => println!("girth:      {c}"),
        None => println!("girth:      ∞ (forest)"),
    }
    let bip = token_dropping::graph::bipartite::bipartition(&g).is_some();
    println!("bipartite:  {bip}");
    0
}

fn cmd_orient(args: &[String]) -> i32 {
    // Strict parse: one optional file plus --distributed. The old scan
    // (`args.iter().any(..)`) silently ignored every unknown flag, so a
    // typo like --distribtued ran the wrong (centralized) solver.
    let mut path: Option<&str> = None;
    let mut distributed = false;
    for a in args {
        match a.as_str() {
            "--distributed" => distributed = true,
            flag if flag.starts_with("--") => {
                eprintln!("td orient: unknown flag '{flag}'");
                return 2;
            }
            p if path.is_none() => path = Some(p),
            extra => {
                eprintln!("td orient: unexpected trailing argument '{extra}'");
                return 2;
            }
        }
    }
    let g = load_graph(path.unwrap_or("-"));
    let orientation = if distributed {
        let res = run_distributed(&g, &Simulator::sequential());
        println!(
            "# distributed protocol: {} LOCAL rounds, {} messages",
            res.comm_rounds, res.messages
        );
        res.orientation
    } else {
        let res = solve_stable_orientation(&g, PhaseConfig::default());
        println!(
            "# phase driver: {} phases, {} derived LOCAL rounds",
            res.phases, res.comm_rounds
        );
        res.orientation
    };
    orientation
        .verify_stable(&g)
        .expect("output must be stable");
    println!("# verified stable; edges as 'tail -> head':");
    for (e, u, v) in g.edge_list() {
        let head = orientation.head(e).unwrap();
        let tail = if head == u { v } else { u };
        println!("{} {}", tail.0, head.0);
    }
    0
}

fn cmd_game(args: &[String]) -> i32 {
    if args.len() > 1 {
        eprintln!("td game: unexpected trailing argument '{}'", args[1]);
        return 2;
    }
    let path = args.first().map(String::as_str).unwrap_or("-");
    let text = read_input(path);
    let game = game_io::read_game(BufReader::new(text.as_bytes())).unwrap_or_else(|e| {
        eprintln!("bad game file: {e}");
        std::process::exit(1);
    });
    let res = lockstep::run(&game);
    verify_solution(&game, &res.solution).expect("solution must satisfy rules 1-3");
    verify_dynamics(&game, &res.log).expect("dynamics must replay");
    println!(
        "# solved in {} game rounds ({} moves); traversals:",
        res.rounds,
        res.log.len()
    );
    for t in &res.solution.traversals {
        let path: Vec<String> = t.path.iter().map(|v| v.0.to_string()).collect();
        println!("{}", path.join(" "));
    }
    0
}

fn cmd_assign(args: &[String]) -> i32 {
    assign_inner(args).unwrap_or_else(|code| code)
}

fn assign_inner(args: &[String]) -> Result<i32, i32> {
    fn int_flag<T: std::str::FromStr>(flag: &str, raw: Option<&String>) -> Result<T, i32> {
        match raw.and_then(|r| r.parse().ok()) {
            Some(v) => Ok(v),
            None => {
                eprintln!("td assign: {flag} needs an integer");
                Err(2)
            }
        }
    }
    // The file positional may be omitted (stdin). A leading flag used to be
    // swallowed as the path, shifting every later argument into the wrong
    // slot; missing or garbage flag values used to panic via unwrap.
    let (path, flag_args) = match args.first().map(String::as_str) {
        Some(p) if !p.starts_with("--") => (p, &args[1..]),
        _ => ("-", args),
    };
    let mut customers: Option<usize> = None;
    let mut bounded: Option<u32> = None;
    let mut optimal = false;
    let mut i = 0;
    while i < flag_args.len() {
        match flag_args[i].as_str() {
            "--customers" => {
                customers = Some(int_flag("--customers", flag_args.get(i + 1))?);
                i += 2;
            }
            "--bounded" => {
                bounded = Some(int_flag("--bounded", flag_args.get(i + 1))?);
                i += 2;
            }
            "--optimal" => {
                optimal = true;
                i += 1;
            }
            other => {
                eprintln!("td assign: unknown argument '{other}'");
                return Err(2);
            }
        }
    }
    let Some(nc) = customers else {
        eprintln!("td assign: --customers <nc> is required");
        return Err(2);
    };
    let g = load_graph(path);
    let inst = AssignmentInstance::from_bipartite_graph(&g, nc);
    let assignment = if optimal {
        let res = optimal_semi_matching(&inst);
        println!(
            "# optimal semi-matching, {} cost-reducing paths",
            res.paths_applied
        );
        res.assignment
    } else if let Some(k) = bounded {
        let res = token_dropping::assign::bounded::solve_k_bounded(&inst, k);
        res.assignment.verify_k_bounded(&inst, k).unwrap();
        println!(
            "# {k}-bounded stable, {} phases, {} LOCAL rounds",
            res.phases, res.comm_rounds
        );
        res.assignment
    } else {
        let res = token_dropping::assign::phases::solve_stable_assignment(&inst);
        res.assignment.verify_stable(&inst).unwrap();
        println!(
            "# stable, {} phases, {} LOCAL rounds",
            res.phases, res.comm_rounds
        );
        res.assignment
    };
    println!(
        "# cost = {}, max load = {}",
        assignment.cost(),
        assignment.max_load()
    );
    println!("# customer -> server:");
    for c in 0..nc {
        println!("{} {}", c, assignment.server_of(c).unwrap());
    }
    Ok(0)
}
