//! # token-dropping — distributed token dropping, stable orientations, and
//! semi-matchings
//!
//! A from-scratch Rust reproduction of
//! *"Efficient Load-Balancing through Distributed Token Dropping"*
//! (Brandt, Keller, Rybicki, Suomela, Uitto — SPAA 2021, arXiv:2005.07761).
//!
//! The workspace is organized bottom-up; this umbrella crate re-exports the
//! member crates under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `td-graph` | CSR graphs, generators, BFS/girth/bipartition |
//! | [`local`] | `td-local` | the LOCAL-model simulator (sequential + parallel executors) |
//! | [`core`] | `td-core` | the token dropping game, proposal algorithm (Thm 4.1), 3-level algorithm (Thm 4.7), matching reduction (Thm 4.6) |
//! | [`orient`] | `td-orient` | stable orientations in O(Δ⁴) (Thm 5.1), baselines, Section 6 lower-bound machinery |
//! | [`assign`] | `td-assign` | hypergraph token dropping (Thm 7.1), stable assignment (Thm 7.3), k-bounded relaxation (Thm 7.5), optimal semi-matchings |
//!
//! ## Quickstart
//!
//! ```
//! use token_dropping::prelude::*;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! // A random graph, stably oriented in O(Δ⁴) LOCAL rounds.
//! let mut rng = SmallRng::seed_from_u64(1);
//! let g = token_dropping::graph::gen::random::gnm(50, 150, &mut rng);
//! let result = solve_stable_orientation(&g, PhaseConfig::default());
//! result.orientation.verify_stable(&g).unwrap();
//! assert!(result.phases as usize <= 2 * g.max_degree() + 2);
//! ```

pub use td_assign as assign;
pub use td_core as core;
pub use td_graph as graph;
pub use td_local as local;
pub use td_orient as orient;

/// The most common entry points, re-exported flat.
pub mod prelude {
    pub use td_assign::bounded::{solve_2_bounded, solve_k_bounded};
    pub use td_assign::phases::solve_stable_assignment;
    pub use td_assign::semi_matching::{approximation_ratio, optimal_semi_matching};
    pub use td_assign::{Assignment, AssignmentInstance};
    pub use td_core::{lockstep, proposal, three_level, TokenGame};
    pub use td_core::{verify_dynamics, verify_solution, MoveLog, Solution, Traversal};
    pub use td_graph::{CsrGraph, EdgeId, GraphBuilder, NodeId, Port};
    pub use td_local::{Protocol, SimOutcome, Simulator};
    pub use td_orient::{solve_stable_orientation, Orientation, PhaseConfig, PhaseResult};
}
