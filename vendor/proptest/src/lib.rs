//! A hermetic, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace's property tests use a narrow slice of proptest: the
//! [`proptest!`] macro with `arg in <integer-or-float-range>` strategies, a
//! per-block `ProptestConfig::with_cases(n)`, and the `prop_assert!` /
//! `prop_assert_eq!` assertions. This shim keeps that surface:
//!
//! * each test runs `cases` deterministic iterations (the RNG is seeded from
//!   the test's full module path, so runs are reproducible but distinct
//!   tests see distinct streams);
//! * a failing case panics with the case number and the sampled inputs;
//! * there is **no shrinking** — the printed inputs are the raw failing
//!   sample. For the seed-driven instance generators these tests use, the
//!   inputs are already minimal enough to paste into a unit test.

#![warn(missing_docs)]

/// Strategies: things a `proptest!` argument can be drawn from.
pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A source of values for one `proptest!` argument.
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut SmallRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }
}

/// The test runner: configuration, error type, and RNG derivation.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a test case failed (carried by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-test RNG: FNV-1a over the test path seeds the
    /// generator, so every test gets a stable but distinct stream.
    pub fn rng_for(test_path: &str) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// Early-return assertion for use inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Early-return equality assertion for use inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Declares property tests: every `arg in strategy` is sampled per case and
/// the body (which may `prop_assert!`) runs `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*) $(, &$arg)*
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(
            x in 3u64..10,
            y in 2usize..=4,
            f in 0.25f64..0.75,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
            prop_assert_eq!(y.min(4), y);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        inner();
    }

    #[test]
    fn deterministic_rng_per_path() {
        use rand::RngCore;
        let a = crate::test_runner::rng_for("m::t1").next_u64();
        let b = crate::test_runner::rng_for("m::t1").next_u64();
        let c = crate::test_runner::rng_for("m::t2").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
