//! A hermetic, dependency-free stand-in for the `criterion` benchmark
//! harness. It keeps criterion's source-level API — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], [`black_box`] —
//! and measures wall-clock time with `std::time::Instant`.
//!
//! Statistics are deliberately simple (median / min / max over N samples,
//! each sample a batch of enough iterations to dominate timer noise); there
//! is no HTML report and no statistical regression machinery. Benchmarks
//! still honor a substring filter passed on the command line, so
//! `cargo bench -p td-bench --bench simulator -- arena` works as expected.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `bin --bench [filter]`; anything
        // that is not a flag is treated as a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// No-op, kept for `criterion_main!` compatibility.
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix and sampling configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| routine(b));
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| routine(b, input));
        self
    }

    /// Ends the group (alignment with criterion's API; prints nothing).
    pub fn finish(self) {}

    fn run(&self, id: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(f) = &self.criterion.filter {
            if !full.contains(f.as_str()) {
                return;
            }
        }

        // Warm-up & calibration: find an iteration count whose batch takes
        // at least ~25 ms (or a single iteration if one already does).
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            if b.elapsed >= Duration::from_millis(25) || iters >= 1 << 20 {
                break;
            }
            let per_iter = (b.elapsed / iters as u32).max(Duration::from_nanos(1));
            let want = (Duration::from_millis(30).as_nanos() / per_iter.as_nanos().max(1)) as u64;
            iters = want.clamp(iters + 1, iters.saturating_mul(64)).max(1);
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = *samples_ns.last().unwrap();
        println!(
            "{full:<50} time: [{} {} {}]  ({} samples × {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max),
            samples_ns.len(),
            iters
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u64;
        group.sample_size(2).bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        let group = BenchmarkGroup {
            criterion: &c,
            name: "g".into(),
            sample_size: 2,
        };
        group.run("other", &mut |_b| ran = true);
        assert!(!ran);
    }
}
