//! A hermetic, dependency-free stand-in for the `crossbeam` crate, providing
//! `crossbeam::thread::scope` on top of `std::thread::scope` (std has had
//! scoped threads since 1.63, so the shim is a thin signature adapter: the
//! crossbeam closure receives a `&Scope` argument it can spawn from, and
//! `scope` returns a `Result` rather than propagating panics directly).

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The error type of [`scope`]: the payload of a panicked child thread.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A handle for spawning scoped threads, passed to the [`scope`] closure
    /// and to every spawned closure (crossbeam's nested-spawn signature).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope again so
        /// it can spawn further siblings, exactly like crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// joins all of them before returning. Returns `Err` with the first
    /// panic payload if the closure or any unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn child_panic_reported_as_err() {
        let r = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("child down"));
        });
        assert!(r.is_err());
    }
}
