//! A hermetic, dependency-free stand-in for `parking_lot`, backed by
//! `std::sync`. Only the surface this workspace uses is provided: infallible
//! `lock()` (poisoning is converted to a panic propagation, which matches
//! parking_lot's "no poisoning" model closely enough for these uses),
//! `try_lock`, `into_inner`, and `get_mut`.

#![warn(missing_docs)]

use std::sync::TryLockError;

/// A mutual exclusion primitive with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never returns an error:
    /// a poisoned lock (panicked holder) is entered anyway, as parking_lot
    /// has no poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
