//! A hermetic, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the handful of `rand` 0.8 APIs the workspace actually uses
//! are reimplemented here behind the same names and signatures:
//!
//! * [`RngCore`] / [`Rng`] (with `gen`, `gen_range`, `gen_bool`, `fill_bytes`),
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::SmallRng`] — xoshiro256++ seeded through SplitMix64,
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Streams are deterministic for a given seed (the repository's experiments
//! and tests rely on seed-reproducibility, not on matching upstream `rand`
//! byte-for-byte). Distributions are uniform via 128-bit multiply-shift
//! range reduction; the bias is < 2⁻⁶⁴ per draw, far below anything the
//! simulations can observe.

#![warn(missing_docs)]

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn from the "standard" distribution
/// (uniform over the value range; floats uniform in `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers with uniform below-a-bound sampling (multiply-shift reduction).
pub trait UniformInt: Copy {
    /// Uniform value in `[0, bound)` as the widest carrier; `bound > 0`.
    fn uniform_below<R: RngCore + ?Sized>(bound: u64, rng: &mut R) -> u64 {
        debug_assert!(bound > 0);
        ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {}

        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + <$t as UniformInt>::uniform_below(width, rng) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full u64 domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + <$t as UniformInt>::uniform_below(width, rng) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Convenience methods layered over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: **xoshiro256++** seeded via
    /// SplitMix64 (the upstream-recommended seeding procedure).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for source compatibility with code written against
    /// `rand::rngs::StdRng`.
    pub type StdRng = SmallRng;
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(2);
        let heads = (0..100_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((45_000..55_000).contains(&heads), "heads = {heads}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hist = [0u32; 10];
        for _ in 0..100_000 {
            hist[rng.gen_range(0usize..10)] += 1;
        }
        for &h in &hist {
            assert!((8_000..12_000).contains(&h), "hist = {hist:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle leaving order intact is ~impossible"
        );
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = SmallRng::seed_from_u64(5);
        let dynr: &mut dyn RngCore = &mut rng;
        let x: f64 = Rng::gen::<f64>(dynr);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
