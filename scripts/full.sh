#!/usr/bin/env bash
# Full artifact refresh (reference machine): run every registered
# experiment at full size into the results/ cache (warm results are
# reused — pass --force to re-execute), then regenerate the committed
# artifacts: BENCH_10.json, plots/, and the generated tables inside
# EXPERIMENTS.md. Extra arguments are forwarded to `td exp run`
# (e.g. `scripts/full.sh --force` or `scripts/full.sh e17 e21`).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --bin td
TD=target/release/td

"$TD" exp run --results results "$@"
"$TD" exp render --results results \
  --plots plots --bench BENCH_10.json --experiments-md EXPERIMENTS.md

echo "full: OK — BENCH_10.json, plots/, EXPERIMENTS.md refreshed"
