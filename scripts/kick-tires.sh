#!/usr/bin/env bash
# Kick-tires artifact pass (CI + reviewers): exercises the cached
# experiment plane end to end in well under five minutes.
#
#   1. cold `td exp run --quick` over every registered experiment — this
#      covers the perf telemetry, serve daemon, and compare planes that
#      used to have individual smoke steps;
#   2. warm rerun: every configuration must come from the cache
#      ("misses: 0");
#   3. double render: plots and the regenerated benchmark document must
#      be byte-identical across renders of the same cache;
#   4. schema pins on the manifest, cached results, and benchmark file.
#
# Everything lands under kick-tires/ (gitignored). The full artifact
# refresh is scripts/full.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

SCRATCH="kick-tires"
RESULTS="$SCRATCH/results"
rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"

cargo build --release --bin td
TD=target/release/td

echo "== cold quick run (every experiment) =="
"$TD" exp run --quick --results "$RESULTS"

echo "== warm rerun must execute zero configurations =="
"$TD" exp run --quick --results "$RESULTS" | tee "$SCRATCH/warm.txt"
grep -q 'misses: 0' "$SCRATCH/warm.txt"

echo "== render twice; artifacts must be byte-identical =="
"$TD" exp render --quick --results "$RESULTS" \
  --plots "$SCRATCH/plots" --bench "$SCRATCH/bench.json"
"$TD" exp render --quick --results "$RESULTS" \
  --plots "$SCRATCH/plots2" --bench "$SCRATCH/bench2.json"
cmp "$SCRATCH/bench.json" "$SCRATCH/bench2.json"
for f in "$SCRATCH"/plots/*.svg; do
  cmp "$f" "$SCRATCH/plots2/$(basename "$f")"
done

echo "== schema pins =="
grep -q '"schema":"td-exp/v1"' "$RESULTS/manifest.json"
grep -rq '"schema":"td-exp/v1"' "$RESULTS/e17"
grep -q '"schema":"td-perf/v1"' "$SCRATCH/bench.json"

echo "kick-tires: OK"
