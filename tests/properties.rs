//! Property-based tests (proptest) on the core invariants, across crates.
//!
//! Strategy: generate random-but-valid instances from seeds and sizes, run
//! the real solvers, and assert the paper's invariants through the
//! independent verifiers. Shrinking lands on minimal failing sizes/seeds.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use token_dropping::assign::phases::solve_stable_assignment;
use token_dropping::assign::semi_matching::{approximation_ratio, optimal_semi_matching};
use token_dropping::assign::AssignmentInstance;
use token_dropping::core::{greedy, lockstep, proposal, TokenGame};
use token_dropping::graph::gen::random::gnm;
use token_dropping::local::Simulator;
use token_dropping::orient::phases::{solve_stable_orientation, PhaseConfig};
use token_dropping::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every lockstep token dropping run satisfies rules 1–3 and the
    /// temporal dynamics, on arbitrary layered instances.
    #[test]
    fn token_dropping_rules_hold(
        seed in 0u64..1_000_000,
        levels in 2usize..6,
        width in 2usize..14,
        deg in 1usize..5,
        density in 0.05f64..0.95,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let game = TokenGame::random(&vec![width; levels], deg, density, &mut rng);
        let res = lockstep::run(&game);
        prop_assert!(verify_solution(&game, &res.solution).is_ok());
        prop_assert!(verify_dynamics(&game, &res.log).is_ok());
        // Theorem 4.1 with a generous constant.
        let (l, d) = (game.height() as u64, game.max_degree() as u64);
        prop_assert!((res.rounds as u64) <= 4 * (l * d * d + l + d + 4));
    }

    /// The LOCAL protocol and the lockstep engine produce identical moves.
    #[test]
    fn protocol_lockstep_equivalence(
        seed in 0u64..1_000_000,
        width in 2usize..10,
        deg in 1usize..4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let game = TokenGame::random(&[width, width, width], deg, 0.5, &mut rng);
        let a = lockstep::run(&game);
        let b = proposal::run_on_simulator(&game, &Simulator::sequential());
        prop_assert_eq!(a.log, b.log);
    }

    /// Greedy (centralized) also satisfies the rules, and consumes at most
    /// m edges.
    #[test]
    fn greedy_rules_hold(
        seed in 0u64..1_000_000,
        levels in 2usize..6,
        width in 2usize..12,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let game = TokenGame::random(&vec![width; levels], 2, 0.5, &mut rng);
        let res = greedy::run(&game);
        prop_assert!(verify_solution(&game, &res.solution).is_ok());
        prop_assert!(res.steps <= game.graph().num_edges());
    }

    /// The phase algorithm always ends stable, within the Lemma 5.5 phase
    /// budget, without invariant violations.
    #[test]
    fn stable_orientation_invariants(
        seed in 0u64..1_000_000,
        n in 4usize..40,
        density in 1usize..4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = (n * density).min(n * (n - 1) / 2);
        let g = gnm(n, m, &mut rng);
        let res = solve_stable_orientation(&g, PhaseConfig::default());
        prop_assert!(res.orientation.verify_stable(&g).is_ok());
        prop_assert!(res.phases as usize <= 2 * g.max_degree() + 2);
        prop_assert_eq!(res.invariant_violations, 0);
    }

    /// Stable assignments verify and 2-approximate the optimum.
    #[test]
    fn stable_assignment_invariants(
        seed in 0u64..1_000_000,
        nc in 2usize..40,
        ns in 2usize..12,
        dmax in 1usize..4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = AssignmentInstance::random(nc, ns, 1..=dmax, &mut rng);
        let res = solve_stable_assignment(&inst);
        prop_assert!(res.assignment.verify_stable(&inst).is_ok());
        let opt = optimal_semi_matching(&inst);
        let ratio = approximation_ratio(&res.assignment, &opt.assignment);
        prop_assert!(ratio <= 2.0 + 1e-9, "ratio {}", ratio);
    }

    /// k-bounded solutions verify at their own k and at every smaller k.
    #[test]
    fn k_bounded_monotonicity(
        seed in 0u64..1_000_000,
        nc in 2usize..30,
        ns in 2usize..10,
        k in 2u32..5,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = AssignmentInstance::random(nc, ns, 1..=3, &mut rng);
        let res = token_dropping::assign::bounded::solve_k_bounded(&inst, k);
        for kk in 2..=k {
            prop_assert!(res.assignment.verify_k_bounded(&inst, kk).is_ok());
        }
    }

    /// Executor equivalence on the real protocol under random thread counts.
    #[test]
    fn executor_equivalence(
        seed in 0u64..100_000,
        threads in 2usize..6,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let game = TokenGame::random(&[8, 8, 8], 3, 0.5, &mut rng);
        let seq = proposal::run_on_simulator(&game, &Simulator::sequential());
        let par = proposal::run_on_simulator(&game, &Simulator::parallel(threads));
        prop_assert_eq!(seq.log, par.log);
        prop_assert_eq!(seq.comm_rounds, par.comm_rounds);
        prop_assert_eq!(seq.messages, par.messages);
    }

    /// Orientation flips preserve the load sum and strictly reduce the
    /// potential when applied to unhappy edges.
    #[test]
    fn flip_potential_property(
        seed in 0u64..1_000_000,
        n in 4usize..30,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, &mut rng);
        let mut o = Orientation::random(&g, &mut rng);
        let total_before: u32 = g.nodes().map(|v| o.load(v)).sum();
        for _ in 0..50 {
            let Some(e) = o.unhappy_edges(&g).next() else { break };
            let p = o.potential();
            o.flip(&g, e);
            prop_assert!(o.potential() < p);
        }
        let total_after: u32 = g.nodes().map(|v| o.load(v)).sum();
        prop_assert_eq!(total_before, total_after);
    }

    /// Graph substrate: builder output always validates; mirrors are
    /// involutive (checked inside validate()).
    #[test]
    fn graph_invariants(
        seed in 0u64..1_000_000,
        n in 2usize..60,
        density in 1usize..4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = (n * density).min(n * (n - 1) / 2);
        let g = gnm(n, m, &mut rng);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_edges(), m);
    }
}

/// Random hypergraph token dropping games, built to satisfy the level rule
/// by construction: head at level ℓ ≥ 1, at least one member at ℓ − 1,
/// extra members at any level ≥ ℓ − 1.
fn random_hyper_game(
    seed: u64,
    nodes: usize,
    edges: usize,
    max_level: u32,
) -> token_dropping::assign::hyper::HyperGame {
    use rand::Rng;
    use token_dropping::assign::hyper::{HyperEdge, HyperGame};
    let mut rng = SmallRng::seed_from_u64(seed);
    let levels: Vec<u32> = (0..nodes).map(|_| rng.gen_range(0..=max_level)).collect();
    let tokens: Vec<bool> = (0..nodes).map(|_| rng.gen_bool(0.5)).collect();
    let mut hyperedges = Vec::new();
    for _ in 0..edges {
        // Pick a head with level >= 1 and a child candidate one level below.
        let heads: Vec<usize> = (0..nodes).filter(|&v| levels[v] >= 1).collect();
        if heads.is_empty() {
            break;
        }
        let head = heads[rng.gen_range(0..heads.len())];
        let want = levels[head] - 1;
        let children: Vec<usize> = (0..nodes).filter(|&v| levels[v] == want).collect();
        if children.is_empty() {
            continue;
        }
        let mut members = vec![
            head as u32,
            children[rng.gen_range(0..children.len())] as u32,
        ];
        // Optional extra members at levels >= want.
        for _ in 0..rng.gen_range(0..3usize) {
            let cands: Vec<usize> = (0..nodes)
                .filter(|&v| levels[v] >= want && !members.contains(&(v as u32)))
                .collect();
            if let Some(&m) = cands.get(
                rng.gen_range(0..cands.len().max(1))
                    .min(cands.len().saturating_sub(1)),
            ) {
                if !cands.is_empty() {
                    members.push(m as u32);
                }
            }
        }
        members.sort_unstable();
        members.dedup();
        if members.len() >= 2 {
            hyperedges.push(HyperEdge {
                head: head as u32,
                members,
            });
        }
    }
    HyperGame::new(levels, tokens, hyperedges).expect("constructed valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The hypergraph proposal engine always produces rule-satisfying,
    /// maximal outcomes on random hypergraph games.
    #[test]
    fn hyper_game_rules_hold(
        seed in 0u64..1_000_000,
        nodes in 4usize..30,
        edges in 1usize..40,
        max_level in 1u32..5,
    ) {
        use token_dropping::assign::hyper::{run_proposal, verify_hyper};
        let game = random_hyper_game(seed, nodes, edges, max_level);
        let res = run_proposal(&game);
        prop_assert!(verify_hyper(&game, &res.moves).is_ok());
        // Token conservation.
        let final_count = res.final_tokens.iter().filter(|&&t| t).count();
        prop_assert_eq!(final_count, game.token_count());
        // Each hyperedge is consumed at most once (edge ids unique).
        let mut used: Vec<u32> = res.moves.iter().map(|m| m.edge).collect();
        used.sort_unstable();
        used.dedup();
        prop_assert_eq!(used.len(), res.moves.len());
        // Rounds bounded by move count (every non-final round moves).
        prop_assert!(res.rounds as usize <= res.moves.len() + 1);
    }

    /// Three-level hyper games: the specialised driver agrees with the
    /// general one (shared move rule) and respects the O(S) shape.
    #[test]
    fn hyper_three_level_matches_general(
        seed in 0u64..1_000_000,
        nodes in 4usize..24,
        edges in 1usize..30,
    ) {
        use token_dropping::assign::hyper::{run_proposal, run_three_level, verify_hyper};
        let game = random_hyper_game(seed, nodes, edges, 2);
        let a = run_proposal(&game);
        let b = run_three_level(&game);
        prop_assert_eq!(&a.moves, &b.moves);
        prop_assert!(verify_hyper(&game, &b.moves).is_ok());
    }

    /// Game I/O roundtrips arbitrary random games.
    #[test]
    fn game_io_roundtrip(
        seed in 0u64..1_000_000,
        width in 2usize..10,
        levels in 2usize..5,
    ) {
        use token_dropping::core::game_io::{read_game, write_game};
        let mut rng = SmallRng::seed_from_u64(seed);
        let game = TokenGame::random(&vec![width; levels], 2, 0.5, &mut rng);
        let mut buf = Vec::new();
        write_game(&game, &mut buf).unwrap();
        let game2 = read_game(&buf[..]).unwrap();
        prop_assert_eq!(game.levels(), game2.levels());
        prop_assert_eq!(game.tokens(), game2.tokens());
        prop_assert_eq!(game.graph(), game2.graph());
    }

    /// Edge-list I/O roundtrips arbitrary graphs.
    #[test]
    fn edge_list_io_roundtrip(
        seed in 0u64..1_000_000,
        n in 2usize..40,
    ) {
        use token_dropping::graph::io::{read_edge_list, write_edge_list};
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = gnm(n, m, &mut rng);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }
}
