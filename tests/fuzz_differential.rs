//! The mass randomized differential fuzz plane: a deterministic corpus of
//! 200+ seeded [`WorkloadSpec`]s, spanning every generator family, driven
//! through every protocol stack × executor grid by [`td_bench::fuzz`].
//! Each spec is checked for
//!
//! * verifier acceptance (rules 1–3 + dynamics, orientation stability,
//!   assignment stability / k-boundedness — after every churn event on
//!   live traces),
//! * bit-identical outputs, rounds, and message counts across the
//!   sequential executor and the pinned-worker engine (`parallel(T)` and
//!   explicit shard grids; incremental repair vs full recompute on churn
//!   traces),
//! * metamorphic relabeling invariance (a seeded node relabeling still
//!   verifies, with label-invariant structure preserved), and
//! * seed-independent structural stats of the generator itself.
//!
//! Every failure prints a self-contained `td fuzz --spec '<spec>'` repro
//! line. The corpus is split across one test per pipeline kind so a
//! divergence names its family group in the test name too.

use td_bench::fuzz::{check, check_balance, corpus, repro_line};
use td_bench::spec::{FamilyKind, WorkloadSpec, FAMILIES};

/// Total corpus size.
const CORPUS: usize = 208;
// The acceptance floor, enforced at compile time: >= 200 specs.
const _: () = assert!(CORPUS >= 200);
const BASE_SEED: u64 = 0xF0CC;

fn full_corpus() -> Vec<WorkloadSpec> {
    corpus(CORPUS, BASE_SEED)
}

/// Runs every corpus spec of the given kinds, collecting failures instead
/// of stopping at the first, and panics with one repro line per failure.
fn run_kinds(kinds: &[FamilyKind]) -> usize {
    let specs: Vec<WorkloadSpec> = full_corpus()
        .into_iter()
        .filter(|s| kinds.contains(&s.kind()))
        .collect();
    assert!(!specs.is_empty(), "no specs of kinds {kinds:?} in corpus");
    let mut failures = Vec::new();
    for spec in &specs {
        if let Err(e) = check(spec) {
            failures.push(format!("  {}   # {e}", repro_line(spec)));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} specs diverged; repro lines:\n{}",
        failures.len(),
        specs.len(),
        failures.join("\n")
    );
    specs.len()
}

#[test]
fn corpus_spans_families_and_roundtrips() {
    let specs = full_corpus();
    assert_eq!(specs.len(), CORPUS);

    // Spans every registered family (>= 6 required, we ship 13).
    let mut families: Vec<&str> = specs.iter().map(|s| s.family).collect();
    families.sort_unstable();
    families.dedup();
    assert!(
        families.len() >= 6,
        "corpus spans only {} families",
        families.len()
    );
    assert_eq!(families.len(), FAMILIES.len(), "corpus misses a family");

    // Every spec's one-line form is a complete repro: display -> parse is
    // the identity, and no two specs collide.
    let mut lines: Vec<String> = Vec::with_capacity(specs.len());
    for spec in &specs {
        let line = spec.to_string();
        let back = WorkloadSpec::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert_eq!(*spec, back, "roundtrip drift for {line}");
        lines.push(line);
    }
    lines.sort_unstable();
    let before = lines.len();
    lines.dedup();
    assert_eq!(lines.len(), before, "duplicate specs in corpus");

    // Determinism: the corpus is a pure function of (count, base_seed).
    assert_eq!(specs, full_corpus());
}

#[test]
fn game_specs_have_zero_divergence() {
    let n = run_kinds(&[FamilyKind::Game]);
    assert!(n >= 40, "only {n} game specs");
}

#[test]
fn orientation_specs_have_zero_divergence() {
    let n = run_kinds(&[FamilyKind::Orientation]);
    assert!(n >= 40, "only {n} orientation specs");
}

#[test]
fn assignment_specs_have_zero_divergence() {
    let n = run_kinds(&[FamilyKind::Assignment]);
    assert!(n >= 20, "only {n} assignment specs");
}

#[test]
fn churn_specs_have_zero_divergence() {
    let n = run_kinds(&[FamilyKind::OrientChurn, FamilyKind::AssignChurn]);
    assert!(n >= 40, "only {n} churn specs");
}

/// The competing-balancer differential on a pinned sub-corpus: every
/// registered protocol (token dropping, rotor-router, matching exchange)
/// on each spec's projected node-load workload, bit-identical across the
/// sequential / parallel / sharded executor grid, accepted by its own
/// verifier, and invariant under metamorphic relabeling. The stride keeps
/// the sample deterministic while still cycling through every family.
#[test]
fn balance_protocols_have_zero_divergence() {
    let specs: Vec<WorkloadSpec> = full_corpus().into_iter().step_by(7).collect();
    assert!(specs.len() >= 25, "only {} balance specs", specs.len());
    let mut failures = Vec::new();
    for spec in &specs {
        if let Err(e) = check_balance(spec) {
            failures.push(format!("  {}   # {e}", repro_line(spec)));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} balance specs diverged; repro lines:\n{}",
        failures.len(),
        specs.len(),
        failures.join("\n")
    );
}

/// The checked-in regression corpus: specs that once exercised tricky
/// paths (degenerate sizes, wraparound edges, delete-heavy traces, extreme
/// skew), replayed forever. `td fuzz` appends failing specs to
/// `fuzz-failures.spec` in exactly this one-spec-per-line format — move
/// them into `tests/corpus/` to pin them.
#[test]
fn regression_corpus_replays_clean() {
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing {dir:?}: {e}"))
        .map(|r| r.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "spec"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no .spec files under {dir:?}");
    let mut total = 0usize;
    let mut failures = Vec::new();
    for path in &entries {
        let text = std::fs::read_to_string(path).expect("readable spec file");
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let spec = WorkloadSpec::parse(line)
                .unwrap_or_else(|e| panic!("{path:?}: bad spec '{line}': {e}"));
            total += 1;
            if let Err(e) = check(&spec) {
                failures.push(format!("  {}   # {path:?}: {e}", repro_line(&spec)));
            }
        }
    }
    assert!(total >= 6, "regression corpus holds only {total} specs");
    assert!(
        failures.is_empty(),
        "{} regression spec(s) regressed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
