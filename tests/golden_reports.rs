//! Golden snapshot tests for [`td_bench::ScenarioReport`]: every registry
//! scenario, run at a fixed small size and seed on the sequential
//! executor, must serialize to exactly the snapshot stored under
//! `tests/golden/`. Any drift in instance shape, rounds, messages, or
//! notes fails with a readable line diff.
//!
//! To bless intentional changes (new scenario, changed workload, changed
//! cost accounting), regenerate the snapshots with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! and review the resulting `tests/golden/*.golden` diff like any other
//! code change.

use std::fmt::Write as _;
use std::path::PathBuf;
use td_bench::compare::compare_families;
use td_bench::scenario::{registry, Scenario, ScenarioKind};
use td_bench::CompareConfig;
use td_local::Simulator;

/// Fixed golden sizes: small enough to run in milliseconds, large enough
/// that every scenario does nontrivial work.
fn golden_size(sc: &dyn Scenario) -> u32 {
    match sc.kind() {
        ScenarioKind::Game => 4,
        ScenarioKind::Orientation => {
            if sc.name() == "cascade-orientation" {
                16
            } else {
                3
            }
        }
        ScenarioKind::Assignment => 3,
    }
}

const GOLDEN_SEED: u64 = 42;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Renders a line-by-line diff: ` ` common, `-` expected only, `+` actual
/// only (plain LCS-free positional diff — the snapshots are short and
/// line-aligned, so positional is the readable choice).
fn render_diff(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for i in 0..e.len().max(a.len()) {
        match (e.get(i), a.get(i)) {
            (Some(x), Some(y)) if x == y => writeln!(out, "  {x}").unwrap(),
            (Some(x), Some(y)) => {
                writeln!(out, "- {x}").unwrap();
                writeln!(out, "+ {y}").unwrap();
            }
            (Some(x), None) => writeln!(out, "- {x}").unwrap(),
            (None, Some(y)) => writeln!(out, "+ {y}").unwrap(),
            (None, None) => unreachable!(),
        }
    }
    out
}

#[test]
fn every_scenario_report_matches_its_golden_snapshot() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
    }
    let sim = Simulator::sequential();
    let mut failures = Vec::new();
    for sc in registry() {
        let rep = sc.run(golden_size(*sc), GOLDEN_SEED, &sim);
        let actual = rep.golden();
        let path = dir.join(format!("{}.golden", sc.name()));
        if update {
            std::fs::write(&path, &actual).expect("write golden");
            continue;
        }
        // An absent snapshot (new scenario, fresh checkout of a pruned
        // tree) is a first-class "bless me" failure, not a raw io error —
        // and it joins `failures` so every missing scenario is listed in
        // one run instead of aborting at the first.
        let expected = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                failures.push(format!(
                    "{}: no golden at {path:?} — run UPDATE_GOLDEN=1 cargo test --test golden_reports",
                    sc.name()
                ));
                continue;
            }
        };
        if expected != actual {
            failures.push(format!(
                "{} drifted from {path:?} (-expected +actual):\n{}",
                sc.name(),
                render_diff(&expected, &actual)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} scenario report(s) drifted:\n\n{}\n\
         If the change is intentional, bless it with \
         UPDATE_GOLDEN=1 cargo test --test golden_reports",
        failures.len(),
        failures.join("\n")
    );
}

/// The `td compare` balancer sweep over two small families, pinned at a
/// fixed size and seed. Drift in convergence rounds, message counts, token
/// moves, final discrepancy, or load fingerprints of *any* registered
/// protocol fails with a line diff; bless intentional protocol changes
/// with `UPDATE_GOLDEN=1 cargo test --test golden_reports`.
fn compare_golden(threads: usize, shards: usize) -> String {
    let cfg = CompareConfig {
        size: Some(8),
        seed: GOLDEN_SEED,
        threads,
        shards,
        ..CompareConfig::default()
    };
    compare_families(&cfg, &["rotor".to_string(), "torus".to_string()])
        .expect("compare runs clean at golden size")
        .golden()
}

#[test]
fn compare_report_matches_its_golden_snapshot() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    let path = dir.join("compare-rotor-torus.golden");
    let actual = compare_golden(2, 2);
    if update {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("no golden at {path:?} — run UPDATE_GOLDEN=1 cargo test --test golden_reports")
    });
    assert!(
        expected == actual,
        "compare report drifted from {path:?} (-expected +actual):\n{}\n\
         If the change is intentional, bless it with \
         UPDATE_GOLDEN=1 cargo test --test golden_reports",
        render_diff(&expected, &actual)
    );
}

/// The compare snapshot is a pure function of (instance, seed): rerunning
/// the sweep on a different thread × shard grid must golden-match exactly.
#[test]
fn compare_golden_is_executor_independent() {
    assert_eq!(
        compare_golden(2, 2),
        compare_golden(4, 3),
        "compare sweep drifts across executor grids"
    );
}

/// One rendered `td exp` markdown table (e17) and one rendered SVG plot
/// (e21's race chart), produced from a warm quick-mode cache, pinned as
/// golden snapshots. Everything upstream is deterministic — workload
/// generation, protocol execution, integer-math plot layout — so the
/// rendered artifacts must reproduce byte-identically on every machine,
/// and a second render over the same cache must match the first exactly.
#[test]
fn exp_render_matches_its_golden_snapshots() {
    use td_bench::exp;

    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    let results = std::env::temp_dir().join(format!("td-exp-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&results);

    let cfg = exp::ExpConfig::quick();
    let ids: Vec<String> = vec!["e17".into(), "e21".into()];
    exp::run(&cfg, &ids, &results, false).expect("exp run at quick size");
    let rendered = exp::render(&cfg, &ids, &results).expect("exp render from warm cache");

    let table = rendered
        .tables
        .iter()
        .find(|(id, _)| id == "e17")
        .map(|(_, block)| block.clone())
        .expect("e17 renders a table");
    let plot = rendered
        .plots
        .iter()
        .find(|(name, _)| name == "race.svg")
        .map(|(_, svg)| svg.clone())
        .expect("e21 renders race.svg");

    // Render is a pure function of the cache: a second pass must be
    // byte-identical.
    let again = exp::render(&cfg, &ids, &results).expect("second render");
    assert_eq!(
        rendered.tables, again.tables,
        "exp tables drift across renders of the same cache"
    );
    assert_eq!(
        rendered.plots, again.plots,
        "exp plots drift across renders of the same cache"
    );
    let _ = std::fs::remove_dir_all(&results);

    let mut failures = Vec::new();
    for (name, actual) in [
        ("exp-e17-table.golden", table),
        ("exp-e21-race.svg.golden", plot),
    ] {
        let path = dir.join(name);
        if update {
            std::fs::create_dir_all(&dir).expect("create tests/golden");
            std::fs::write(&path, &actual).expect("write golden");
            continue;
        }
        let expected = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                failures.push(format!(
                    "{name}: no golden at {path:?} — run UPDATE_GOLDEN=1 cargo test --test golden_reports"
                ));
                continue;
            }
        };
        if expected != actual {
            failures.push(format!(
                "{name} drifted from {path:?} (-expected +actual):\n{}",
                render_diff(&expected, &actual)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} exp artifact(s) drifted:\n\n{}\n\
         If the change is intentional, bless it with \
         UPDATE_GOLDEN=1 cargo test --test golden_reports",
        failures.len(),
        failures.join("\n")
    );
}

/// The snapshots themselves must be executor-independent: the golden run
/// reproduces bit-identically on the sharded executor.
#[test]
fn golden_runs_are_executor_independent() {
    let sim = Simulator::sequential();
    let sharded = Simulator::sharded(4, 2);
    for sc in registry() {
        // cascade-orientation uses its own host-side driver; everything
        // else exercises the executor. Run both anyway — equality must
        // hold regardless.
        let a = sc.run(golden_size(*sc), GOLDEN_SEED, &sim);
        let b = sc.run(golden_size(*sc), GOLDEN_SEED, &sharded);
        assert_eq!(
            a.golden(),
            b.golden(),
            "{} drifts under sharding",
            sc.name()
        );
    }
}
