//! Differential testing of the pinned-worker sharded engine: for every
//! registry scenario and a sample of churn traces, the engine
//! (locality-aware partition, worker-owned arenas, SPSC boundary rings,
//! epoch protocol) must be **bit-identical** to the sequential executor —
//! same outputs, same round counts, same message counts — over the whole
//! shard × thread grid, including the `parallel(T)` auto-shard alias.
//!
//! This is the contract that makes `Simulator::sharded(s, t)` (and the
//! churn engines' `with_shards`) a pure performance knob, exactly like the
//! thread count before it.

use td_bench::scenario::{registry, ScenarioKind};
use td_bench::workloads;
use td_local::churn::RepairMode;
use td_local::Simulator;
use token_dropping::assign::protocol::run_distributed_assignment;
use token_dropping::assign::repair::AssignChurnEngine;
use token_dropping::core::proposal;
use token_dropping::local::ChurnEvent;
use token_dropping::orient::protocol::run_distributed;
use token_dropping::orient::repair::OrientChurnEngine;
use token_dropping::orient::Orientation;

const SHARDS: [usize; 4] = [1, 2, 4, 8];
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn small_size(kind: ScenarioKind, name: &str) -> u32 {
    match kind {
        ScenarioKind::Game => 4,
        ScenarioKind::Orientation => {
            if name == "cascade-orientation" {
                16
            } else {
                3
            }
        }
        // The exact stable-assignment protocol is O(C·S⁴); size 3 keeps
        // the 14-executor sweep fast while still crossing shard borders.
        ScenarioKind::Assignment => 3,
    }
}

/// Every registry scenario reports identical rounds and message counts
/// under sequential, the `parallel(T)` auto-shard alias, and every
/// (shards × threads) grid point of the engine. Each run also
/// self-verifies its output (stability, rules 1-3, k-boundedness) inside
/// `Scenario::run`.
#[test]
fn registry_scenarios_identical_across_executors() {
    for sc in registry() {
        let size = small_size(sc.kind(), sc.name());
        let seq = sc.run(size, 42, &Simulator::sequential());
        let par = sc.run(size, 42, &Simulator::parallel(3));
        assert_eq!(seq.rounds, par.rounds, "{} parallel rounds", sc.name());
        assert_eq!(
            seq.messages,
            par.messages,
            "{} parallel messages",
            sc.name()
        );
        for &s in &SHARDS {
            for &t in &THREADS {
                let sh = sc.run(size, 42, &Simulator::sharded(s, t));
                assert_eq!(
                    seq.rounds,
                    sh.rounds,
                    "{} rounds diverge at shards {s}, threads {t}",
                    sc.name()
                );
                assert_eq!(
                    seq.messages,
                    sh.messages,
                    "{} messages diverge at shards {s}, threads {t}",
                    sc.name()
                );
            }
        }
    }
}

/// Protocol-level outputs (not just counts): the proposal protocol's move
/// log and solution are bit-identical over the executor grid.
#[test]
fn game_outputs_identical_across_executors() {
    for &seed in &[3u64, 9001] {
        let game = workloads::layered_game(4, 4, seed);
        let seq = proposal::run_on_simulator(&game, &Simulator::sequential());
        for &s in &SHARDS {
            for &t in &THREADS {
                let sh = proposal::run_on_simulator(&game, &Simulator::sharded(s, t));
                assert_eq!(seq.solution, sh.solution, "seed {seed}, {s}x{t}");
                assert_eq!(seq.log, sh.log, "seed {seed}, {s}x{t}");
                assert_eq!(seq.comm_rounds, sh.comm_rounds, "seed {seed}, {s}x{t}");
                assert_eq!(seq.messages, sh.messages, "seed {seed}, {s}x{t}");
            }
        }
    }
}

/// Stable orientation outputs over the grid.
#[test]
fn orientation_outputs_identical_across_executors() {
    for &seed in &[17u64, 9001] {
        let g = workloads::regular_graph(3, 8, seed);
        let seq = run_distributed(&g, &Simulator::sequential());
        seq.orientation.verify_stable(&g).unwrap();
        for &s in &SHARDS {
            for &t in &THREADS {
                let sh = run_distributed(&g, &Simulator::sharded(s, t));
                assert_eq!(seq.orientation, sh.orientation, "seed {seed}, {s}x{t}");
                assert_eq!(seq.comm_rounds, sh.comm_rounds, "seed {seed}, {s}x{t}");
                assert_eq!(seq.messages, sh.messages, "seed {seed}, {s}x{t}");
            }
        }
    }
}

/// Stable assignment outputs (exact and 2-bounded) over the grid.
#[test]
fn assignment_outputs_identical_across_executors() {
    let inst = workloads::uniform_assignment(9, 4, 3);
    for bound in [None, Some(2)] {
        let seq = run_distributed_assignment(&inst, bound, &Simulator::sequential());
        for &s in &SHARDS {
            for &t in &THREADS {
                let sh = run_distributed_assignment(&inst, bound, &Simulator::sharded(s, t));
                assert_eq!(seq.assignment, sh.assignment, "bound {bound:?}, {s}x{t}");
                assert_eq!(seq.comm_rounds, sh.comm_rounds, "bound {bound:?}, {s}x{t}");
                assert_eq!(seq.messages, sh.messages, "bound {bound:?}, {s}x{t}");
            }
        }
    }
}

/// A sample of churn traces on the sharded plane: an adversarial edge-flip
/// trace on the orientation repair engine, bit-identical repair stats and
/// final solution across every shard × thread grid point.
#[test]
fn churn_orientation_trace_identical_on_sharded_plane() {
    use td_graph::EdgeId;
    let run = |shards: usize, threads: usize| {
        let g = workloads::regular_graph(4, 10, 7);
        let mut eng = OrientChurnEngine::new(
            g.clone(),
            Orientation::toward_larger(&g),
            RepairMode::Incremental,
        )
        .with_threads(threads)
        .with_shards(shards);
        let mut total = eng.stabilize();
        eng.verify().expect("initial stabilization");
        // Deterministic flip trace: walk the edge list with a fixed stride.
        for i in 0..12u32 {
            let e = EdgeId((i * 7) % g.num_edges() as u32);
            let (u, v) = g.endpoints(e);
            total.absorb(eng.apply(&ChurnEvent::EdgeFlip { u, v }).expect("valid"));
            eng.verify().expect("stable after repair");
        }
        let fingerprint: Vec<u32> = g
            .edges()
            .map(|e| eng.orientation().head(e).expect("complete").0)
            .collect();
        (total, fingerprint)
    };
    let (seq_stats, seq_fp) = run(1, 1);
    for &s in &SHARDS {
        for &t in &THREADS {
            let (stats, fp) = run(s, t);
            assert_eq!(seq_fp, fp, "solution diverges at {s}x{t}");
            assert_eq!(seq_stats, stats, "repair stats diverge at {s}x{t}");
        }
    }
}

/// Same for the assignment repair engine, under a drain/rejoin trace.
#[test]
fn churn_assignment_trace_identical_on_sharded_plane() {
    let run = |shards: usize, threads: usize| {
        let base = workloads::uniform_assignment(18, 6, 11);
        let mut eng = AssignChurnEngine::new(&base, RepairMode::Incremental)
            .with_threads(threads)
            .with_shards(shards);
        let mut total = eng.stabilize();
        eng.verify().expect("initial stabilization");
        for i in 0..10u32 {
            let ev = match i % 3 {
                0 => ChurnEvent::ServerCapacity {
                    server: (i / 3) % 6,
                    capacity: 0,
                },
                1 => ChurnEvent::ServerCapacity {
                    server: (i / 3) % 6,
                    capacity: 1,
                },
                _ => ChurnEvent::CustomerJoin {
                    servers: vec![i % 6, (i + 2) % 6],
                },
            };
            total.absorb(eng.apply(&ev).expect("valid"));
            eng.verify().expect("stable after repair");
        }
        let fp: Vec<u32> = eng
            .assignment_vector()
            .iter()
            .map(|a| a.map_or(0, |s| s + 1))
            .collect();
        (total, fp)
    };
    let (seq_stats, seq_fp) = run(1, 1);
    for &s in &SHARDS {
        for &t in &THREADS {
            let (stats, fp) = run(s, t);
            assert_eq!(seq_fp, fp, "assignment diverges at {s}x{t}");
            assert_eq!(seq_stats, stats, "repair stats diverge at {s}x{t}");
        }
    }
}

/// The quiesced-shard skip is observable: a workload whose active region
/// is confined to one end of a path reports skipped shard-rounds without
/// changing any output.
#[test]
fn quiesced_regions_skip_shard_rounds_without_changing_outputs() {
    let game = workloads::layered_game(4, 6, 5);
    let seq = proposal::run_on_simulator(&game, &Simulator::sequential());
    let sh = proposal::run_on_simulator(&game, &Simulator::sharded(8, 2));
    assert_eq!(seq.log, sh.log);
    let stats = sh.sharding.expect("sharded run reports stats");
    assert_eq!(stats.shards, 8);
    assert!(
        stats.shard_rounds_skipped > 0,
        "layered drains quiesce top shards early: {stats:?}"
    );
}
