//! The committed trace corpus (`traces/*.tdt`) and the `td-trace/v1`
//! format itself, checked end to end:
//!
//! * every committed trace parses, matches its header fingerprint, and is
//!   **re-derivable**: regenerating its shape from the header's spec and
//!   seed reproduces the committed events bit for bit (so the corpus
//!   cannot silently drift from the generators),
//! * every committed trace replays clean through the incremental-repair
//!   engine — sequential, parallel, and sharded executors all landing on
//!   the same stats and solution fingerprint — and through the fuzz
//!   plane's full differential,
//! * malformed documents (wrong schema line, truncation, tampered events,
//!   forged fingerprints, unknown event keywords) are diagnostics, never
//!   panics, and
//! * a proptest round-trip: any event sequence survives
//!   `write -> read` unchanged.

use proptest::prelude::*;
use td_bench::trace::{self, Trace, TraceSource};
use td_bench::WorkloadSpec;
use td_graph::NodeId;
use td_local::{ChurnEvent, RepairMode};

fn corpus_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("traces")
}

fn corpus() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("traces/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "tdt"))
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).expect("readable trace"),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_covers_every_registered_shape() {
    let names: Vec<String> = corpus().iter().map(|(n, _)| n.clone()).collect();
    assert!(names.len() >= 5, "corpus holds >= 5 traces: {names:?}");
    for s in trace::SHAPES {
        assert!(
            names.iter().any(|n| n == &format!("{}.tdt", s.name)),
            "shape '{}' has a committed trace",
            s.name
        );
    }
}

#[test]
fn corpus_parses_and_is_rederivable_from_its_own_header() {
    for (name, text) in corpus() {
        let t = Trace::read(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let TraceSource::Shape(shape) = &t.source else {
            panic!("{name}: corpus traces record shapes");
        };
        // Same shape, same size, same seed => the exact committed events.
        let again = Trace::from_shape(shape, t.spec.size, t.spec.seed, t.spec.param("events"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            again, t,
            "{name}: committed corpus drifted from the generator"
        );
        // And the serialized form round-trips byte-identically.
        assert_eq!(again.write(), text, "{name}: serialization drifted");
    }
}

#[test]
fn corpus_replays_bit_identically_across_executors() {
    for (name, text) in corpus() {
        let t = Trace::read(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let seq = trace::replay_engine(&t, RepairMode::Incremental, 1, 1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(seq.events, t.events.len(), "{name}");
        for (threads, shards) in [(2, 1), (2, 2)] {
            let par = trace::replay_engine(&t, RepairMode::Incremental, threads, shards)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(par, seq, "{name}: threads {threads} x shards {shards}");
        }
        let rec = trace::replay_engine(&t, RepairMode::FullRecompute, 1, 1)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(rec.solution_fp, seq.solution_fp, "{name}: recompute agrees");
    }
}

#[test]
fn corpus_survives_the_fuzz_differential() {
    for (name, text) in corpus() {
        let t = Trace::read(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = trace::replay_differential(&t).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.compared > 0, "{name}: differential ran its grid");
    }
}

#[test]
fn malformed_trace_documents_are_rejected_with_diagnostics() {
    let (name, good) = corpus().into_iter().next().expect("non-empty corpus");

    let e = Trace::read(&good.replacen("td-trace/v1", "td-trace/v2", 1)).unwrap_err();
    assert!(e.contains("schema mismatch"), "{name}: {e}");

    let cut: String = good.lines().take(10).map(|l| format!("{l}\n")).collect();
    let e = Trace::read(&cut).unwrap_err();
    assert!(e.contains("truncated"), "{name}: {e}");

    let e = Trace::read(good.trim_end_matches("end\n")).unwrap_err();
    assert!(e.contains("end"), "{name}: {e}");

    // An event variant this schema version does not know.
    let mut lines: Vec<&str> = good.lines().collect();
    let ev = lines
        .iter()
        .position(|l| ChurnEvent::decode(l).is_ok())
        .expect("an event line");
    let swapped = format!("teleport {}", lines[ev]);
    lines[ev] = &swapped;
    let doc = lines.join("\n") + "\n";
    let e = Trace::read(&doc).unwrap_err();
    assert!(e.contains("unknown event keyword"), "{name}: {e}");

    // A forged header fingerprint.
    let forged: String = good
        .lines()
        .map(|l| {
            if l.starts_with("fingerprint ") {
                "fingerprint 0123456789abcdef\n".to_string()
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let e = Trace::read(&forged).unwrap_err();
    assert!(e.contains("fingerprint mismatch"), "{name}: {e}");
}

/// A seeded stream of arbitrary events — every variant, full-range ids
/// (the codec round-trip does not require semantic validity).
fn random_events(seed: u64, len: usize) -> Vec<ChurnEvent> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..8u32) {
            0 => ChurnEvent::EdgeInsert {
                u: NodeId(rng.gen()),
                v: NodeId(rng.gen()),
            },
            1 => ChurnEvent::EdgeDelete {
                u: NodeId(rng.gen()),
                v: NodeId(rng.gen()),
            },
            2 => ChurnEvent::EdgeFlip {
                u: NodeId(rng.gen()),
                v: NodeId(rng.gen()),
            },
            3 => ChurnEvent::TokenArrive(NodeId(rng.gen())),
            4 => ChurnEvent::TokenDrop(NodeId(rng.gen())),
            5 => ChurnEvent::CustomerJoin {
                servers: (0..rng.gen_range(0..5usize)).map(|_| rng.gen()).collect(),
            },
            6 => ChurnEvent::CustomerLeave(rng.gen()),
            _ => ChurnEvent::ServerCapacity {
                server: rng.gen(),
                capacity: rng.gen(),
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full document round-trip: any event sequence, wrapped in a
    /// valid header, survives `write -> read` unchanged — header, source,
    /// events, fingerprint.
    #[test]
    fn trace_documents_roundtrip_any_event_sequence(
        seed in 0u64..u64::MAX,
        len in 0usize..80,
    ) {
        let events = random_events(seed, len);
        let spec = WorkloadSpec::parse("churn-orient:size=16:seed=1").unwrap()
            .with_seed(seed)
            .with_param("events", events.len() as u32);
        let t = Trace { spec, source: TraceSource::SpecMix, events };
        let back = Trace::read(&t.write()).unwrap();
        prop_assert_eq!(back, t);
    }

    /// Every single event round-trips through the line codec.
    #[test]
    fn event_lines_roundtrip(seed in 0u64..u64::MAX) {
        for ev in random_events(seed, 24) {
            prop_assert_eq!(ChurnEvent::decode(&ev.encode()).unwrap(), ev);
        }
    }
}
