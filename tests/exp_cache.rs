//! Cache correctness for the `td exp` plane (crates/bench/src/exp.rs).
//!
//! The contract under test:
//!
//! * a warm rerun satisfies every configuration from the cache and leaves
//!   the cached files byte-identical — nothing re-executes;
//! * `--force` re-executes everything even over a warm cache;
//! * changing any key component (seed, workload spec, executor grid,
//!   schema version) lands on a different cache key, so stale results can
//!   never be served for a different configuration;
//! * the config → key canonicalization is injective and stable across
//!   reorderings of equivalent workload parameters (proptest).

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use td_bench::exp::{self, canonical_key_string, fnv1a64, ExpConfig, UnitStatus, VERSION};
use td_bench::WorkloadSpec;

/// A fresh scratch directory under the system temp dir, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("td-exp-cache-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Every cached result file (excluding the manifest) with its exact bytes.
fn result_files(root: &Path) -> BTreeMap<PathBuf, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().is_some_and(|n| n != "manifest.json") {
                let bytes = fs::read(&path).expect("cached result readable");
                out.insert(path, bytes);
            }
        }
    }
    out
}

fn ids(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn warm_rerun_hits_cache_and_leaves_bytes_untouched() {
    let dir = scratch("warm");
    let cfg = ExpConfig::quick();

    let cold = exp::run(&cfg, &ids(&["e17"]), &dir, false).expect("cold run");
    assert!(!cold.units.is_empty());
    assert_eq!(cold.hits(), 0, "cold cache cannot hit");
    assert_eq!(cold.misses(), cold.units.len());
    assert!(cold.units.iter().all(|u| u.status == UnitStatus::Ran));

    let before = result_files(&dir);
    assert_eq!(before.len(), cold.units.len(), "one file per configuration");
    assert!(dir.join("manifest.json").is_file());

    let warm = exp::run(&cfg, &ids(&["e17"]), &dir, false).expect("warm run");
    assert_eq!(warm.misses(), 0, "warm rerun must execute zero configs");
    assert_eq!(warm.hits(), cold.units.len());
    assert!(warm.units.iter().all(|u| u.status == UnitStatus::Hit));

    let after = result_files(&dir);
    assert_eq!(before, after, "warm rerun must not rewrite cached results");

    // The same keys resolve on both passes, in the same order.
    let cold_keys: Vec<u64> = cold.units.iter().map(|u| u.key).collect();
    let warm_keys: Vec<u64> = warm.units.iter().map(|u| u.key).collect();
    assert_eq!(cold_keys, warm_keys);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn force_reexecutes_over_a_warm_cache() {
    let dir = scratch("force");
    let cfg = ExpConfig::quick();

    let cold = exp::run(&cfg, &ids(&["e16"]), &dir, false).expect("cold run");
    let forced = exp::run(&cfg, &ids(&["e16"]), &dir, true).expect("forced run");
    assert_eq!(forced.units.len(), cold.units.len());
    assert_eq!(forced.hits(), 0, "--force must not serve cached results");
    assert!(forced.units.iter().all(|u| u.status == UnitStatus::Forced));

    // The manifest on disk records the forced statuses.
    let manifest = fs::read_to_string(dir.join("manifest.json")).expect("manifest");
    assert!(manifest.contains("\"force\":true"));
    assert!(manifest.contains("\"status\":\"forced\""));
    assert!(!manifest.contains("\"status\":\"hit\""));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn changing_seed_or_grid_misses_the_cache() {
    let dir = scratch("components");
    let cfg = ExpConfig::quick();

    let base = exp::run(&cfg, &ids(&["e21"]), &dir, false).expect("base run");
    let n = base.units.len();

    // A different seed is a different configuration: nothing hits.
    let reseeded = ExpConfig {
        seed: cfg.seed + 1,
        ..cfg.clone()
    };
    let run2 = exp::run(&reseeded, &ids(&["e21"]), &dir, false).expect("reseeded run");
    assert_eq!(run2.hits(), 0, "seed is part of the cache key");
    assert_eq!(result_files(&dir).len(), 2 * n);

    // A different executor grid (threads) is a different configuration too.
    let regridded = ExpConfig {
        threads: cfg.threads + 2,
        ..cfg.clone()
    };
    let run3 = exp::run(&regridded, &ids(&["e21"]), &dir, false).expect("regridded run");
    assert_eq!(run3.hits(), 0, "executor grid is part of the cache key");
    assert_eq!(result_files(&dir).len(), 3 * n);

    // And the original configuration still hits every one of its results.
    let warm = exp::run(&cfg, &ids(&["e21"]), &dir, false).expect("warm base run");
    assert_eq!(warm.misses(), 0);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn schema_version_is_part_of_the_key() {
    let a = canonical_key_string("e17", "grid:size=8:seed=42", "sequential", 42, 3, VERSION);
    let b = canonical_key_string(
        "e17",
        "grid:size=8:seed=42",
        "sequential",
        42,
        3,
        VERSION + 1,
    );
    assert_ne!(a, b);
    assert_ne!(fnv1a64(a.as_bytes()), fnv1a64(b.as_bytes()));
}

#[test]
fn key_string_format_is_pinned() {
    // The canonical key string is an on-disk contract: changing it
    // invalidates every cache. Pin the exact spelling.
    assert_eq!(
        canonical_key_string("e17", "grid:size=8:seed=42", "sequential", 7, 3, 1),
        "td-exp/v1|v=1|exp=e17|spec=grid:size=8:seed=42|grid=sequential|seed=7|repeat=3"
    );
    // FNV-1a 64 known vectors (offset basis, and "a").
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
}

/// Builds a realistic key-component tuple from sampled indices. Spec
/// strings come from the real [`WorkloadSpec`] printer so they exercise the
/// actual canonical forms the registry produces.
#[allow(clippy::too_many_arguments)] // one slot per sampled key component
fn key_components(
    exp_i: usize,
    family_i: usize,
    size: u32,
    spec_seed: u64,
    grid_i: usize,
    seed: u64,
    repeat: usize,
    version: u32,
) -> (String, String, String, u64, usize, u32) {
    const EXPS: [&str; 7] = ["e15", "e16", "e17", "e18", "e19", "e21", "perf"];
    const FAMILIES: [&str; 4] = ["grid", "torus", "rotor", "hypercube"];
    const GRIDS: [&str; 4] = [
        "sequential",
        "parallel(4)",
        "sharded(2,4)",
        "churn(1,1)+churn(4,4)",
    ];
    let spec = WorkloadSpec::parse(&format!(
        "{}:size={size}:seed={spec_seed}",
        FAMILIES[family_i]
    ))
    .expect("valid spec")
    .to_string();
    (
        EXPS[exp_i].to_string(),
        spec,
        GRIDS[grid_i].to_string(),
        seed,
        repeat,
        version,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Injectivity: two component tuples map to the same canonical key
    /// string exactly when they are equal. (The `|` separator can appear in
    /// no component, so the joined form cannot alias.)
    #[test]
    fn canonical_key_is_injective(
        exp_a in 0usize..7, fam_a in 0usize..4, size_a in 3u32..9, sseed_a in 0u64..1000,
        grid_a in 0usize..4, seed_a in 0u64..1000, rep_a in 1usize..4, ver_a in 1u32..3,
        exp_b in 0usize..7, fam_b in 0usize..4, size_b in 3u32..9, sseed_b in 0u64..1000,
        grid_b in 0usize..4, seed_b in 0u64..1000, rep_b in 1usize..4, ver_b in 1u32..3,
    ) {
        let a = key_components(exp_a, fam_a, size_a, sseed_a, grid_a, seed_a, rep_a, ver_a);
        let b = key_components(exp_b, fam_b, size_b, sseed_b, grid_b, seed_b, rep_b, ver_b);
        let ka = canonical_key_string(&a.0, &a.1, &a.2, a.3, a.4, a.5);
        let kb = canonical_key_string(&b.0, &b.1, &b.2, b.3, b.4, b.5);
        prop_assert_eq!(a == b, ka == kb, "keys {} / {}", ka, kb);
    }

    /// Stability: equivalent workload specs spelled with their parameters
    /// in any order canonicalize to the same spec string, hence the same
    /// cache key.
    #[test]
    fn key_is_stable_across_param_reorderings(
        size in 4u32..10,
        seed in 0u64..1000,
        levels in 1u32..8,
        delta in 1u32..6,
        density in 1u32..100,
        shuffle in 0usize..24,
    ) {
        // "layered" declares levels, delta, density_pct in that order; feed
        // the parser a permuted spelling and check the canonical form.
        let mut parts = [
            format!("size={size}"),
            format!("seed={seed}"),
            format!("levels={levels}"),
            format!("delta={delta}"),
            format!("density_pct={density}"),
        ];
        // Apply one of the permutations of the first four slots.
        let perm = shuffle;
        parts.swap(0, perm % 5);
        parts.swap(1, (perm / 5) % 5);
        let permuted = format!("layered:{}", parts.join(":"));
        let canonical = format!(
            "layered:size={size}:seed={seed}:levels={levels}:delta={delta}:density_pct={density}"
        );

        let from_permuted = WorkloadSpec::parse(&permuted).expect("valid permuted spec");
        let from_canonical = WorkloadSpec::parse(&canonical).expect("valid canonical spec");
        prop_assert_eq!(from_permuted.to_string(), from_canonical.to_string());

        let key_a = fnv1a64(
            canonical_key_string("e17", &from_permuted.to_string(), "sequential", 42, 3, VERSION)
                .as_bytes(),
        );
        let key_b = fnv1a64(
            canonical_key_string("e17", &from_canonical.to_string(), "sequential", 42, 3, VERSION)
                .as_bytes(),
        );
        prop_assert_eq!(key_a, key_b);
    }
}
