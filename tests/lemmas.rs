//! Direct empirical checks of the paper's progress lemmas — the load-bearing
//! steps inside the Theorem 4.1 analysis — by replaying lockstep runs and
//! measuring the quantities the lemmas bound.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use token_dropping::core::{lockstep, TokenGame};
use token_dropping::graph::NodeId;

/// Replays a lockstep run round by round and returns, for each round, the
/// occupancy and consumed-edge state *before* that round's moves.
struct Replay {
    /// occupied[t][v]: does v hold a token before round t's moves?
    occupied: Vec<Vec<bool>>,
    /// consumed[t][e]: is edge e consumed before round t's moves?
    consumed: Vec<Vec<bool>>,
    rounds: u32,
}

fn replay(game: &TokenGame, log: &token_dropping::core::MoveLog, rounds: u32) -> Replay {
    let n = game.num_nodes();
    let m = game.graph().num_edges();
    let mut occupied: Vec<bool> = (0..n).map(|v| game.has_token(NodeId::from(v))).collect();
    let mut consumed: Vec<bool> = vec![false; m];
    let mut occ_t = Vec::with_capacity(rounds as usize + 1);
    let mut con_t = Vec::with_capacity(rounds as usize + 1);
    let mut i = 0;
    for t in 0..=rounds {
        occ_t.push(occupied.clone());
        con_t.push(consumed.clone());
        while i < log.events.len() && log.events[i].round == t {
            let e = log.events[i];
            let edge = game.graph().edge_between(e.from, e.to).unwrap();
            occupied[e.from.idx()] = false;
            occupied[e.to.idx()] = true;
            consumed[edge.idx()] = true;
            i += 1;
        }
    }
    Replay {
        occupied: occ_t,
        consumed: con_t,
        rounds,
    }
}

/// Is `v` *active* at time `t`: some parent (via an unconsumed edge) holds a
/// token? (Paper Section 4.1's definition.)
fn is_active(game: &TokenGame, rep: &Replay, t: usize, v: NodeId) -> bool {
    game.parents(v).any(|(p, parent)| {
        let e = game.graph().edge_at(v, p);
        !rep.consumed[t][e.idx()] && rep.occupied[t][parent.idx()]
    })
}

/// Lemma 4.4: any node is active and unoccupied in at most O(Δ²) rounds.
#[test]
fn lemma_4_4_active_unoccupied_rounds_bounded() {
    let mut rng = SmallRng::seed_from_u64(3001);
    for _ in 0..10 {
        let game = TokenGame::random(&[8, 10, 10, 8], 3, 0.5, &mut rng);
        let res = lockstep::run(&game);
        let rep = replay(&game, &res.log, res.rounds);
        let d = game.max_degree() as u64;
        for v in game.graph().nodes() {
            let mut active_unoccupied = 0u64;
            for t in 0..rep.rounds as usize {
                if !rep.occupied[t][v.idx()] && is_active(&game, &rep, t, v) {
                    active_unoccupied += 1;
                }
            }
            assert!(
                active_unoccupied <= d * d + 2,
                "{v} was active+unoccupied for {active_unoccupied} rounds (Δ = {d})"
            );
        }
    }
}

/// Lemma 4.5: while a token has not reached its destination, some node on
/// its *extended traversal* is active and unoccupied.
///
/// Our engine models the protocol's one-round occupancy staleness, so the
/// progress witness can lag by one round; we therefore check the lemma's
/// conclusion with a one-round slack: in every *pair* of consecutive rounds
/// before the token arrives, the extended traversal contains an
/// active-unoccupied node at least once.
#[test]
fn lemma_4_5_extended_traversal_has_progress_witness() {
    let mut rng = SmallRng::seed_from_u64(3002);
    for _ in 0..10 {
        let game = TokenGame::random(&[8, 10, 10, 8], 3, 0.5, &mut rng);
        let res = lockstep::run(&game);
        let rep = replay(&game, &res.log, res.rounds);
        let exts = res.solution.extended_traversals(&res.log);
        for (ti, trav) in res.solution.traversals.iter().enumerate() {
            if trav.hops() == 0 {
                continue;
            }
            // The round at which the token reached its destination.
            let arrival = res
                .log
                .events
                .iter()
                .filter(|e| e.to == trav.destination())
                .map(|e| e.round)
                .max()
                .unwrap();
            let ext = &exts[ti];
            let mut t = 0usize;
            while (t as u32) < arrival {
                let witness_now = ext
                    .iter()
                    .any(|&v| !rep.occupied[t][v.idx()] && is_active(&game, &rep, t, v));
                let witness_next = (t < rep.rounds as usize)
                    && ext.iter().any(|&v| {
                        !rep.occupied[t + 1][v.idx()] && is_active(&game, &rep, t + 1, v)
                    });
                assert!(
                    witness_now || witness_next,
                    "token {ti}: no active+unoccupied node on p* in rounds {t}..{}",
                    t + 1
                );
                t += 2;
            }
        }
    }
}

/// Lemma 4.2 (correctness of the proposal algorithm's output) holds on the
/// adversarial families too, not just random instances.
#[test]
fn lemma_4_2_on_adversarial_families() {
    for k in [2usize, 5, 9] {
        let game = TokenGame::contention_comb(k);
        let res = lockstep::run(&game);
        token_dropping::core::verify_solution(&game, &res.solution).unwrap();
        token_dropping::core::verify_dynamics(&game, &res.log).unwrap();
    }
    for (k, l) in [(3usize, 3usize), (6, 5)] {
        let game = TokenGame::waterfall(k, l);
        let res = lockstep::run(&game);
        token_dropping::core::verify_solution(&game, &res.solution).unwrap();
        token_dropping::core::verify_dynamics(&game, &res.log).unwrap();
    }
}

/// Lemma 5.3's accounting, measured: across a phase of the orientation
/// algorithm, a node's load increases by exactly 1 iff it is the destination
/// of a token, and is unchanged otherwise.
#[test]
fn lemma_5_3_load_accounting() {
    use token_dropping::graph::gen::random::gnm;
    use token_dropping::orient::phases::{run_phases_capped, PhaseConfig};
    let mut rng = SmallRng::seed_from_u64(3003);
    for _ in 0..5 {
        let g = gnm(24, 60, &mut rng);
        let full =
            token_dropping::orient::phases::solve_stable_orientation(&g, PhaseConfig::default());
        // Loads never decrease across phases, and per-phase increases are
        // at most 1 per node (the Lemma 5.3 conclusion).
        let mut prev_loads: Vec<u32> = vec![0; g.num_nodes()];
        for p in 1..=full.phases {
            let snap = run_phases_capped(&g, PhaseConfig::default(), p);
            for v in g.nodes() {
                let now = snap.orientation.load(v);
                let before = prev_loads[v.idx()];
                assert!(
                    now == before || now == before + 1,
                    "{v}: load {before} -> {now} within one phase"
                );
                prev_loads[v.idx()] = now;
            }
        }
        assert_eq!(
            prev_loads.iter().sum::<u32>() as usize,
            g.num_edges(),
            "final loads must sum to m"
        );
    }
}
