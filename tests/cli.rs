//! Integration tests for the `td` command-line tool: generate → solve →
//! verify pipelines through the actual binary.

use std::io::Write;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_td");

fn run_td(args: &[&str], stdin: Option<&str>) -> (String, String, bool) {
    let mut cmd = Command::new(BIN);
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child = cmd.spawn().expect("spawn td");
    if let Some(input) = stdin {
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
    }
    let out = child.wait_with_output().expect("td runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn gen_info_pipeline() {
    let (edge_list, _, ok) = run_td(&["gen", "gnm", "25", "50", "3"], None);
    assert!(ok);
    assert!(edge_list.starts_with("25 50\n"));
    let (info, _, ok) = run_td(&["info", "-"], Some(&edge_list));
    assert!(ok);
    assert!(info.contains("nodes:      25"));
    assert!(info.contains("edges:      50"));
}

#[test]
fn orient_produces_all_edges() {
    let (edge_list, _, ok) = run_td(&["gen", "regular", "16", "3", "5"], None);
    assert!(ok);
    let (out, _, ok) = run_td(&["orient", "-"], Some(&edge_list));
    assert!(ok, "orient failed: {out}");
    assert!(out.contains("verified stable"));
    let oriented = out.lines().filter(|l| !l.starts_with('#')).count();
    assert_eq!(oriented, 16 * 3 / 2);
}

#[test]
fn game_pipeline_solves_comb() {
    let (game, _, ok) = run_td(&["gen", "comb", "5"], None);
    assert!(ok);
    let (out, _, ok) = run_td(&["game", "-"], Some(&game));
    assert!(ok);
    assert!(out.contains("solved in 5 game rounds"), "{out}");
    // 5 traversals, each two nodes.
    let traversals: Vec<&str> = out.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(traversals.len(), 5);
}

#[test]
fn assign_stable_and_bounded() {
    // A 6-customer, 3-server bipartite graph: customers 0..6, servers 6..9.
    let mut edges = String::from("9 12\n");
    for c in 0..6 {
        edges.push_str(&format!("{} {}\n", c, 6 + (c % 3)));
        edges.push_str(&format!("{} {}\n", c, 6 + ((c + 1) % 3)));
    }
    let (out, err, ok) = run_td(&["assign", "-", "--customers", "6"], Some(&edges));
    assert!(ok, "{err}");
    assert!(out.contains("# stable"));
    let (out, _, ok) = run_td(
        &["assign", "-", "--customers", "6", "--bounded", "2"],
        Some(&edges),
    );
    assert!(ok);
    assert!(out.contains("2-bounded stable"));
    let (out, _, ok) = run_td(
        &["assign", "-", "--customers", "6", "--optimal"],
        Some(&edges),
    );
    assert!(ok);
    assert!(out.contains("optimal semi-matching"));
}

#[test]
fn bad_input_fails_cleanly() {
    let (_, err, ok) = run_td(&["info", "-"], Some("this is not a graph\n"));
    assert!(!ok);
    assert!(err.contains("bad edge list"));
    let (_, _, ok) = run_td(&["nonsense"], None);
    assert!(!ok);
}

#[test]
fn churn_lists_scenarios() {
    let (out, _, ok) = run_td(&["churn"], None);
    assert!(ok);
    for name in [
        "edge-flip",
        "flash-crowd",
        "rolling-restart",
        "small-world-flux",
    ] {
        assert!(out.contains(name), "listing missing {name}:\n{out}");
    }
}

#[test]
fn churn_runs_a_trace_and_reports() {
    let (out, err, ok) = run_td(
        &[
            "churn",
            "rolling-restart",
            "--size",
            "5",
            "--events",
            "6",
            "--seed",
            "7",
            "--compare",
        ],
        None,
    );
    assert!(ok, "{err}");
    assert!(out.contains("events:     6 applied"), "{out}");
    assert!(out.contains("repair:"), "{out}");
    assert!(out.contains("recompute:"), "{out}");
    assert!(out.contains("verified:   ok"), "{out}");
}

#[test]
fn churn_unknown_scenario_exits_2() {
    let mut cmd = Command::new(BIN);
    let out = cmd
        .args(["churn", "no-such-scenario"])
        .output()
        .expect("td runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scenario"));
    // Unknown subcommands still exit 2 as well.
    let out = Command::new(BIN).args(["nonsense"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn churn_zero_events_is_a_clean_noop() {
    let (out, err, ok) = run_td(
        &["churn", "flash-crowd", "--size", "4", "--events", "0"],
        None,
    );
    assert!(ok, "{err}");
    assert!(out.contains("events:     0 applied"), "{out}");
    assert!(out.contains("verified:   ok"), "{out}");
}

#[test]
fn bench_shards_matches_default_path() {
    // `--shards 1` is literally the default executor; `--shards 4` must
    // report the same rounds/messages (bit-identical contract). Compare
    // every deterministic line (wall time excluded).
    let deterministic = |out: &str| -> Vec<String> {
        out.lines()
            .filter(|l| !l.starts_with("wall time:") && !l.starts_with("executor:"))
            .map(String::from)
            .collect()
    };
    let (base, err, ok) = run_td(&["bench", "rotor-sweep", "--size", "6"], None);
    assert!(ok, "{err}");
    let (one, _, ok) = run_td(
        &["bench", "rotor-sweep", "--size", "6", "--shards", "1"],
        None,
    );
    assert!(ok);
    assert_eq!(deterministic(&base), deterministic(&one));
    let (four, _, ok) = run_td(
        &[
            "bench",
            "rotor-sweep",
            "--size",
            "6",
            "--shards",
            "4",
            "--threads",
            "2",
        ],
        None,
    );
    assert!(ok);
    assert!(
        four.contains("executor:   sharded (4 shards, 2 threads)"),
        "{four}"
    );
    assert_eq!(deterministic(&base), deterministic(&four));
}

#[test]
fn bench_shards_flag_errors_exit_2() {
    for bad in [
        vec!["bench", "rotor-sweep", "--shards", "0"],
        vec!["bench", "rotor-sweep", "--shards", "x"],
        vec!["bench", "rotor-sweep", "--shards"],
        // --shards is a bench flag; churn must reject it as unknown.
        vec!["churn", "edge-flip", "--shards", "4"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--shards") || err.contains("unknown flag"),
            "args {bad:?}: {err}"
        );
    }
}

/// `--seed` goes through the one shared `RunFlags` parser, so `td bench`
/// and `td churn` must reject garbage identically: exit 2 plus a message
/// naming the flag.
#[test]
fn seed_parsing_is_uniform_across_bench_and_churn() {
    for bad in [
        vec!["bench", "rotor-sweep", "--seed", "garbage"],
        vec!["bench", "rotor-sweep", "--seed", "1.5"],
        vec!["bench", "rotor-sweep", "--seed", "-1"],
        vec!["bench", "rotor-sweep", "--seed"],
        vec!["churn", "edge-flip", "--seed", "garbage"],
        vec!["churn", "edge-flip", "--seed", "1.5"],
        vec!["churn", "edge-flip", "--seed", "-1"],
        vec!["churn", "edge-flip", "--seed"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--seed needs an integer"),
            "args {bad:?}: {err}"
        );
    }
    // And valid seeds are accepted by both subcommands.
    let (out, err, ok) = run_td(
        &["bench", "rotor-sweep", "--size", "4", "--seed", "7"],
        None,
    );
    assert!(ok, "{err}");
    assert!(out.contains("seed = 7"), "{out}");
    let (out, err, ok) = run_td(
        &[
            "churn",
            "edge-flip",
            "--size",
            "24",
            "--events",
            "2",
            "--seed",
            "7",
        ],
        None,
    );
    assert!(ok, "{err}");
    assert!(out.contains("seed = 7"), "{out}");
}

#[test]
fn fuzz_lists_families_without_args() {
    let (out, _, ok) = run_td(&["fuzz"], None);
    assert!(ok);
    for fam in ["small-world", "power-law", "zipf-cluster", "churn-orient"] {
        assert!(out.contains(fam), "listing missing {fam}:\n{out}");
    }
}

#[test]
fn fuzz_replays_a_single_spec() {
    let (out, err, ok) = run_td(&["fuzz", "--spec", "rotor:size=4:seed=1"], None);
    assert!(ok, "{err}");
    assert!(out.contains("ok   rotor:size=4:seed=1"), "{out}");
    assert!(out.contains("1/1 specs clean"), "{out}");
}

#[test]
fn fuzz_runs_a_tiny_budget() {
    let (out, err, ok) = run_td(&["fuzz", "--budget", "2", "--seed", "3"], None);
    assert!(ok, "{err}");
    assert!(out.contains("2/2 specs clean"), "{out}");
}

#[test]
fn fuzz_flag_errors_exit_2() {
    for bad in [
        vec!["fuzz", "--spec", "no-such-family:size=3"],
        vec!["fuzz", "--spec", "rotor:bogus=1"],
        vec!["fuzz", "--spec"],
        vec!["fuzz", "--budget", "0"],
        vec!["fuzz", "--budget", "x"],
        vec!["fuzz", "--budget"],
        vec!["fuzz", "--seed", "garbage"],
        vec!["fuzz", "--bogus"],
        // --spec replays one exact spec; combining it with the corpus
        // flags would silently fake coverage, so it must be rejected.
        vec!["fuzz", "--spec", "rotor:size=4:seed=1", "--seed", "9"],
        vec!["fuzz", "--budget", "8", "--spec", "rotor:size=4:seed=1"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(!out.stderr.is_empty(), "args {bad:?}: silent failure");
    }
}

#[test]
fn perf_lists_scenarios() {
    let (out, _, ok) = run_td(&["perf", "--list"], None);
    assert!(ok);
    for name in ["drain-wave", "rotor", "torus", "churn-assign"] {
        assert!(out.contains(name), "listing missing {name}:\n{out}");
    }
    // --list does not bypass validation: a malformed flag next to it must
    // still exit 2, like every other subcommand.
    for bad in [
        vec!["perf", "--threads", "0", "--list"],
        vec!["perf", "--list", "--bogus"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
    }
}

/// `--threads`/`--shards`/`--seed` go through the one shared `RunFlags`
/// parser, so `td perf` must reject garbage exactly like bench/churn:
/// exit 2 plus a message naming the flag.
#[test]
fn perf_flag_validation_is_uniform() {
    for bad in [
        vec!["perf", "--threads", "0"],
        vec!["perf", "--threads", "garbage"],
        vec!["perf", "--threads"],
        vec!["perf", "--shards", "0"],
        vec!["perf", "--shards", "x"],
        vec!["perf", "--shards"],
        vec!["perf", "--seed", "garbage"],
        vec!["perf", "--seed", "-1"],
        vec!["perf", "--seed"],
        vec!["perf", "--sizes", "0"],
        vec!["perf", "--sizes", "a,b"],
        vec!["perf", "--sizes", ""],
        vec!["perf", "--sizes"],
        vec!["perf", "--scenario"],
        vec!["perf", "--scenario", "no-such-scenario"],
        // --sizes without --scenario would apply one size list to every
        // ladder (size units differ per scenario) — rejected.
        vec!["perf", "--sizes", "64"],
        vec!["perf", "--out"],
        vec!["perf", "--size", "4"],
        vec!["perf", "--repeat", "0"],
        vec!["perf", "--repeat", "garbage"],
        vec!["perf", "--repeat"],
        vec!["perf", "--bogus"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(!err.is_empty(), "args {bad:?}: silent failure");
        // The exact bench/churn wording for the shared numeric flags.
        if bad.get(1) == Some(&"--threads") {
            assert!(
                err.contains("--threads needs an integer"),
                "args {bad:?}: {err}"
            );
        }
        if bad.get(1) == Some(&"--shards") {
            assert!(
                err.contains("--shards needs an integer"),
                "args {bad:?}: {err}"
            );
        }
        if bad.get(1) == Some(&"--seed") {
            assert!(
                err.contains("--seed needs an integer"),
                "args {bad:?}: {err}"
            );
        }
    }
}

#[test]
fn perf_writes_versioned_json_report() {
    let out_path = std::env::temp_dir().join(format!("td-perf-test-{}.json", std::process::id()));
    let out_str = out_path.to_str().unwrap();
    let (out, err, ok) = run_td(
        &[
            "perf",
            "--scenario",
            "drain-wave",
            "--sizes",
            "512",
            "--threads",
            "2",
            "--shards",
            "2",
            "--repeat",
            "2",
            "--out",
            out_str,
        ],
        None,
    );
    assert!(ok, "{err}");
    assert!(out.contains("drain-wave"), "{out}");
    assert!(out.contains(out_str), "{out}");
    let json = std::fs::read_to_string(&out_path).expect("report written");
    std::fs::remove_file(&out_path).ok();
    assert!(json.contains("\"schema\":\"td-perf/v1\""), "{json}");
    assert!(json.contains("\"bench\":10"), "{json}");
    assert!(json.contains("\"repeat\":2"), "{json}");
    assert!(
        json.contains(
            "\"executors\":[\"sequential\",\"parallel(2)\",\"sharded(2,2)\",\"sharded(1,1)\"]"
        ),
        "{json}"
    );
    assert!(json.contains("\"sparse_skips\""), "{json}");
    assert!(json.contains("\"executor\":\"sharded(1,1)\""), "{json}");
    assert!(json.contains("\"executor\":\"parallel(2)\""), "{json}");
    assert!(json.contains("\"curve\""), "{json}");
    // The seq-vs-parallel speedup column of the committed benchmark.
    assert!(json.contains("\"parallel_speedup_drain-wave\""), "{json}");
}

#[test]
fn serve_lists_families_without_args() {
    let (out, _, ok) = run_td(&["serve"], None);
    assert!(ok);
    for fam in ["small-world", "power-law", "churn-orient", "churn-assign"] {
        assert!(out.contains(fam), "listing missing {fam}:\n{out}");
    }
}

/// Two `td serve` runs with the same family/size/seed/budget must report
/// the same fingerprint and repair totals — the open-loop generator's
/// event mix is a pure function of the spec, and wall-clock pacing may
/// never leak into the applied trace.
#[test]
fn serve_is_deterministic_and_writes_versioned_json() {
    let json_for = |tag: &str| -> String {
        let out_path =
            std::env::temp_dir().join(format!("td-serve-test-{}-{tag}.json", std::process::id()));
        let out_str = out_path.to_str().unwrap().to_string();
        let (out, err, ok) = run_td(
            &[
                "serve",
                "churn-orient",
                "--size",
                "24",
                "--seed",
                "9",
                "--budget",
                "32",
                "--out",
                &out_str,
            ],
            None,
        );
        assert!(ok, "{err}");
        assert!(out.contains("fingerprint"), "{out}");
        assert!(out.contains("events"), "{out}");
        let json = std::fs::read_to_string(&out_path).expect("report written");
        std::fs::remove_file(&out_path).ok();
        json
    };
    let (a, b) = (json_for("a"), json_for("b"));
    assert!(a.contains("\"schema\":\"td-serve/v1\""), "{a}");
    assert!(a.contains("\"events\":32"), "{a}");
    assert!(a.contains("\"p999\""), "{a}");
    assert!(a.contains("\"sparse_skips\""), "{a}");
    let field = |json: &str, key: &str| -> String {
        let start = json.find(key).unwrap_or_else(|| panic!("{key} in {json}")) + key.len();
        json[start..]
            .chars()
            .take_while(|c| *c != ',' && *c != '}' && *c != '\n')
            .collect()
    };
    for key in ["\"fingerprint\":", "\"repair\":", "\"max_load\":"] {
        assert_eq!(field(&a, key), field(&b, key), "{key} differs");
    }
}

#[test]
fn serve_flag_errors_exit_2() {
    for bad in [
        // Not a churn family (static workload) / unknown family.
        vec!["serve", "rotor"],
        vec!["serve", "no-such-family"],
        // A leading flag means the family positional was omitted.
        vec!["serve", "--rate", "100"],
        vec!["serve", "churn-orient", "--rate", "x"],
        vec!["serve", "churn-orient", "--rate"],
        vec!["serve", "churn-orient", "--budget", "0"],
        vec!["serve", "churn-orient", "--budget"],
        vec!["serve", "churn-orient", "--queue", "0"],
        vec!["serve", "churn-orient", "--out"],
        vec!["serve", "churn-orient", "--seed", "garbage"],
        vec!["serve", "churn-orient", "--threads", "0"],
        vec!["serve", "churn-orient", "--shards", "0"],
        vec!["serve", "churn-orient", "--bogus"],
        vec!["serve", "churn-orient", "trailing-garbage"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(!out.stderr.is_empty(), "args {bad:?}: silent failure");
    }
}

/// The hand-rolled positional parsers used to ignore trailing arguments
/// (or panic on garbage); every subcommand must reject them with exit 2.
#[test]
fn trailing_and_malformed_args_exit_2_everywhere() {
    for bad in [
        vec!["gen", "gnm", "10", "20", "3", "extra"],
        vec!["gen", "gnm", "10", "20", "not-a-seed"],
        vec!["gen", "gnm", "10"],
        vec!["gen", "regular", "16", "3", "5", "extra"],
        vec!["gen", "tree", "2", "3", "extra"],
        vec!["gen", "comb", "5", "extra"],
        vec!["gen", "comb", "x"],
        vec!["gen", "game", "4,4", "2", "1", "extra"],
        vec!["gen", "game", "4,x", "2"],
        vec!["info", "-", "extra"],
        vec!["orient", "-", "--distribtued"],
        vec!["orient", "-", "second-file"],
        vec!["game", "-", "extra"],
        vec!["assign", "-", "--customers"],
        vec!["assign", "-", "--customers", "x"],
        vec!["assign", "-", "--bounded", "x", "--customers", "4"],
        vec!["assign", "-"],
        vec!["perf", "--quick", "extra-garbage"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(!out.stderr.is_empty(), "args {bad:?}: silent failure");
    }
}

#[test]
fn churn_flag_errors_exit_2() {
    let out = Command::new(BIN)
        .args(["churn", "edge-flip", "--events"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(BIN)
        .args(["churn", "edge-flip", "--bogus"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_lists_shapes_without_args() {
    let (out, _, ok) = run_td(&["trace"], None);
    assert!(ok);
    for shape in [
        "diurnal",
        "rack-burst",
        "drain-wave",
        "flash-crowd",
        "hotspot",
    ] {
        assert!(out.contains(shape), "missing shape {shape}: {out}");
    }
}

#[test]
fn trace_record_replay_pipeline_agrees_on_fingerprints() {
    let (doc, _, ok) = run_td(
        &[
            "trace",
            "record",
            "--shape",
            "drain-wave",
            "--events",
            "24",
            "--seed",
            "9",
        ],
        None,
    );
    assert!(ok, "record failed");
    assert!(doc.starts_with("td-trace/v1\n"), "{doc}");
    assert!(doc.contains("source shape:drain-wave"), "{doc}");
    assert!(doc.trim_end().ends_with("end"), "{doc}");

    let (info, _, ok) = run_td(&["trace", "info", "-"], Some(&doc));
    assert!(ok, "info failed");
    assert!(info.contains("td-trace/v1"), "{info}");
    assert!(info.contains("24"), "{info}");

    let (replay, _, ok) = run_td(
        &[
            "trace",
            "replay",
            "-",
            "--consumer",
            "all",
            "--threads",
            "2",
            "--shards",
            "2",
        ],
        Some(&doc),
    );
    assert!(ok, "replay failed: {replay}");
    assert!(replay.contains("all consumers agree"), "{replay}");
    // Engine and serve rows print the same 16-hex fingerprint.
    let fps: Vec<&str> = replay
        .lines()
        .filter(|l| l.trim_start().starts_with("engine") || l.trim_start().starts_with("serve"))
        .filter_map(|l| l.split_whitespace().last())
        .collect();
    assert_eq!(fps.len(), 2, "{replay}");
    assert_eq!(fps[0], fps[1], "{replay}");
}

#[test]
fn trace_record_spec_mix_matches_a_serve_run() {
    let (doc, _, ok) = run_td(
        &[
            "trace",
            "record",
            "--spec",
            "churn-orient:size=24:seed=6:events=16",
        ],
        None,
    );
    assert!(ok);
    let (replay, _, ok) = run_td(&["trace", "replay", "-", "--consumer", "serve"], Some(&doc));
    assert!(ok, "{replay}");
    assert!(replay.contains("serve"), "{replay}");
}

#[test]
fn trace_convert_reseeds_deterministically() {
    let (doc, _, ok) = run_td(
        &[
            "trace",
            "record",
            "--shape",
            "flash-crowd",
            "--events",
            "20",
        ],
        None,
    );
    assert!(ok);
    let (a, _, ok) = run_td(&["trace", "convert", "-", "--seed", "77"], Some(&doc));
    assert!(ok, "{a}");
    let (b, _, ok) = run_td(&["trace", "convert", "-", "--seed", "77"], Some(&doc));
    assert!(ok);
    assert_eq!(a, b, "conversion is deterministic");
    assert!(a.contains("seed=77"), "{a}");
    assert_ne!(a, doc, "a new seed records a new stream");
}

#[test]
fn trace_flag_errors_exit_2() {
    for bad in [
        vec!["trace", "bogus-action"],
        vec!["trace", "record"],
        vec!["trace", "record", "--spec", "torus:size=8"],
        vec!["trace", "record", "--spec", "churn-orient:size=0"],
        vec!["trace", "record", "--spec", "not-a-family:size=8"],
        vec!["trace", "record", "--shape", "no-such-shape"],
        vec!["trace", "record", "--shape", "diurnal", "--size", "x"],
        vec![
            "trace",
            "record",
            "--shape",
            "diurnal",
            "--spec",
            "churn-orient",
        ],
        vec![
            "trace",
            "record",
            "--spec",
            "churn-orient:size=24",
            "--seed",
            "3",
        ],
        vec!["trace", "record", "--out"],
        vec!["trace", "info"],
        vec!["trace", "info", "a", "b"],
        vec!["trace", "replay"],
        vec!["trace", "replay", "--consumer", "engine"],
        vec!["trace", "convert", "-"],
        vec!["trace", "convert", "-", "--seed", "x"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(!out.stderr.is_empty(), "args {bad:?}: silent failure");
    }
}

#[test]
fn trace_malformed_files_exit_1_with_diagnostics() {
    let (doc, _, ok) = run_td(
        &["trace", "record", "--shape", "hotspot", "--events", "8"],
        None,
    );
    assert!(ok);
    for (mangled, needle) in [
        (doc.replacen("td-trace/v1", "td-trace/v9", 1), "schema"),
        (
            doc.lines()
                .take(8)
                .map(|l| format!("{l}\n"))
                .collect::<String>(),
            "truncated",
        ),
        (doc.replacen("flip ", "teleport ", 1), "teleport"),
    ] {
        let out = {
            let mut cmd = Command::new(BIN);
            cmd.args(["trace", "replay", "-"])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::piped());
            let mut child = cmd.spawn().unwrap();
            child
                .stdin
                .as_mut()
                .unwrap()
                .write_all(mangled.as_bytes())
                .unwrap();
            child.wait_with_output().unwrap()
        };
        assert_eq!(out.status.code(), Some(1), "needle {needle}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "stderr {err}");
    }
}

/// Degenerate specs are usage errors (exit 2) at every spec-accepting
/// entry point, not panics or runtime failures.
#[test]
fn degenerate_specs_exit_2_everywhere() {
    for bad in [
        vec!["fuzz", "--spec", "torus:size=0"],
        vec!["fuzz", "--spec", "regular:size=4:d=3"],
        vec!["serve", "churn-orient", "--size", "0"],
        vec!["trace", "record", "--spec", "small-world:size=32:k=40"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(!out.stderr.is_empty(), "args {bad:?}: silent failure");
    }
}

/// `td compare` runs the balancer sweep, prints a per-protocol table plus
/// the bit-identity summary line, and writes `td-compare/v1` JSON with one
/// row per (instance, protocol) pair.
#[test]
fn compare_sweeps_protocols_and_writes_versioned_json() {
    let out_path =
        std::env::temp_dir().join(format!("td-compare-test-{}.json", std::process::id()));
    let out_str = out_path.to_str().unwrap().to_string();
    let (out, err, ok) = run_td(
        &[
            "compare",
            "--families",
            "grid,torus",
            "--size",
            "8",
            "--seed",
            "7",
            "--threads",
            "2",
            "--shards",
            "2",
            "--out",
            &out_str,
        ],
        None,
    );
    assert!(ok, "{err}");
    for proto in ["token-drop", "rotor-router", "matching"] {
        assert!(out.contains(proto), "table missing {proto}:\n{out}");
    }
    assert!(
        out.contains("6 rows, every protocol bit-identical across 3 executor points"),
        "{out}"
    );
    assert!(out.contains("td-compare/v1 report written"), "{out}");
    let json = std::fs::read_to_string(&out_path).expect("report written");
    std::fs::remove_file(&out_path).ok();
    assert!(json.contains("\"schema\":\"td-compare/v1\""), "{json}");
    assert!(json.contains("\"protocol\":\"matching\""), "{json}");
    assert!(json.contains("\"fingerprint\":\""), "{json}");
}

/// Assignment-churn traces carry join/leave/cap events that do not project
/// onto node loads; `td compare` must skip them with a reason, not fail.
#[test]
fn compare_skips_assignment_churn_traces_with_a_reason() {
    let (out, err, ok) = run_td(
        &[
            "compare",
            "--families",
            "rotor",
            "--size",
            "8",
            "--trace",
            "traces/drain-wave.tdt",
        ],
        None,
    );
    assert!(ok, "{err}");
    assert!(out.contains("skipped drain-wave"), "{out}");
}

#[test]
fn compare_flag_errors_exit_2() {
    for bad in [
        vec!["compare", "--protocols", "no-such-balancer"],
        vec!["compare", "--families", "no-such-family"],
        vec!["compare", "--size", "0"],
        vec!["compare", "--size"],
        vec!["compare", "--seed", "garbage"],
        vec!["compare", "--threads", "0"],
        vec!["compare", "--shards", "0"],
        vec!["compare", "--bogus"],
        vec!["compare", "trailing-garbage"],
    ] {
        let out = Command::new(BIN).args(&bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
        assert!(!out.stderr.is_empty(), "args {bad:?}: silent failure");
    }
}

/// An absurd rate/budget pair whose tick schedule cannot fit the u64
/// nanosecond horizon is a usage error caught before the daemon starts.
#[test]
fn serve_rejects_overflowing_tick_schedule() {
    let out = Command::new(BIN)
        .args([
            "serve",
            "churn-orient",
            "--rate",
            "1",
            "--budget",
            "100000000000",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("overflows the tick schedule"), "{err}");
    // Just past u32::MAX but schedule-safe at a fast rate: rejected for the
    // budget cap instead, again before any work happens.
    let out = Command::new(BIN)
        .args([
            "serve",
            "churn-orient",
            "--rate",
            "1000000",
            "--budget",
            "4294967296",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("exceeds the supported maximum"), "{err}");
}

// ------------------------------------------------------------------ td exp ---

#[test]
fn exp_list_shows_the_registry() {
    // Bare `td exp` and `td exp --list` are the same listing.
    for args in [&["exp"][..], &["exp", "--list"][..]] {
        let (out, err, ok) = run_td(args, None);
        assert!(ok, "{err}");
        for id in ["e15", "e16", "e17", "e18", "e19", "e21", "perf"] {
            assert!(out.contains(id), "listing misses {id}:\n{out}");
        }
        assert!(out.contains("td exp run"), "{out}");
        assert!(out.contains("td exp render"), "{out}");
    }
    // Trailing arguments after --list are usage errors.
    let out = Command::new(BIN)
        .args(["exp", "--list", "extra"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn exp_run_caches_rerenders_and_selects_subsets() {
    let base = std::env::temp_dir().join(format!("td-exp-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let results = base.join("results");
    let plots = base.join("plots");
    let r = results.to_str().unwrap();
    let p = plots.to_str().unwrap();

    // Kick-tires subset selection: running only e21 must record only e21.
    let (out, err, ok) = run_td(&["exp", "run", "e21", "--quick", "--results", r], None);
    assert!(ok, "{err}");
    assert!(out.contains("hits: 0"), "{out}");
    assert!(
        !out.contains("misses: 0"),
        "cold run cannot be all hits:\n{out}"
    );
    let manifest = std::fs::read_to_string(results.join("manifest.json")).expect("manifest");
    assert!(manifest.contains("\"experiments\":[\"e21\"]"), "{manifest}");
    assert!(!manifest.contains("\"exp\":\"e17\""), "{manifest}");

    // Warm rerun executes zero configurations — and flag order does not
    // matter (ids after flags parse the same).
    let (out, err, ok) = run_td(&["exp", "run", "--quick", "e21", "--results", r], None);
    assert!(ok, "{err}");
    assert!(out.contains("misses: 0"), "{out}");

    // Render from the warm cache writes the e21 plot.
    let (out, err, ok) = run_td(
        &[
            "exp",
            "render",
            "e21",
            "--quick",
            "--results",
            r,
            "--plots",
            p,
        ],
        None,
    );
    assert!(ok, "{err}");
    assert!(out.contains("plot:"), "{out}");
    assert!(plots.join("race.svg").is_file());

    // --bench without the perf experiment in the selection is a usage error.
    let out = Command::new(BIN)
        .args([
            "exp",
            "render",
            "e21",
            "--quick",
            "--results",
            r,
            "--bench",
            base.join("bench.json").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("perf"), "{err}");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn exp_usage_errors_exit_2() {
    // Unknown experiment ids, garbage flags, unknown actions, and bad flag
    // values are all usage errors (exit 2), diagnosed before any cache I/O.
    for bad in [
        &["exp", "run", "e99"][..],
        &["exp", "run", "--nonsense"][..],
        &["exp", "render", "no-such-exp"][..],
        &["exp", "frobnicate"][..],
        &["exp", "render", "e17", "--plots"][..],
        &["exp", "run", "e17", "--repeat", "0"][..],
        &["exp", "run", "e17", "--results"][..],
    ] {
        let out = Command::new(BIN).args(bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "args {bad:?}");
    }
    // The unknown-id diagnostic names the known ids.
    let out = Command::new(BIN)
        .args(["exp", "run", "e99"])
        .output()
        .unwrap();
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment"), "{err}");
    assert!(err.contains("e17"), "{err}");
}

#[test]
fn exp_unwritable_results_dir_exits_1() {
    // A results path under a regular file cannot be created: runtime error,
    // exit 1 (distinct from the usage-error exit 2).
    let blocker = std::env::temp_dir().join(format!("td-exp-blocker-{}", std::process::id()));
    std::fs::write(&blocker, "not a directory").unwrap();
    let results = blocker.join("sub");
    let out = Command::new(BIN)
        .args([
            "exp",
            "run",
            "e17",
            "--quick",
            "--results",
            results.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("cannot create"), "{err}");
    let _ = std::fs::remove_file(&blocker);
}
