//! Cross-stack executor equivalence: the parallel executor must be
//! *bit-identical* to the sequential one — same outputs, same round counts,
//! same message counts — for every protocol stack, at every thread count.
//!
//! This is the contract that lets `Simulator::parallel(t)` be a pure
//! performance knob: the arena's one-writer-per-slot discipline means the
//! round in which a message is delivered, and the content delivered, cannot
//! depend on thread scheduling.

use td_bench::workloads;
use token_dropping::assign::protocol::run_distributed_assignment;
use token_dropping::core::proposal;
use token_dropping::local::Simulator;
use token_dropping::orient::protocol::run_distributed;

const THREADS: [usize; 3] = [2, 4, 8];
const SEEDS: [u64; 3] = [3, 17, 9001];

/// The churn (wake-based) executor obeys the same contract: repair traces
/// are bit-identical at every thread count, for both repair engines.
#[test]
fn churn_repair_matches_sequential_at_every_thread_count() {
    use td_local::churn::RepairMode;
    for sc in td_bench::churn::churn_registry() {
        let size = match sc.kind() {
            td_bench::ScenarioKind::Orientation => 48,
            _ => 6,
        };
        for &seed in &SEEDS {
            let seq = sc.run(size, 6, seed, 1, RepairMode::Incremental, false);
            for &t in &THREADS {
                let par = sc.run(size, 6, seed, t, RepairMode::Incremental, false);
                assert_eq!(
                    seq.fingerprint,
                    par.fingerprint,
                    "{} seed {seed}, threads {t}",
                    sc.name()
                );
                assert_eq!(
                    seq.repair,
                    par.repair,
                    "{} seed {seed}, threads {t}",
                    sc.name()
                );
            }
        }
    }
}

#[test]
fn proposal_protocol_matches_sequential_at_every_thread_count() {
    for &seed in &SEEDS {
        let game = workloads::layered_game(4, 4, seed);
        let seq = proposal::run_on_simulator(&game, &Simulator::sequential());
        for &t in &THREADS {
            let par = proposal::run_on_simulator(&game, &Simulator::parallel(t));
            assert_eq!(seq.solution, par.solution, "seed {seed}, threads {t}");
            assert_eq!(seq.log, par.log, "seed {seed}, threads {t}");
            assert_eq!(seq.comm_rounds, par.comm_rounds, "seed {seed}, threads {t}");
            assert_eq!(seq.messages, par.messages, "seed {seed}, threads {t}");
        }
    }
}

#[test]
fn orientation_protocol_matches_sequential_at_every_thread_count() {
    for &seed in &SEEDS {
        let g = workloads::regular_graph(3, 8, seed);
        let seq = run_distributed(&g, &Simulator::sequential());
        seq.orientation.verify_stable(&g).unwrap();
        for &t in &THREADS {
            let par = run_distributed(&g, &Simulator::parallel(t));
            assert_eq!(seq.orientation, par.orientation, "seed {seed}, threads {t}");
            assert_eq!(seq.comm_rounds, par.comm_rounds, "seed {seed}, threads {t}");
            assert_eq!(seq.messages, par.messages, "seed {seed}, threads {t}");
        }
    }
}

#[test]
fn assignment_protocol_matches_sequential_at_every_thread_count() {
    for &seed in &SEEDS {
        let inst = workloads::uniform_assignment(9, 4, seed);
        for bound in [None, Some(2)] {
            let seq = run_distributed_assignment(&inst, bound, &Simulator::sequential());
            for &t in &THREADS {
                let par = run_distributed_assignment(&inst, bound, &Simulator::parallel(t));
                assert_eq!(
                    seq.assignment, par.assignment,
                    "seed {seed}, bound {bound:?}, threads {t}"
                );
                assert_eq!(
                    seq.comm_rounds, par.comm_rounds,
                    "seed {seed}, bound {bound:?}, threads {t}"
                );
                assert_eq!(
                    seq.messages, par.messages,
                    "seed {seed}, bound {bound:?}, threads {t}"
                );
            }
        }
    }
}
