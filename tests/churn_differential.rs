//! Differential testing of the churn engines: for every seeded trace, the
//! incremental repair path must be **bit-identical** to the full-recompute
//! fallback (same final solution, same rounds, same messages — only
//! node-steps may differ, and only downward), and the parallel incremental
//! executor must match the sequential one at every thread count.
//!
//! This is the contract that makes incremental repair safe to ship: the
//! dirty-set optimization and the thread count are pure performance knobs.

use td_bench::churn::{churn_registry, ChurnScenario};
use td_local::churn::RepairMode;

const THREADS: [usize; 3] = [2, 4, 8];

fn scenario_size(sc: &dyn ChurnScenario) -> u32 {
    match sc.kind() {
        td_bench::ScenarioKind::Orientation => 32,
        _ => 5,
    }
}

/// ≥ 100 seeded traces in total: 35 seeds × 3 scenarios, each verified
/// stable after every event inside `run`, and compared across the
/// incremental and full-recompute paths.
#[test]
fn repair_equals_full_recompute_over_100_traces() {
    const SEEDS_PER_SCENARIO: u64 = 35;
    let mut traces = 0usize;
    for sc in churn_registry() {
        let size = scenario_size(*sc);
        for seed in 0..SEEDS_PER_SCENARIO {
            let inc = sc.run(size, 8, seed, 1, RepairMode::Incremental, false);
            let full = sc.run(size, 8, seed, 1, RepairMode::FullRecompute, false);
            assert_eq!(
                inc.fingerprint,
                full.fingerprint,
                "{} seed {seed}: solutions diverge",
                sc.name()
            );
            assert_eq!(
                inc.repair.rounds,
                full.repair.rounds,
                "{} seed {seed}: rounds diverge",
                sc.name()
            );
            assert_eq!(
                inc.repair.messages,
                full.repair.messages,
                "{} seed {seed}: messages diverge",
                sc.name()
            );
            assert!(
                inc.repair.node_steps <= full.repair.node_steps,
                "{} seed {seed}: incremental stepped more ({} > {})",
                sc.name(),
                inc.repair.node_steps,
                full.repair.node_steps
            );
            traces += 1;
        }
    }
    assert!(traces >= 100, "only {traces} traces exercised");
}

/// The incremental executor is deterministic across thread counts: same
/// final solution, same rounds, same messages, same node-steps.
#[test]
fn parallel_incremental_matches_sequential() {
    for sc in churn_registry() {
        let size = scenario_size(*sc);
        for seed in [3u64, 17] {
            let seq = sc.run(size, 8, seed, 1, RepairMode::Incremental, false);
            for &t in &THREADS {
                let par = sc.run(size, 8, seed, t, RepairMode::Incremental, false);
                assert_eq!(
                    seq.fingerprint,
                    par.fingerprint,
                    "{} seed {seed} threads {t}",
                    sc.name()
                );
                assert_eq!(
                    seq.repair,
                    par.repair,
                    "{} seed {seed} threads {t}",
                    sc.name()
                );
            }
        }
    }
}

/// The fallback is also executor-independent (all-dirty wakes are the
/// stress case for the wake bookkeeping).
#[test]
fn parallel_full_recompute_matches_sequential() {
    for sc in churn_registry() {
        let size = scenario_size(*sc);
        let seq = sc.run(size, 6, 9, 1, RepairMode::FullRecompute, false);
        for &t in &THREADS {
            let par = sc.run(size, 6, 9, t, RepairMode::FullRecompute, false);
            assert_eq!(
                seq.fingerprint,
                par.fingerprint,
                "{} threads {t}",
                sc.name()
            );
            assert_eq!(seq.repair, par.repair, "{} threads {t}", sc.name());
        }
    }
}
