//! Failure-injection tests: corrupt valid outputs in targeted ways and
//! assert that every independent verifier rejects the corruption. This
//! guards the verifiers themselves — a verifier that accepts garbage would
//! silently void every other test in the workspace.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use token_dropping::assign::phases::solve_stable_assignment;
use token_dropping::assign::AssignmentInstance;
use token_dropping::core::{lockstep, TokenGame};
use token_dropping::graph::gen::random::gnm;
use token_dropping::orient::phases::{solve_stable_orientation, PhaseConfig};
use token_dropping::prelude::*;

fn solved_game() -> (TokenGame, Solution, MoveLog) {
    let mut rng = SmallRng::seed_from_u64(777);
    // Dense-ish so corruption reliably collides with the rules.
    let game = TokenGame::random(&[8, 8, 8, 8], 3, 0.6, &mut rng);
    let res = lockstep::run(&game);
    verify_solution(&game, &res.solution).unwrap();
    verify_dynamics(&game, &res.log).unwrap();
    (game, res.solution, res.log)
}

#[test]
fn dropping_a_traversal_is_caught() {
    let (game, mut sol, _) = solved_game();
    assert!(game.token_count() >= 2, "need tokens to corrupt");
    sol.traversals.pop();
    assert!(verify_solution(&game, &sol).is_err());
}

#[test]
fn duplicating_a_traversal_is_caught() {
    let (game, mut sol, _) = solved_game();
    let dup = sol.traversals[0].clone();
    sol.traversals.push(dup);
    assert!(verify_solution(&game, &sol).is_err());
}

#[test]
fn truncating_a_moving_traversal_is_caught() {
    let (game, sol, _) = solved_game();
    // Truncate every traversal that moved; at least one corruption must be
    // rejected (the truncated token sits on a node with a usable edge, or
    // collides with another destination).
    let mut any_rejected = false;
    for i in 0..sol.traversals.len() {
        if sol.traversals[i].hops() == 0 {
            continue;
        }
        let mut bad = sol.clone();
        bad.traversals[i].path.pop();
        if verify_solution(&game, &bad).is_err() {
            any_rejected = true;
        }
    }
    assert!(any_rejected, "no truncation detected — verifier too lax");
}

#[test]
fn redirecting_a_destination_is_caught() {
    let (game, sol, _) = solved_game();
    // Retarget a moving traversal's last hop onto another traversal's
    // destination: must trip DuplicateDestination (or an edge rule).
    let dests: Vec<NodeId> = sol.destinations().collect();
    for i in 0..sol.traversals.len() {
        if sol.traversals[i].hops() == 0 {
            continue;
        }
        for &d in &dests {
            if d == sol.traversals[i].destination() {
                continue;
            }
            let mut bad = sol.clone();
            let last = bad.traversals[i].path.len() - 1;
            bad.traversals[i].path[last] = d;
            assert!(
                verify_solution(&game, &bad).is_err(),
                "redirect to {d} accepted"
            );
        }
        return; // one traversal suffices
    }
}

#[test]
fn shuffled_move_log_is_caught() {
    let (game, _, log) = solved_game();
    assert!(log.len() >= 2, "need moves to corrupt");
    // Reverse the rounds: early moves depend on earlier occupancy, so the
    // replay must fail somewhere.
    let mut bad = log.clone();
    let max_round = bad.events.iter().map(|e| e.round).max().unwrap();
    for e in bad.events.iter_mut() {
        e.round = max_round - e.round;
    }
    bad.events.sort_by_key(|e| e.round);
    assert!(verify_dynamics(&game, &bad).is_err());
}

#[test]
fn replayed_move_is_caught() {
    let (game, _, log) = solved_game();
    let mut bad = log.clone();
    let mut dup = bad.events[0];
    dup.round = bad.events.last().unwrap().round + 1;
    bad.events.push(dup);
    assert!(verify_dynamics(&game, &bad).is_err());
}

#[test]
fn unstable_orientation_is_caught() {
    let mut rng = SmallRng::seed_from_u64(778);
    let g = gnm(30, 80, &mut rng);
    let res = solve_stable_orientation(&g, PhaseConfig::default());
    // Redirect every edge of the max-degree node inward: overload it.
    let hub = g.nodes().max_by_key(|&v| g.degree(v)).unwrap();
    let mut o = res.orientation.clone();
    for p in 0..g.degree(hub) {
        let e = g.edge_at(hub, Port::from(p));
        if o.head(e) != Some(hub) {
            o.flip(&g, e);
        }
    }
    assert!(o.verify_stable(&g).is_err());
}

#[test]
fn partially_unoriented_is_caught() {
    let mut rng = SmallRng::seed_from_u64(779);
    let g = gnm(20, 40, &mut rng);
    let o = Orientation::unoriented(&g);
    assert!(o.verify_stable(&g).is_err());
}

#[test]
fn overloaded_assignment_is_caught() {
    let mut rng = SmallRng::seed_from_u64(780);
    let inst = AssignmentInstance::random(40, 8, 2..=3, &mut rng);
    let res = solve_stable_assignment(&inst);
    // Move every degree-≥2 customer onto its first listed server: some
    // server ends up overloaded relative to an alternative.
    let mut a = res.assignment.clone();
    for c in 0..inst.num_customers() {
        let first = inst.servers_of(c)[0];
        if a.server_of(c) != Some(first) {
            a.reassign(c, first);
        }
    }
    assert!(
        a.verify_stable(&inst).is_err(),
        "first-choice pile-up accepted as stable"
    );
}

#[test]
fn k_bounded_verifier_rejects_extreme_imbalance() {
    // All customers on one server while another adjacent server is empty:
    // even the weakest relaxation (k = 2) must reject.
    let inst = AssignmentInstance::new(2, &vec![vec![0, 1]; 6]);
    let mut a = token_dropping::assign::Assignment::unassigned(&inst);
    for c in 0..6 {
        a.assign(c, 0);
    }
    assert!(a.verify_k_bounded(&inst, 2).is_err());
    assert!(a.verify_stable(&inst).is_err());
}

#[test]
fn non_maximal_matching_is_caught() {
    use token_dropping::core::matching::*;
    let mut rng = SmallRng::seed_from_u64(781);
    let g = token_dropping::graph::gen::random::random_bipartite(20, 20, 2..=3, &mut rng);
    let side: Vec<u8> = (0..40).map(|v| if v < 20 { 1 } else { 0 }).collect();
    let (matched, _) = maximal_matching_via_token_dropping(&g, &side);
    assert!(is_maximal_matching(&g, &matched));
    // Removing any edge from a maximal matching must break maximality
    // (its endpoints become free and their edge is uncovered).
    let mut bad = matched.clone();
    bad.pop().unwrap();
    assert!(!is_maximal_matching(&g, &bad));
    // Adding any other edge must break the matching property.
    let extra = g
        .edges()
        .find(|e| !matched.contains(e))
        .expect("non-matching edge exists");
    let mut bad = matched.clone();
    bad.push(extra);
    bad.sort_unstable();
    assert!(!is_matching(&g, &bad));
}

#[test]
fn suboptimal_semi_matching_is_caught() {
    use token_dropping::assign::semi_matching::*;
    let inst = AssignmentInstance::new(2, &[vec![0], vec![0], vec![0, 1]]);
    let mut a = token_dropping::assign::Assignment::first_choice(&inst);
    assert!(!is_optimal(&inst, &a));
    let opt = optimal_semi_matching(&inst);
    assert!(is_optimal(&inst, &opt.assignment));
    // And after manually applying the improving path, optimality holds.
    let path = find_cost_reducing_path_from(&inst, &a, 0).unwrap();
    apply_path(&mut a, &path);
    assert!(is_optimal(&inst, &a));
}
