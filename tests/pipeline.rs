//! End-to-end integration tests spanning all crates: graphs → games →
//! orientations → assignments, with every output independently verified.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use token_dropping::assign::phases::solve_stable_assignment;
use token_dropping::assign::semi_matching::{approximation_ratio, optimal_semi_matching};
use token_dropping::assign::AssignmentInstance;
use token_dropping::core::{greedy, lockstep, proposal, TokenGame};
use token_dropping::graph::gen::random::{gnm, random_bipartite};
use token_dropping::local::Simulator;
use token_dropping::orient::phases::{solve_stable_orientation, PhaseConfig};
use token_dropping::prelude::*;

#[test]
fn token_dropping_three_engines_agree_on_validity() {
    let mut rng = SmallRng::seed_from_u64(1001);
    for _ in 0..10 {
        let game = TokenGame::random(&[10, 12, 12, 10, 6], 3, 0.5, &mut rng);
        let a = lockstep::run(&game);
        let b = greedy::run(&game);
        let c = proposal::run_on_simulator(&game, &Simulator::sequential());
        for (name, sol, log) in [
            ("lockstep", &a.solution, &a.log),
            ("greedy", &b.solution, &b.log),
            ("protocol", &c.solution, &c.log),
        ] {
            verify_solution(&game, sol).unwrap_or_else(|e| panic!("{name}: {e}"));
            verify_dynamics(&game, log).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        // Lockstep and the LOCAL protocol are move-identical.
        assert_eq!(a.log, c.log);
    }
}

#[test]
fn orientation_pipeline_on_many_families() {
    let mut rng = SmallRng::seed_from_u64(1002);
    let graphs: Vec<(String, CsrGraph)> = vec![
        ("path".into(), token_dropping::graph::gen::classic::path(40)),
        (
            "cycle".into(),
            token_dropping::graph::gen::classic::cycle(41),
        ),
        ("star".into(), token_dropping::graph::gen::classic::star(25)),
        (
            "grid".into(),
            token_dropping::graph::gen::classic::grid(6, 7),
        ),
        (
            "torus".into(),
            token_dropping::graph::gen::classic::torus(5, 5),
        ),
        (
            "complete".into(),
            token_dropping::graph::gen::classic::complete(9),
        ),
        (
            "petersen".into(),
            token_dropping::graph::gen::classic::petersen(),
        ),
        ("gnm".into(), gnm(50, 130, &mut rng)),
    ];
    for (name, g) in graphs {
        let res = solve_stable_orientation(&g, PhaseConfig::default());
        res.orientation
            .verify_stable(&g)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(res.invariant_violations, 0, "{name}");
        assert!(
            res.phases as usize <= 2 * g.max_degree() + 2,
            "{name}: Lemma 5.5"
        );
        // All engines end with the same total load (= m).
        let total: u32 = g.nodes().map(|v| res.orientation.load(v)).sum();
        assert_eq!(total as usize, g.num_edges(), "{name}");
    }
}

#[test]
fn rank2_assignment_equals_orientation_stability() {
    // A degree-2 customer instance is exactly the stable orientation
    // problem: build both views of the same structure and check that the
    // assignment solution, translated to an orientation, is stable.
    let mut rng = SmallRng::seed_from_u64(1003);
    let g = gnm(25, 60, &mut rng);
    // Customers = edges; servers = nodes.
    let customers: Vec<Vec<u32>> = g.edge_list().map(|(_, u, v)| vec![u.0, v.0]).collect();
    let inst = AssignmentInstance::new(g.num_nodes(), &customers);
    let res = solve_stable_assignment(&inst);
    res.assignment.verify_stable(&inst).unwrap();

    // Translate: customer e assigned to server s ⇒ edge e oriented toward s.
    let mut o = Orientation::unoriented(&g);
    for (i, (e, _, _)) in g.edge_list().enumerate() {
        let s = res.assignment.server_of(i).unwrap();
        o.orient(&g, e, NodeId(s));
    }
    o.verify_stable(&g).unwrap();
}

#[test]
fn assignment_to_semi_matching_quality() {
    let mut rng = SmallRng::seed_from_u64(1004);
    for _ in 0..5 {
        let inst = AssignmentInstance::random(80, 16, 2..=4, &mut rng);
        let stable = solve_stable_assignment(&inst);
        let opt = optimal_semi_matching(&inst);
        let ratio = approximation_ratio(&stable.assignment, &opt.assignment);
        assert!((1.0..=2.0).contains(&ratio), "ratio {ratio}");
    }
}

#[test]
fn matching_reductions_cross_check() {
    // Both reductions (Thm 4.6 via td-core, Thm 7.4 via td-assign) must
    // produce maximal matchings on the same graphs.
    let mut rng = SmallRng::seed_from_u64(1005);
    for _ in 0..5 {
        let customers = 40;
        let g = random_bipartite(customers, 25, 1..=4, &mut rng);
        let side: Vec<u8> = (0..g.num_nodes())
            .map(|v| if v < customers { 1 } else { 0 })
            .collect();
        let (m1, _) =
            token_dropping::core::matching::maximal_matching_via_token_dropping(&g, &side);
        let m2 = token_dropping::assign::matching_reduction::maximal_matching_via_2_bounded(
            &g, customers,
        );
        assert!(token_dropping::core::matching::is_maximal_matching(&g, &m1));
        assert!(token_dropping::core::matching::is_maximal_matching(
            &g,
            &m2.matching
        ));
    }
}

#[test]
fn simulator_parallel_equivalence_on_real_protocol() {
    // The real proposal protocol (not a toy) must be executor-invariant.
    let mut rng = SmallRng::seed_from_u64(1006);
    let game = TokenGame::random(&[20, 24, 24, 20], 4, 0.5, &mut rng);
    let seq = proposal::run_on_simulator(&game, &Simulator::sequential());
    for threads in [2, 4, 7] {
        let par = proposal::run_on_simulator(&game, &Simulator::parallel(threads));
        assert_eq!(seq.log, par.log, "threads = {threads}");
        assert_eq!(seq.comm_rounds, par.comm_rounds);
        assert_eq!(seq.messages, par.messages);
    }
}

#[test]
fn figure1_shapes_are_stable() {
    // The left graph of Figure 1 is a 4-cycle with a chord; the right one a
    // small tree. Any output of our solver on them must be stable, and the
    // cycle's loads must sum to m.
    let chord = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
    let tree = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (3, 4), (3, 5)]).unwrap();
    for g in [chord, tree] {
        let res = solve_stable_orientation(&g, PhaseConfig::default());
        res.orientation.verify_stable(&g).unwrap();
    }
}

#[test]
fn classic_matching_protocol_cross_checks_token_dropping() {
    // The HKP98-style proposal matching (td-local::classics) and the
    // height-2 token dropping reduction (td-core::matching) both produce
    // maximal matchings on the same bipartite graphs.
    use token_dropping::local::classics::run_proposal_matching;
    let mut rng = SmallRng::seed_from_u64(1007);
    for _ in 0..5 {
        let customers = 30;
        let g = random_bipartite(customers, 20, 1..=4, &mut rng);
        let left: Vec<bool> = (0..g.num_nodes()).map(|v| v < customers).collect();
        let (matched, rounds) = run_proposal_matching(&g, &left, &Simulator::sequential());
        // Convert to edge ids and verify with the independent checker.
        let mut edges: Vec<EdgeId> = Vec::new();
        for v in g.nodes() {
            let m = matched[v.idx()];
            if m != u32::MAX && v.0 < m {
                edges.push(g.edge_between(v, NodeId(m)).unwrap());
            }
        }
        assert!(token_dropping::core::matching::is_maximal_matching(
            &g, &edges
        ));
        assert!(rounds as usize <= 4 * g.max_degree() + 8);

        let side: Vec<u8> = (0..g.num_nodes())
            .map(|v| if v < customers { 1 } else { 0 })
            .collect();
        let (m2, _) =
            token_dropping::core::matching::maximal_matching_via_token_dropping(&g, &side);
        assert!(token_dropping::core::matching::is_maximal_matching(&g, &m2));
        // Both are maximal; sizes are within the factor-2 window of each other.
        assert!(2 * edges.len() >= m2.len());
        assert!(2 * m2.len() >= edges.len());
    }
}
