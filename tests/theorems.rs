//! One integration test per theorem: the paper's claims as executable
//! assertions (shape checks with explicit constants; the benches measure
//! the full sweeps).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use token_dropping::assign::bounded::solve_2_bounded;
use token_dropping::assign::phases::solve_stable_assignment;
use token_dropping::assign::AssignmentInstance;
use token_dropping::core::{lockstep, three_level, TokenGame};
use token_dropping::graph::gen::random::gnm;
use token_dropping::orient::phases::{solve_stable_orientation, PhaseConfig};
use token_dropping::prelude::*;

/// Theorem 4.1: the proposal algorithm solves token dropping in O(L·Δ²).
#[test]
fn theorem_4_1_token_dropping_round_bound() {
    let mut rng = SmallRng::seed_from_u64(2001);
    for &(w, l, d) in &[
        (10usize, 2usize, 2usize),
        (12, 4, 3),
        (16, 6, 4),
        (20, 3, 6),
    ] {
        let game = TokenGame::random(&vec![w; l + 1], d, 0.5, &mut rng);
        let res = lockstep::run(&game);
        verify_solution(&game, &res.solution).unwrap();
        let (l, d) = (game.height() as u64, game.max_degree() as u64);
        assert!(
            (res.rounds as u64) <= 2 * l * d * d + l + d + 4,
            "rounds {} for L = {l}, Δ = {d}",
            res.rounds
        );
    }
}

/// Theorem 4.7: three-level games are solvable in O(Δ) rounds — and the
/// general algorithm is measurably slower on the same instances as Δ grows.
#[test]
fn theorem_4_7_three_level_linear() {
    let mut rng = SmallRng::seed_from_u64(2002);
    for &d in &[4usize, 8, 16] {
        let game = TokenGame::random(&[3 * d, 3 * d, 3 * d], d, 0.6, &mut rng);
        let delta = game.max_degree() as u32;
        let fast = three_level::run_lockstep(&game);
        verify_solution(&game, &fast.solution).unwrap();
        assert!(
            fast.rounds <= 3 * delta + 6,
            "3-level rounds {} vs Δ = {delta}",
            fast.rounds
        );
        // The general proposal algorithm also solves it (correctness), with
        // at least as many rounds on these adversarial instances.
        let general = lockstep::run(&game);
        verify_solution(&game, &general.solution).unwrap();
    }
}

/// Theorem 4.6 (reduction direction): height-2 token dropping computes
/// maximal matchings — certified on every instance.
#[test]
fn theorem_4_6_reduction_certificate() {
    let mut rng = SmallRng::seed_from_u64(2003);
    for _ in 0..10 {
        let g = token_dropping::graph::gen::random::random_bipartite(30, 30, 1..=5, &mut rng);
        let side: Vec<u8> = (0..60).map(|v| if v < 30 { 1 } else { 0 }).collect();
        let (m, _) = token_dropping::core::matching::maximal_matching_via_token_dropping(&g, &side);
        assert!(token_dropping::core::matching::is_maximal_matching(&g, &m));
    }
}

/// Theorem 5.1 + Lemma 5.5: stable orientation in O(Δ) phases, O(Δ⁴) rounds.
#[test]
fn theorem_5_1_stable_orientation() {
    let mut rng = SmallRng::seed_from_u64(2004);
    for &(n, m) in &[(30usize, 60usize), (50, 150), (70, 280)] {
        let g = gnm(n, m, &mut rng);
        let d = g.max_degree() as u64;
        let res = solve_stable_orientation(&g, PhaseConfig::default());
        res.orientation.verify_stable(&g).unwrap();
        assert!(res.phases as u64 <= 2 * d + 2, "Lemma 5.5");
        assert!(res.comm_rounds <= 8 * d.pow(4) + 64, "Theorem 5.1 shape");
        assert_eq!(res.invariant_violations, 0, "Lemma 5.4");
    }
}

/// Theorem 6.3's certificates (Lemmas 6.1 and 6.2) on fresh instances.
#[test]
fn theorem_6_3_certificates() {
    use token_dropping::graph::gen::structured::{high_girth_regular, perfect_dary_tree};
    use token_dropping::orient::lower_bound::*;
    let mut rng = SmallRng::seed_from_u64(2005);

    let (tree, _) = perfect_dary_tree(4, 4, 100_000);
    let res = solve_stable_orientation(&tree, PhaseConfig::default());
    check_tree_indegree_bound(&tree, &res.orientation).unwrap();

    let g = high_girth_regular(48, 4, 5, &mut rng, 80).expect("construction converges");
    assert!(token_dropping::graph::algo::girth(&g).unwrap() >= 5);
    let res = solve_stable_orientation(&g, PhaseConfig::default());
    let (ok, _) = check_regular_indegree_lb(&g, &res.orientation, 4);
    assert!(ok);
}

/// Theorem 7.3 + Lemma 7.2: stable assignment in O(C·S) phases.
#[test]
fn theorem_7_3_stable_assignment() {
    let mut rng = SmallRng::seed_from_u64(2006);
    for _ in 0..5 {
        let inst = AssignmentInstance::random(70, 14, 2..=5, &mut rng);
        let (c, s) = (
            inst.max_customer_degree() as u64,
            inst.max_server_degree() as u64,
        );
        let res = solve_stable_assignment(&inst);
        res.assignment.verify_stable(&inst).unwrap();
        assert!(res.phases as u64 <= 2 * c * s + 2, "Lemma 7.2");
        assert_eq!(res.invariant_violations, 0);
    }
}

/// Theorem 7.5: the 2-bounded problem's per-phase token dropping runs in
/// O(S) rounds (3-level instances).
#[test]
fn theorem_7_5_bounded_per_phase_linear() {
    let mut rng = SmallRng::seed_from_u64(2007);
    let inst = AssignmentInstance::random(100, 12, 2..=5, &mut rng);
    let s = inst.max_server_degree() as u32;
    let res = solve_2_bounded(&inst);
    res.assignment.verify_k_bounded(&inst, 2).unwrap();
    for st in &res.stats {
        assert!(st.td_rounds <= 3 * s + 4);
    }
}

/// Theorem 7.4 (reduction direction): 2-bounded stable assignment + one
/// round yields a maximal matching.
#[test]
fn theorem_7_4_reduction_certificate() {
    let mut rng = SmallRng::seed_from_u64(2008);
    for _ in 0..10 {
        let customers = 35;
        let g =
            token_dropping::graph::gen::random::random_bipartite(customers, 20, 1..=4, &mut rng);
        let red = token_dropping::assign::matching_reduction::maximal_matching_via_2_bounded(
            &g, customers,
        );
        assert!(token_dropping::core::matching::is_maximal_matching(
            &g,
            &red.matching
        ));
    }
}

/// CHSW12 corollary: stable assignments 2-approximate optimal semi-matchings.
#[test]
fn two_approximation_certificate() {
    use token_dropping::assign::semi_matching::*;
    let mut rng = SmallRng::seed_from_u64(2009);
    for _ in 0..5 {
        let inst = AssignmentInstance::skewed(90, 12, 1..=3, 1.0, &mut rng);
        let stable = solve_stable_assignment(&inst);
        let opt = optimal_semi_matching(&inst);
        let ratio = approximation_ratio(&stable.assignment, &opt.assignment);
        assert!(ratio <= 2.0, "ratio {ratio}");
        assert!(is_optimal(&inst, &opt.assignment));
    }
}
