//! Mutation-style negative tests for the verifiers: every rule must
//! *reject* a minimally corrupted solution. The accept path is exercised
//! all over the test suite; these tests are the other half of the
//! contract — a verifier that accepts garbage is worse than none, because
//! every scenario and experiment uses it as the final judge.
//!
//! Two layers: hand-built instances where the exact `Violation` /
//! `UnhappyEdge` / `Instability` variant is pinned down, and seeded sweeps
//! where real solver outputs are corrupted by mutation operators and the
//! verifier must reject (whatever the variant).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use token_dropping::assign::{Assignment, AssignmentInstance};
use token_dropping::core::{lockstep, verify_dynamics, verify_solution, TokenGame, Violation};
use token_dropping::graph::{CsrGraph, EdgeId, NodeId};
use token_dropping::orient::{Orientation, UnhappyEdge};

// ------------------------------------------------------- token game rules ---

fn solved(seed: u64) -> (TokenGame, token_dropping::core::Solution) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let game = TokenGame::random(&[6, 6, 6, 6], 3, 0.6, &mut rng);
    let res = lockstep::run(&game);
    verify_solution(&game, &res.solution).unwrap();
    (game, res.solution)
}

#[test]
fn rejects_missing_traversal() {
    for seed in 0..8 {
        let (game, mut sol) = solved(seed);
        if sol.traversals.is_empty() {
            continue;
        }
        sol.traversals.pop();
        assert!(
            matches!(
                verify_solution(&game, &sol),
                Err(Violation::WrongTraversalCount { .. })
            ),
            "seed {seed}"
        );
    }
}

#[test]
fn rejects_forged_origin() {
    for seed in 0..8 {
        let (game, mut sol) = solved(seed);
        let Some(fake) = game.graph().nodes().find(|&v| !game.has_token(v)) else {
            continue;
        };
        if sol.traversals.is_empty() {
            continue;
        }
        // Replace a traversal with one claiming a tokenless origin.
        sol.traversals[0].path = vec![fake];
        let err = verify_solution(&game, &sol).unwrap_err();
        assert!(
            matches!(
                err,
                Violation::OriginHasNoToken(_)
                    | Violation::DuplicateDestination(_)
                    | Violation::NotMaximal { .. }
            ),
            "seed {seed}: {err}"
        );
    }
}

#[test]
fn rejects_duplicated_traversal() {
    for seed in 0..8 {
        let (game, mut sol) = solved(seed);
        if sol.traversals.is_empty() {
            continue;
        }
        let dup = sol.traversals[0].clone();
        sol.traversals.push(dup);
        assert!(verify_solution(&game, &sol).is_err(), "seed {seed}");
    }
}

#[test]
fn rejects_truncated_traversal() {
    // Truncating a moving traversal leaves its last edge unconsumed and the
    // old destination unoccupied → rule 3 (or a duplicate destination if
    // the cut lands on another token).
    let mut hits = 0;
    for seed in 0..16 {
        let (game, mut sol) = solved(seed);
        let Some(ti) = sol.traversals.iter().position(|t| t.path.len() >= 2) else {
            continue;
        };
        sol.traversals[ti].path.pop();
        assert!(verify_solution(&game, &sol).is_err(), "seed {seed}");
        hits += 1;
    }
    assert!(hits >= 4, "mutation never applicable");
}

#[test]
fn rejects_teleport_and_ascent() {
    let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
    let game = TokenGame::new(g, vec![0, 1, 2, 3], vec![false, false, false, true]).unwrap();
    // Teleport: skips a level (v3 → v1 is not an edge).
    let sol = token_dropping::core::Solution {
        traversals: vec![token_dropping::core::Traversal {
            path: vec![NodeId(3), NodeId(1), NodeId(0)],
        }],
    };
    assert!(matches!(
        verify_solution(&game, &sol),
        Err(Violation::NotAnEdge(..))
    ));
    // Ascent: goes back up.
    let sol = token_dropping::core::Solution {
        traversals: vec![token_dropping::core::Traversal {
            path: vec![NodeId(3), NodeId(2), NodeId(3)],
        }],
    };
    assert!(matches!(
        verify_solution(&game, &sol),
        Err(Violation::NotDescending(..)) | Err(Violation::EdgeReused(..))
    ));
}

#[test]
fn rejects_edge_reuse_and_duplicate_destination() {
    // Two tokens on v2, v3 (level 1), both adjacent only to v0, v1 — force
    // a shared edge / shared destination by hand.
    let g = CsrGraph::from_edges(4, &[(0, 2), (0, 3), (1, 2)]).unwrap();
    let game = TokenGame::new(g, vec![0, 0, 1, 1], vec![false, false, true, true]).unwrap();
    // Shared destination v0.
    let sol = token_dropping::core::Solution {
        traversals: vec![
            token_dropping::core::Traversal {
                path: vec![NodeId(2), NodeId(0)],
            },
            token_dropping::core::Traversal {
                path: vec![NodeId(3), NodeId(0)],
            },
        ],
    };
    assert_eq!(
        verify_solution(&game, &sol),
        Err(Violation::DuplicateDestination(NodeId(0)))
    );
}

#[test]
fn dynamics_rejects_mutated_logs() {
    for seed in 0..8 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let game = TokenGame::random(&[6, 6, 6], 3, 0.6, &mut rng);
        let res = lockstep::run(&game);
        verify_dynamics(&game, &res.log).unwrap();
        if res.log.events.len() < 2 {
            continue;
        }
        // Duplicate a move: the edge is consumed twice (or the source is
        // empty / target occupied on the replayed copy).
        let mut log = res.log.clone();
        let dup = log.events[0];
        log.events.push(token_dropping::core::MoveEvent {
            round: log.events.last().unwrap().round + 1,
            ..dup
        });
        assert!(verify_dynamics(&game, &log).is_err(), "seed {seed} (dup)");
        // Unsort the log: rotate the first (earliest-round) event to the
        // end, guaranteeing a strict round decrease; the verifier rejects
        // (either as UnsortedLog or as the occupancy violation the
        // out-of-order replay creates first).
        let mut log = res.log.clone();
        if log.events.last().unwrap().round > log.events[0].round {
            let first = log.events.remove(0);
            log.events.push(first);
            assert!(
                verify_dynamics(&game, &log).is_err(),
                "seed {seed} (unsort)"
            );
        }
    }
}

#[test]
fn dynamics_rejects_unsorted_log_specifically() {
    use token_dropping::core::verify::DynamicsViolation;
    use token_dropping::core::{MoveEvent, MoveLog};
    let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let game = TokenGame::new(g, vec![0, 1, 2], vec![true, false, true]).unwrap();
    // Both moves are individually legal; only the ordering is corrupt.
    let log = MoveLog {
        events: vec![
            MoveEvent {
                round: 1,
                from: NodeId(2),
                to: NodeId(1),
            },
            MoveEvent {
                round: 0,
                from: NodeId(2),
                to: NodeId(1),
            },
        ],
    };
    assert_eq!(
        verify_dynamics(&game, &log),
        Err(DynamicsViolation::UnsortedLog)
    );
}

// ------------------------------------------------------ orientation rules ---

#[test]
fn orientation_rejects_unoriented_edge() {
    let g = token_dropping::graph::gen::classic::path(4);
    let mut o = Orientation::unoriented(&g);
    o.orient(&g, EdgeId(0), NodeId(1));
    o.orient(&g, EdgeId(1), NodeId(2));
    // Edge 2 left unoriented.
    assert_eq!(o.verify_stable(&g), Err(UnhappyEdge::Unoriented(EdgeId(2))));
}

#[test]
fn orientation_rejects_flip_of_balanced_edge() {
    // Path v0-v1-v2-v3 oriented rightward: loads 0,1,1,1. Edge (v1,v2) has
    // badness 0; flipping it yields loads 0,2,0,1 and badness 2 → reject.
    let g = token_dropping::graph::gen::classic::path(4);
    let mut o = Orientation::unoriented(&g);
    for (e, u, v) in g.edge_list() {
        o.orient(&g, e, u.max(v));
    }
    o.verify_stable(&g).unwrap();
    let mid = g.edge_between(NodeId(1), NodeId(2)).unwrap();
    o.flip(&g, mid);
    assert!(matches!(
        o.verify_stable(&g),
        Err(UnhappyEdge::Unhappy { badness: 2, .. })
    ));
}

#[test]
fn orientation_rejects_corrupted_stable_outputs() {
    // Sweep: solve real instances, then flip the minimum-badness edge;
    // whenever that badness is ≤ 0 the flip must break stability.
    let mut rng = SmallRng::seed_from_u64(5);
    let mut hits = 0;
    for _ in 0..12 {
        let g = token_dropping::graph::gen::random::gnm(24, 48, &mut rng);
        let res = token_dropping::orient::phases::solve_stable_orientation(
            &g,
            token_dropping::orient::PhaseConfig::default(),
        );
        let mut o = res.orientation;
        o.verify_stable(&g).unwrap();
        let Some(e) = g.edges().min_by_key(|&e| o.badness(&g, e).unwrap()) else {
            continue;
        };
        if o.badness(&g, e).unwrap() <= 0 {
            o.flip(&g, e);
            assert!(o.verify_stable(&g).is_err());
            hits += 1;
        }
    }
    assert!(hits >= 3, "mutation never applicable");
}

// ------------------------------------------------------- assignment rules ---

#[test]
fn assignment_rejects_unassigned_and_greedy_pileup() {
    let inst = AssignmentInstance::new(2, &[vec![0, 1], vec![0, 1], vec![0, 1]]);
    let mut a = Assignment::unassigned(&inst);
    assert!(a.verify_stable(&inst).is_err()); // unassigned customers
    a.assign(0, 0);
    a.assign(1, 0);
    a.assign(2, 0); // loads (3, 0): badness 3
    assert!(matches!(
        a.verify_stable(&inst),
        Err(token_dropping::assign::assignment::Instability::Unhappy { .. })
    ));
}

#[test]
fn assignment_rejects_corrupted_stable_outputs() {
    // 2 servers, 3 fully-connected customers: the stable split is 2/1;
    // moving the lone customer onto the pile must be rejected.
    let inst = AssignmentInstance::new(2, &[vec![0, 1], vec![0, 1], vec![0, 1]]);
    let res = token_dropping::assign::phases::solve_stable_assignment(&inst);
    let mut a = res.assignment;
    a.verify_stable(&inst).unwrap();
    let (light, heavy) = if a.load(0) < a.load(1) {
        (0, 1)
    } else {
        (1, 0)
    };
    let lone = (0..3).find(|&c| a.server_of(c) == Some(light)).unwrap();
    a.reassign(lone, heavy);
    assert!(a.verify_stable(&inst).is_err());
}

#[test]
fn k_bounded_rejects_over_capacity_corruption() {
    // Loads (3, 1) are 2-bounded stable; (4, 0) is not.
    let inst = AssignmentInstance::new(2, &[vec![0, 1], vec![0, 1], vec![0, 1], vec![0, 1]]);
    let mut a = Assignment::unassigned(&inst);
    a.assign(0, 0);
    a.assign(1, 0);
    a.assign(2, 0);
    a.assign(3, 1);
    a.verify_k_bounded(&inst, 2).unwrap();
    a.reassign(3, 0);
    assert!(a.verify_k_bounded(&inst, 2).is_err());
    // And exact stability is strictly stronger: (3,1) already fails it.
    let mut b = Assignment::unassigned(&inst);
    b.assign(0, 0);
    b.assign(1, 0);
    b.assign(2, 0);
    b.assign(3, 1);
    assert!(b.verify_stable(&inst).is_err());
}

#[test]
fn k_bounded_sweep_rejects_forced_pileups() {
    // On random instances: push every customer of some server s onto one
    // neighbor server until its load exceeds k + 1 somewhere; k-bounded
    // verification must reject loads ≥ k+2 next to a load-0 server.
    let mut rng = SmallRng::seed_from_u64(11);
    let mut hits = 0;
    for _ in 0..10 {
        let inst = AssignmentInstance::random(20, 4, 2..=3, &mut rng);
        let res = token_dropping::assign::bounded::solve_k_bounded(&inst, 2);
        let mut a = res.assignment;
        a.verify_k_bounded(&inst, 2).unwrap();
        // Corrupt: move every movable customer onto its first candidate.
        for c in 0..inst.num_customers() {
            let first = inst.servers_of(c)[0];
            if a.server_of(c) != Some(first) {
                a.reassign(c, first);
            }
        }
        if a.verify_k_bounded(&inst, 2).is_err() {
            hits += 1;
        }
    }
    assert!(
        hits >= 5,
        "corruption too gentle to ever violate 2-boundedness"
    );
}
