//! Quickstart: build a graph, find a stable orientation with the paper's
//! O(Δ⁴) algorithm, and verify it (reproduces the flavor of Figure 1).
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use token_dropping::graph::gen::random::gnm;
use token_dropping::orient::phases::{solve_stable_orientation, PhaseConfig};
use token_dropping::prelude::*;

fn main() {
    // A seeded random graph: 30 nodes, 75 edges.
    let mut rng = SmallRng::seed_from_u64(2021);
    let g = gnm(30, 75, &mut rng);
    let delta = g.max_degree();
    println!(
        "graph: n = {}, m = {}, Δ = {delta}",
        g.num_nodes(),
        g.num_edges()
    );

    // Orient it stably: every edge (customer) points at a server whose load
    // cannot be improved by unilaterally switching.
    let result = solve_stable_orientation(&g, PhaseConfig::default());
    result
        .orientation
        .verify_stable(&g)
        .expect("algorithm output must be stable");

    println!(
        "stable orientation found in {} phases ({} derived communication rounds)",
        result.phases, result.comm_rounds
    );
    println!(
        "Lemma 5.5 check: phases {} <= 2Δ + 2 = {}",
        result.phases,
        2 * delta + 2
    );

    // Load distribution: the whole point of stability is local balance.
    let mut hist = std::collections::BTreeMap::new();
    for v in g.nodes() {
        *hist.entry(result.orientation.load(v)).or_insert(0u32) += 1;
    }
    println!("\nload histogram (load -> #servers):");
    for (load, count) in &hist {
        println!("  {load:>3} -> {count} {}", "#".repeat(*count as usize));
    }

    // Every edge is happy: badness <= 1.
    let max_badness = g
        .edges()
        .filter_map(|e| result.orientation.badness(&g, e))
        .max()
        .unwrap();
    println!("\nmax badness over all edges: {max_badness} (stable ⟺ ≤ 1)");

    // Render the small instance from the paper's Figure 1 for eyeballing.
    let tiny = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
    let tiny_result = solve_stable_orientation(&tiny, PhaseConfig::default());
    tiny_result.orientation.verify_stable(&tiny).unwrap();
    println!("\nFigure-1-style mini instance as DOT (paste into graphviz):");
    let dot = token_dropping::graph::dot::to_dot_oriented(
        &tiny,
        |v| Some(format!("v{} load {}", v.0, tiny_result.orientation.load(v))),
        |e| {
            tiny_result
                .orientation
                .head(e)
                .map(|h| (tiny.other_endpoint(e, h), h))
        },
    );
    println!("{dot}");
}
