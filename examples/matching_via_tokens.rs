//! The paper's two matching reductions, run end-to-end:
//!
//! * **Theorem 4.6** — bipartite maximal matching *is* a height-2 token
//!   dropping game (tokens on one side, level 0 on the other; traversals =
//!   matched edges). This is why token dropping needs Ω(Δ) rounds.
//! * **Theorem 7.4** — a 2-bounded stable assignment plus one
//!   post-processing round yields a maximal matching, so even the heavily
//!   relaxed 0-1-many assignment problem needs Ω(Δ) rounds.
//!
//! Run with: `cargo run --example matching_via_tokens`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use token_dropping::assign::matching_reduction::maximal_matching_via_2_bounded;
use token_dropping::core::matching::{
    is_maximal_matching, maximal_matching_via_token_dropping, maximum_matching_size,
};
use token_dropping::graph::gen::random::random_bipartite;

fn main() {
    let mut rng = SmallRng::seed_from_u64(13);
    let customers = 60;
    let servers = 40;
    let g = random_bipartite(customers, servers, 1..=5, &mut rng);
    let side: Vec<u8> = (0..g.num_nodes())
        .map(|v| if v < customers { 1 } else { 0 })
        .collect();
    println!(
        "bipartite graph: {} + {} nodes, {} edges, Δ = {}\n",
        customers,
        servers,
        g.num_edges(),
        g.max_degree()
    );

    // --- Theorem 4.6: height-2 token dropping = maximal matching.
    let (matched, rounds) = maximal_matching_via_token_dropping(&g, &side);
    assert!(is_maximal_matching(&g, &matched));
    println!("Theorem 4.6 reduction (height-2 token dropping):");
    println!(
        "  matched {} edges in {} game rounds — verified maximal",
        matched.len(),
        rounds
    );

    // --- Theorem 7.4: 2-bounded stable assignment -> maximal matching.
    let red = maximal_matching_via_2_bounded(&g, customers);
    assert!(is_maximal_matching(&g, &red.matching));
    println!("\nTheorem 7.4 reduction (2-bounded stable assignment + 1 round):");
    println!(
        "  matched {} edges in {} phases / {} communication rounds — verified maximal",
        red.matching.len(),
        red.phases,
        red.comm_rounds
    );

    // Quality context: maximal matchings are within factor 2 of maximum.
    let maximum = maximum_matching_size(&g, &side);
    println!("\nmaximum matching size: {maximum}");
    println!(
        "maximal/maximum: {:.3} and {:.3} (both guaranteed ≥ 0.5)",
        matched.len() as f64 / maximum as f64,
        red.matching.len() as f64 / maximum as f64
    );
}
