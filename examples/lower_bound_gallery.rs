//! The Section 6 lower-bound gallery: the two graph families whose
//! indistinguishable local views force Ω(Δ) rounds for stable orientation,
//! together with their checkable certificates.
//!
//! * Perfect Δ-ary trees: **Lemma 6.1** forces `indegree(v) ≤ h(v) + 1`.
//! * Δ-regular (high-girth) graphs: **Lemma 6.2** forces some node to
//!   `indegree ≥ ⌈Δ/2⌉`.
//!
//! A node deep in the regular graph and a mid-height tree node see the same
//! radius-t ball for t ≈ Δ/2, yet the certificates force different outputs —
//! no t-round algorithm can satisfy both. We check the certificates and run
//! the stabilization probe on both families.
//!
//! Run with: `cargo run --example lower_bound_gallery`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use token_dropping::graph::algo::girth;
use token_dropping::graph::gen::classic::{heawood, petersen};
use token_dropping::graph::gen::structured::{high_girth_regular, perfect_dary_tree};
use token_dropping::orient::lower_bound::{
    check_regular_indegree_lb, check_tree_indegree_bound, stabilization_probe, tree_heights,
};
use token_dropping::orient::phases::{solve_stable_orientation, PhaseConfig};

fn main() {
    println!("=== Lemma 6.1: perfect Δ-ary trees ===");
    for (d, depth) in [(3usize, 5usize), (4, 4), (5, 3)] {
        let (g, _) = perfect_dary_tree(d, depth, 100_000);
        let res = solve_stable_orientation(&g, PhaseConfig::default());
        res.orientation.verify_stable(&g).unwrap();
        check_tree_indegree_bound(&g, &res.orientation)
            .unwrap_or_else(|v| panic!("violated at {v}"));
        let heights = tree_heights(&g);
        let root_h = heights[0];
        let root_load = res.orientation.load(token_dropping::graph::NodeId(0));
        println!(
            "  {d}-ary depth {depth}: n = {:>5}, root height {root_h}, root load {root_load} \
             (bound {}) — certificate holds everywhere",
            g.num_nodes(),
            root_h + 1
        );
    }

    println!("\n=== Lemma 6.2: Δ-regular graphs ===");
    let mut rng = SmallRng::seed_from_u64(6);
    let named: Vec<(&str, _)> = vec![
        ("Petersen (3-regular, girth 5)", petersen()),
        ("Heawood (3-regular, girth 6)", heawood()),
    ];
    for (name, g) in named {
        let d = g.degree(token_dropping::graph::NodeId(0));
        let res = solve_stable_orientation(&g, PhaseConfig::default());
        let (ok, max) = check_regular_indegree_lb(&g, &res.orientation, d);
        println!(
            "  {name}: max indegree {max} ≥ ⌈{d}/2⌉ = {} — {}",
            d.div_ceil(2),
            ok
        );
        assert!(ok);
    }
    for d in [4usize, 6] {
        let n = 30 * d;
        if let Some(g) = high_girth_regular(n, d, 5, &mut rng, 80) {
            let girth = girth(&g).unwrap();
            let res = solve_stable_orientation(&g, PhaseConfig::default());
            let (ok, max) = check_regular_indegree_lb(&g, &res.orientation, d);
            println!(
                "  random {d}-regular n = {n}, girth {girth}: max indegree {max} ≥ {} — {ok}",
                d.div_ceil(2)
            );
            assert!(ok);
        } else {
            println!("  ({d}-regular high-girth construction did not converge; skipped)");
        }
    }

    println!("\n=== Stabilization probe (rounds grow with Δ) ===");
    println!(
        "  {:<28} {:>4} {:>8} {:>14}",
        "instance", "Δ", "phases", "max stab. phase"
    );
    for d in [3usize, 4, 5, 6] {
        let n = (20 * d).max(40) & !1; // even
        if let Some(g) = high_girth_regular(n, d, 5, &mut rng, 80) {
            let probe = stabilization_probe(&g);
            println!(
                "  {:<28} {:>4} {:>8} {:>14}",
                format!("{d}-regular n={n}"),
                d,
                probe.phases,
                probe.max_stabilization
            );
        }
    }
    for (d, depth) in [(3usize, 5usize), (4, 4), (5, 4)] {
        let (g, _) = perfect_dary_tree(d, depth, 200_000);
        let probe = stabilization_probe(&g);
        println!(
            "  {:<28} {:>4} {:>8} {:>14}",
            format!("{d}-ary tree depth {depth}"),
            d,
            probe.phases,
            probe.max_stabilization
        );
    }
    println!("\nlower bounds cannot be 'run'; these certificates are the proof's");
    println!("load-bearing facts, checked on every instance (see DESIGN.md).");
}
