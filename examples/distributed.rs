//! The fully distributed algorithms end to end: every node is a LOCAL
//! processor, phases are synchronized by the known-parameter budgets, and
//! the round counts *are* the paper's bounds with explicit constants.
//!
//! * Stable orientation (Theorem 5.1): Θ(Δ⁴) communication rounds.
//! * Stable assignment (Theorem 7.3): Θ(C·S⁴); 2-bounded (Theorem 7.5):
//!   Θ(C·S²).
//!
//! Run with: `cargo run --release --example distributed`

use td_bench::workloads;
use token_dropping::assign::protocol::{run_distributed_assignment, total_rounds as assign_rounds};
use token_dropping::local::Simulator;
use token_dropping::orient::phases::{solve_stable_orientation, PhaseConfig};
use token_dropping::orient::protocol::{run_distributed, total_rounds as orient_rounds};

fn main() {
    println!("=== Distributed stable orientation (Theorem 5.1) ===");
    println!(
        "{:>3} {:>5} {:>14} {:>10} {:>10}",
        "Δ", "n", "comm rounds", "budget", "messages"
    );
    for d in [2usize, 3, 4] {
        // Same builder as the `regular-orientation` scenario in td-bench.
        let g = workloads::regular_graph(d, 8, 99 + d as u64);
        let res = run_distributed(&g, &Simulator::sequential());
        res.orientation.verify_stable(&g).unwrap();
        // The protocol is deterministic and equals the lockstep driver:
        let lock = solve_stable_orientation(&g, PhaseConfig::default());
        assert_eq!(res.orientation, lock.orientation);
        println!(
            "{:>3} {:>5} {:>14} {:>10} {:>10}",
            d,
            g.num_nodes(),
            res.comm_rounds,
            orient_rounds(d as u32),
            res.messages
        );
    }
    println!("(output verified stable and equal to the lockstep driver's)\n");

    println!("=== Distributed stable assignment (Theorems 7.3 / 7.5) ===");
    let inst = workloads::assignment_instance(2, 4, 5, 99);
    let (c, s) = (
        inst.max_customer_degree() as u32,
        inst.max_server_degree() as u32,
    );
    println!(
        "instance: {} customers × {} servers, C = {c}, S = {s}",
        inst.num_customers(),
        inst.num_servers()
    );
    let exact = run_distributed_assignment(&inst, None, &Simulator::sequential());
    exact.assignment.verify_stable(&inst).unwrap();
    println!(
        "exact:     {} comm rounds (budget {}), cost {}",
        exact.comm_rounds,
        assign_rounds(c, s, None),
        exact.assignment.cost()
    );
    let bounded = run_distributed_assignment(&inst, Some(2), &Simulator::sequential());
    bounded.assignment.verify_k_bounded(&inst, 2).unwrap();
    println!(
        "2-bounded: {} comm rounds (budget {}), cost {}",
        bounded.comm_rounds,
        assign_rounds(c, s, Some(2)),
        bounded.assignment.cost()
    );
    println!(
        "\nthe 2-bounded budget is Θ(S²) smaller per the Theorem 7.5 analysis: {} vs {}",
        assign_rounds(c, s, Some(2)),
        assign_rounds(c, s, None)
    );
}
