//! The paper's motivating scenario (Section 1 and Section 7): customers
//! selfishly pick servers; a stable assignment is both an equilibrium and a
//! 2-approximation of the optimal semi-matching. This example runs the
//! O(C·S⁴) stable assignment algorithm and the O(C·S²) 2-bounded variant on
//! a skewed "hot server" workload and compares their costs to the exact
//! optimum.
//!
//! Run with: `cargo run --example load_balancing`

use td_bench::workloads;
use token_dropping::assign::bounded::solve_2_bounded;
use token_dropping::assign::phases::solve_stable_assignment;
use token_dropping::assign::semi_matching::{approximation_ratio, optimal_semi_matching};
use token_dropping::assign::Assignment;

fn show_loads(label: &str, a: &Assignment) {
    let mut loads: Vec<u32> = a.loads().to_vec();
    loads.sort_unstable_by(|x, y| y.cmp(x));
    let preview: Vec<String> = loads.iter().take(12).map(|l| l.to_string()).collect();
    println!(
        "  {label:<22} cost = {:>5}, max load = {:>2}, top loads = [{}]",
        a.cost(),
        a.max_load(),
        preview.join(", ")
    );
}

fn main() {
    // 400 customers over 40 servers; servers have Zipf-like popularity, so a
    // naive "first choice" assignment hammers the popular ones. The builder
    // is the same one behind the `server-farm` scenario (`td bench`).
    let inst = workloads::skewed_assignment(400, 40, 1.1, 7);
    println!(
        "instance: {} customers, {} servers, C = {}, S = {}\n",
        inst.num_customers(),
        inst.num_servers(),
        inst.max_customer_degree(),
        inst.max_server_degree()
    );

    // Naive: everyone takes their first listed server.
    let naive = Assignment::first_choice(&inst);
    show_loads("naive first-choice:", &naive);

    // Paper algorithm: stable assignment via hypergraph token dropping.
    let stable = solve_stable_assignment(&inst);
    stable.assignment.verify_stable(&inst).unwrap();
    show_loads("stable (Thm 7.3):", &stable.assignment);
    println!(
        "    ↳ {} phases, {} derived communication rounds",
        stable.phases, stable.comm_rounds
    );

    // Relaxed: 2-bounded stability (0-1-many), cheaper per phase.
    let bounded = solve_2_bounded(&inst);
    bounded.assignment.verify_k_bounded(&inst, 2).unwrap();
    show_loads("2-bounded (Thm 7.5):", &bounded.assignment);
    println!(
        "    ↳ {} phases, {} derived communication rounds",
        bounded.phases, bounded.comm_rounds
    );

    // Exact optimum via cost-reducing paths [HLLT06].
    let opt = optimal_semi_matching(&inst);
    show_loads("optimal semi-matching:", &opt.assignment);
    println!("    ↳ {} cost-reducing paths applied", opt.paths_applied);

    let ratio = approximation_ratio(&stable.assignment, &opt.assignment);
    println!("\nstable/optimal cost ratio = {ratio:.4}  (CHSW12 guarantee: ≤ 2)");
    assert!(ratio <= 2.0);
    let naive_ratio = approximation_ratio(&naive, &opt.assignment);
    println!("naive/optimal  cost ratio = {naive_ratio:.4}");
}
