//! Reconstructs the paper's **Figure 2** (a token dropping game and a
//! feasible solution) and **Figure 3** (traversals, tails, and extended
//! traversals), printing an ASCII rendition of the level structure and the
//! paths the tokens took.
//!
//! Run with: `cargo run --example token_game`

use token_dropping::core::{lockstep, proposal, TokenGame};
use token_dropping::local::Simulator;
use token_dropping::prelude::*;

fn main() {
    let game = TokenGame::figure2();
    println!(
        "Figure 2 instance: {} nodes, {} edges, height {}, {} tokens\n",
        game.num_nodes(),
        game.graph().num_edges(),
        game.height(),
        game.token_count()
    );

    // Print the layered structure.
    for level in (0..=game.height()).rev() {
        print!("level {level}: ");
        for v in game.graph().nodes() {
            if game.level(v) == level {
                let mark = if game.has_token(v) { "●" } else { "○" };
                print!("{mark}v{:<3}", v.0);
            }
        }
        println!();
    }

    // Solve with the lockstep engine (identical moves to the LOCAL
    // protocol; see td-core tests).
    let res = lockstep::run(&game);
    verify_solution(&game, &res.solution).expect("solution obeys rules 1-3");
    verify_dynamics(&game, &res.log).expect("moves respect game dynamics");

    println!(
        "\nsolved in {} game rounds, {} token moves",
        res.rounds,
        res.log.len()
    );
    println!("\ntraversals (Figure 2's orange arrows):");
    for t in &res.solution.traversals {
        let path: Vec<String> = t.path.iter().map(|v| format!("v{}", v.0)).collect();
        println!("  {}", path.join(" → "));
    }

    // Figure 3: tails and extended traversals.
    println!("\ntails and extended traversals (Definition 4.3 / Figure 3):");
    let tails = res.solution.tails(&res.log);
    let exts = res.solution.extended_traversals(&res.log);
    for ((t, tail), ext) in res.solution.traversals.iter().zip(&tails).zip(&exts) {
        let fmt = |p: &[NodeId]| {
            p.iter()
                .map(|v| format!("v{}", v.0))
                .collect::<Vec<_>>()
                .join(" → ")
        };
        println!(
            "  token from v{:<2}: tail [{}], extended [{}]",
            t.origin().0,
            fmt(tail),
            fmt(ext)
        );
    }

    // Cross-check with the faithful message-passing protocol on the LOCAL
    // simulator.
    let proto = proposal::run_on_simulator(&game, &Simulator::sequential());
    assert_eq!(proto.log, res.log, "protocol and lockstep agree exactly");
    println!(
        "\nLOCAL protocol cross-check: identical moves in {} communication rounds \
         ({} messages)",
        proto.comm_rounds, proto.messages
    );
}
