//! Tour of the **scenario registry**: every named workload in `td-bench`,
//! run end-to-end through the same [`td_bench::Scenario`] interface the
//! `td bench` CLI subcommand and the criterion benches use.
//!
//! Each scenario bundles instance construction with the paper-faithful
//! solver and verifies its own output, so this example doubles as a smoke
//! test across all three problem families (games, orientations,
//! assignments).
//!
//! Run with: `cargo run --release --example scenarios`

use td_bench::scenario;
use token_dropping::local::Simulator;

fn main() {
    println!("{}", scenario::listing());

    let sim = Simulator::sequential();
    for s in scenario::registry() {
        let rep = s.run(s.default_size(), 42, &sim);
        println!(
            "{:>19}  [{}]  n = {:>4}, m = {:>4}  →  {:>6} rounds, {:>8} messages  ({:.2?})",
            rep.scenario,
            s.kind().label(),
            rep.nodes,
            rep.edges,
            rep.rounds,
            rep.messages,
            rep.wall,
        );
        for (k, v) in &rep.notes {
            println!("{:>23}{k}: {v}", "");
        }
    }
    println!("\n(each run verified its own output; try `td bench <name> --size N --threads T`)");
}
