//! The common protocol trait the competing balancers sit behind.
//!
//! [`BalancingProtocol`] captures what the comparison harness needs from
//! any balancer: build an engine over an instance (**init**), run the
//! per-node step function over the message plane to quiescence and through
//! a churn script (**step/run**), and audit the result (**verify**,
//! including the per-round potential accounting the engine keeps). The
//! existing token-dropping dynamics implement it unchanged —
//! [`TokenDropBalancer`] is a zero-size wrapper over the same engine and
//! node program the stack already runs — and the rivals
//! ([`RotorRouterBalancer`], [`MatchingBalancer`]) differ only in their
//! [`Rule`].

use crate::engine::BalanceEngine;
use crate::instance::BalanceInstance;
use crate::node::Rule;
use td_local::churn::{ChurnEvent, RepairMode, RepairStats};

/// One executor configuration of the comparison grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecPoint {
    /// Worker threads (1 = sequential).
    pub threads: usize,
    /// Message-plane shards (1 = unsharded).
    pub shards: usize,
}

impl ExecPoint {
    /// The sequential baseline point.
    pub fn sequential() -> Self {
        ExecPoint {
            threads: 1,
            shards: 1,
        }
    }
}

/// The measured outcome of one protocol run (stabilize + optional churn
/// script), as reported by `td compare`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BalanceRun {
    /// Final load vector.
    pub loads: Vec<u32>,
    /// Rounds to convergence, summed over the stabilize and repair runs.
    pub rounds: u64,
    /// Messages sent, summed likewise.
    pub messages: u64,
    /// Node steps executed, summed likewise.
    pub node_steps: u64,
    /// Tokens moved by granted transfers.
    pub moves: u64,
    /// Churn events applied after the initial stabilization.
    pub events_applied: u32,
    /// Discrepancy (max − min load) of the initial instance.
    pub initial_discrepancy: u32,
    /// Discrepancy of the final load vector.
    pub discrepancy: u32,
    /// Largest endpoint gap over the final edges (≤ 1 iff balanced).
    pub max_gap: u32,
    /// FNV-1a fingerprint of the final load vector — must agree across
    /// every executor point.
    pub fingerprint: u64,
}

/// A balancer the comparison harness can run: init, step over the message
/// plane, terminate, verify — with per-round potential accounting kept by
/// the shared engine.
pub trait BalancingProtocol: Sync {
    /// Stable protocol name (CLI flag value, report row label).
    fn name(&self) -> &'static str;

    /// The transfer rule the shared node program runs for this protocol.
    fn rule(&self) -> Rule;

    /// **Init hook**: builds the engine hosting this protocol's per-node
    /// step function on the wake-based executor.
    fn init(
        &self,
        inst: &BalanceInstance,
        seed: u64,
        exec: ExecPoint,
        mode: RepairMode,
    ) -> BalanceEngine {
        BalanceEngine::new(inst, self.rule(), seed, mode)
            .with_threads(exec.threads)
            .with_shards(exec.shards)
    }

    /// **Verification hook**: audits a quiesced engine — balanced, token
    /// conservation, potential accounting, cache exactness.
    fn verify(&self, engine: &BalanceEngine) -> Result<(), String> {
        engine.verify()
    }

    /// Runs the protocol to quiescence on `inst`, then applies `events`
    /// (each followed by incremental repair), then verifies. The default
    /// implementation is shared by all entrants; a run is a pure function
    /// of `(inst, seed, events)` — the executor point never changes it.
    fn run(
        &self,
        inst: &BalanceInstance,
        seed: u64,
        exec: ExecPoint,
        events: &[ChurnEvent],
    ) -> Result<BalanceRun, String> {
        let initial_discrepancy = inst.discrepancy();
        let mut engine = self.init(inst, seed, exec, RepairMode::Incremental);
        let mut stats = RepairStats::accumulator();
        stats.absorb(engine.stabilize());
        let mut events_applied = 0;
        for ev in events {
            let s = engine
                .apply(ev)
                .map_err(|e| format!("{}: event {ev:?}: {e}", self.name()))?;
            stats.absorb(s);
            events_applied += 1;
        }
        self.verify(&engine)
            .map_err(|e| format!("{} failed verification: {e}", self.name()))?;
        Ok(BalanceRun {
            loads: engine.loads().to_vec(),
            rounds: stats.rounds as u64,
            messages: stats.messages,
            node_steps: stats.node_steps,
            moves: engine.moves(),
            events_applied,
            initial_discrepancy,
            discrepancy: engine.discrepancy(),
            max_gap: crate::instance::max_edge_gap_of(engine.graph(), engine.loads()),
            fingerprint: engine.fingerprint(),
        })
    }
}

/// The paper's token dropping on node loads — the incumbent, implemented by
/// the existing propose/accept/commit stack unchanged.
pub struct TokenDropBalancer;

impl BalancingProtocol for TokenDropBalancer {
    fn name(&self) -> &'static str {
        Rule::TokenDrop.name()
    }
    fn rule(&self) -> Rule {
        Rule::TokenDrop
    }
}

/// Friedrich–Gairing–Sauerwald-style quasirandom rotor-router rival.
pub struct RotorRouterBalancer;

impl BalancingProtocol for RotorRouterBalancer {
    fn name(&self) -> &'static str {
        Rule::Rotor.name()
    }
    fn rule(&self) -> Rule {
        Rule::Rotor
    }
}

/// Berenbrink-style randomized matching-exchange rival (seeded, so runs
/// stay bit-reproducible).
pub struct MatchingBalancer;

impl BalancingProtocol for MatchingBalancer {
    fn name(&self) -> &'static str {
        Rule::Matching.name()
    }
    fn rule(&self) -> Rule {
        Rule::Matching
    }
}

/// Every registered balancer, incumbent first.
pub fn registry() -> [&'static dyn BalancingProtocol; 3] {
    [&TokenDropBalancer, &RotorRouterBalancer, &MatchingBalancer]
}

/// Looks a balancer up by its [`BalancingProtocol::name`].
pub fn find(name: &str) -> Option<&'static dyn BalancingProtocol> {
    registry().into_iter().find(|p| p.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_graph::gen::classic::cycle;
    use td_graph::NodeId;

    #[test]
    fn registry_names_resolve() {
        for p in registry() {
            assert_eq!(find(p.name()).map(|q| q.name()), Some(p.name()));
        }
        assert!(find("no-such-balancer").is_none());
    }

    #[test]
    fn run_is_executor_invariant_and_verified() {
        let inst = BalanceInstance::seeded(cycle(24), 31);
        let events = vec![
            ChurnEvent::TokenArrive(NodeId(3)),
            ChurnEvent::TokenArrive(NodeId(3)),
            ChurnEvent::TokenDrop(NodeId(9)),
        ];
        for p in registry() {
            let base = p
                .run(&inst, 31, ExecPoint::sequential(), &events)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(base.max_gap <= 1, "{} left an unbalanced edge", p.name());
            assert_eq!(base.events_applied, 3);
            for exec in [
                ExecPoint {
                    threads: 4,
                    shards: 1,
                },
                ExecPoint {
                    threads: 4,
                    shards: 3,
                },
            ] {
                let run = p.run(&inst, 31, exec, &events).unwrap();
                assert_eq!(run, base, "{} diverged at {exec:?}", p.name());
            }
        }
    }

    #[test]
    fn rival_protocols_disagree_on_trajectories() {
        // Same instance, same seed: the entrants are genuinely different
        // dynamics, so at least one pair differs in moves or messages.
        let inst = BalanceInstance::seeded(cycle(32), 77);
        let runs: Vec<BalanceRun> = registry()
            .iter()
            .map(|p| p.run(&inst, 77, ExecPoint::sequential(), &[]).unwrap())
            .collect();
        assert!(
            runs.windows(2)
                .any(|w| w[0].messages != w[1].messages || w[0].moves != w[1].moves),
            "all protocols produced identical trajectories"
        );
    }
}
