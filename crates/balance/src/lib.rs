//! # td-balance — competing load balancers behind one protocol trait
//!
//! The paper's headline numbers (convergence rounds, message complexity,
//! final discrepancy) only mean something against measured rivals. This
//! crate states the common problem — a graph with integer token loads is
//! **balanced** when every edge has endpoint gap ≤ 1 — and puts three
//! entrants behind one [`BalancingProtocol`] trait:
//!
//! * [`TokenDropBalancer`] — the incumbent: the repo's token-dropping
//!   dynamics (deterministic steepest-descent unit transfers over the
//!   propose/accept/commit message plane), implemented by the existing
//!   stack unchanged;
//! * [`RotorRouterBalancer`] — Friedrich–Gairing–Sauerwald-style
//!   quasirandom rotor-router: each node cycles a rotor pointer through its
//!   ports, shedding one token to the next eligible neighbor;
//! * [`MatchingBalancer`] — Berenbrink-style randomized matching exchange:
//!   seeded pseudorandom partner choice, accepted transfers average the
//!   matched pair (`⌊gap/2⌋` tokens toward the lighter endpoint).
//!
//! All three run the same shared node program ([`BalanceNode`]) on the
//! wake-based churn executor, reuse the derandomized
//! [`td_local::churn::split_role`] role schedule (so every run is seeded
//! and bit-reproducible on the sequential, parallel, and sharded
//! executors), carry exact per-transfer Σ load² potential accounting, and
//! answer to the same verifier ([`BalanceEngine::verify`]): balanced,
//! token-conserving, potential books to the token, caches exact. The
//! `td compare` report runs the registry over the generator families and
//! recorded traces and emits `td-compare/v1` JSON.

#![warn(missing_docs)]

pub mod engine;
pub mod instance;
pub mod node;
pub mod protocol;

pub use engine::BalanceEngine;
pub use instance::{
    discrepancy_of, fingerprint_of, max_edge_gap_of, potential_of, total_of, BalanceInstance,
};
pub use node::{BalanceInput, BalanceMsg, BalanceNode, Rule};
pub use protocol::{
    find, registry, BalanceRun, BalancingProtocol, ExecPoint, MatchingBalancer,
    RotorRouterBalancer, TokenDropBalancer,
};
