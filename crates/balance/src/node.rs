//! The shared node program behind every competing balancer.
//!
//! All three balancers ([`Rule::TokenDrop`], [`Rule::Rotor`],
//! [`Rule::Matching`]) are the *same* message-driven propose/accept/commit
//! dynamics on the wake-based executor — they differ only in how an active
//! node picks the neighbor to shed tokens toward, and in how many tokens an
//! accepted transfer moves. Rounds are grouped into 3-phase cycles:
//!
//! * **phase 0 (propose)** — nodes refresh cached neighbor loads from
//!   incoming `Load` messages; every *active-role* node with an eligible
//!   neighbor (cached gap ≥ 2, neighbor passive-role this cycle) proposes a
//!   transfer to the one neighbor its rule selects, carrying its true load;
//! * **phase 1 (accept)** — every passive-role node grants the best valid
//!   proposal (re-validated against its own true load: gap ≥ 2), commits
//!   its side of the transfer of `k` tokens, and replies `Accept{k}`;
//! * **phase 2 (commit)** — a granted proposer commits its side; both
//!   endpoints broadcast their new loads, waking exactly the neighborhood
//!   that must re-check eligibility.
//!
//! Roles reuse the derandomized schedule of the token-dropping stack
//! ([`split_role`]): bit `(cycle/2) mod ceil(log2 n)` of the id with
//! alternating polarity, so any two distinct ids take opposite roles in
//! some cycle of every `2·ceil(log2 n)`-cycle window. Accepted transfers
//! are acceptor-disjoint within a cycle, each strictly decreases the
//! Σ load² potential by `2k(gap − k) ≥ 2`, and loads only move from
//! strictly heavier to strictly lighter nodes — so the dynamics terminate,
//! and quiescence implies every cached load is exact and every edge has
//! gap ≤ 1.
//!
//! Everything is a pure function of `(id, seed, round)`: the rotor pointer
//! is deterministic state, and the matching rule draws from a seeded hash
//! of `(seed, cycle mod 2·bits, id)` — periodic in the round number, so
//! the executor's stamp renormalization stays sound and runs are
//! bit-reproducible on every executor.

use td_graph::Port;
use td_local::churn::split_role;
use td_local::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Status};

/// Rounds per propose/accept/commit cycle.
pub(crate) const PHASES: u32 = 3;

/// How an active node picks its transfer target, and how many tokens an
/// accepted transfer moves. This is the only point where the competing
/// balancers differ; the message plane, role schedule, and verification are
/// shared.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Rule {
    /// The paper's token dropping, lifted to node loads: steepest descent —
    /// propose to the eligible neighbor with the largest cached gap (ties
    /// toward the smaller id), move one token per accepted transfer.
    #[default]
    TokenDrop,
    /// Friedrich–Gairing–Sauerwald-style quasirandom rotor-router: each node
    /// keeps a rotor pointer into its port list and proposes to the first
    /// eligible neighbor at or after the pointer, then advances the pointer
    /// past it. Moves one token per accepted transfer.
    Rotor,
    /// Berenbrink-style randomized matching exchange, derandomized by a
    /// seeded hash: the active endpoint picks a pseudorandom eligible
    /// neighbor, and an accepted transfer averages the pair — `⌊gap/2⌋`
    /// tokens move toward the lighter endpoint.
    Matching,
}

impl Rule {
    /// Protocol name as used by the CLI and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::TokenDrop => "token-drop",
            Rule::Rotor => "rotor-router",
            Rule::Matching => "matching",
        }
    }

    /// Tokens moved by an accepted transfer across a (re-validated) gap.
    #[inline]
    fn quantum(self, gap: u32) -> u32 {
        debug_assert!(gap >= 2);
        match self {
            Rule::TokenDrop | Rule::Rotor => 1,
            Rule::Matching => gap / 2,
        }
    }
}

/// Message kinds of the balancing protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum MsgKind {
    /// Unused slot filler (never observed as a delivered message).
    #[default]
    None,
    /// "My load is now `load`" — cache refresh, wakes the receiver.
    Load,
    /// "Take `quantum(gap)` of my tokens; my load is `load`."
    Propose,
    /// "Transfer of `k` tokens granted; my load is now `load`."
    Accept,
}

/// One balancing-protocol message.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BalanceMsg {
    kind: MsgKind,
    load: u32,
    k: u32,
}

/// Host-provided per-node input: the node's converged view of the load
/// vector (its own load and its neighbors' loads), plus the rule and seed.
#[derive(Clone, Debug)]
pub struct BalanceInput {
    /// Which balancer this node runs.
    pub rule: Rule,
    /// Run seed (only the matching rule consumes it).
    pub seed: u64,
    /// My current token count.
    pub load: u32,
    /// Cached loads of my neighbors, by port.
    pub nbr_load: Vec<u32>,
    /// If set, broadcast my load on the first step (the host perturbed my
    /// state and my neighbors' caches are stale).
    pub announce: bool,
    /// Identifier bits of the role schedule (`ceil(log2 n)`).
    pub id_bits: u32,
}

/// Node state of the shared balancing protocol.
pub struct BalanceNode {
    id: u32,
    id_bits: u32,
    rule: Rule,
    seed: u64,
    nbr_ids: Vec<u32>,
    pub(crate) load: u32,
    pub(crate) nbr_load: Vec<u32>,
    pub(crate) announce: bool,
    /// Rotor pointer: the port where the next eligibility scan starts.
    rotor: usize,
    /// Port of my outstanding proposal this cycle.
    proposed: Option<Port>,
    /// I granted a transfer this cycle and must broadcast my new load.
    committed: bool,
    /// Tokens this node received via accepted transfers (for the host's
    /// conservation/throughput accounting).
    pub(crate) moves: u64,
    /// Σ load² potential drop this node accounted as acceptor: each granted
    /// transfer of `k` tokens across a true gap `g` drops the potential by
    /// exactly `2k(g − k)`.
    pub(crate) pot_drop: u64,
}

/// splitmix64-style finalizer: the seeded draw of the matching rule.
#[inline]
fn mix(seed: u64, slot: u32, id: u32) -> u64 {
    let mut z = seed ^ ((slot as u64) << 32 | id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BalanceNode {
    /// True if the neighbor on `port` is a valid transfer target this cycle:
    /// cached gap ≥ 2 and the neighbor holds the passive role.
    #[inline]
    fn eligible(&self, port: usize, cycle: u32) -> bool {
        self.load >= self.nbr_load[port] + 2 && !split_role(self.nbr_ids[port], cycle, self.id_bits)
    }

    /// True if any incident edge has cached gap ≥ 2 in my favor — I still
    /// have shedding to attempt in some future cycle.
    fn any_heavy(&self) -> bool {
        (0..self.nbr_load.len()).any(|p| self.load >= self.nbr_load[p] + 2)
    }

    /// The rule-specific target choice among eligible ports, or `None`.
    fn pick_target(&mut self, cycle: u32) -> Option<Port> {
        let deg = self.nbr_load.len();
        match self.rule {
            Rule::TokenDrop => {
                // Steepest descent: largest cached gap, ties toward the
                // smaller neighbor id.
                let mut best: Option<(u32, u32, usize)> = None;
                for p in 0..deg {
                    if !self.eligible(p, cycle) {
                        continue;
                    }
                    let gap = self.load - self.nbr_load[p];
                    let nbr = self.nbr_ids[p];
                    if best.is_none_or(|(bg, bn, _)| gap > bg || (gap == bg && nbr < bn)) {
                        best = Some((gap, nbr, p));
                    }
                }
                best.map(|(_, _, p)| Port::from(p))
            }
            Rule::Rotor => {
                // First eligible port at or after the rotor pointer; the
                // pointer then moves just past the chosen port, so repeated
                // shedding round-robins the neighborhood.
                for off in 0..deg {
                    let p = (self.rotor + off) % deg;
                    if self.eligible(p, cycle) {
                        self.rotor = (p + 1) % deg;
                        return Some(Port::from(p));
                    }
                }
                None
            }
            Rule::Matching => {
                // Seeded pseudorandom pick among the eligible ports. The
                // draw depends on the cycle only through `cycle mod 2·bits`
                // (the role-schedule period), keeping node behavior periodic
                // in the round number for stamp renormalization.
                let elig: Vec<usize> = (0..deg).filter(|&p| self.eligible(p, cycle)).collect();
                if elig.is_empty() {
                    return None;
                }
                let slot = cycle % (2 * self.id_bits.max(1));
                let h = mix(self.seed, slot, self.id);
                Some(Port::from(elig[(h % elig.len() as u64) as usize]))
            }
        }
    }

    fn refresh_caches(&mut self, inbox: &Inbox<'_, BalanceMsg>) {
        for (p, m) in inbox.iter() {
            // Proposals and accepts double as load carriers: the sender
            // overwrote its broadcast slot on this port, so take the load
            // from any of them.
            if m.kind != MsgKind::None {
                self.nbr_load[p.idx()] = m.load;
            }
        }
    }

    #[inline]
    fn status(&self) -> Status {
        if self.proposed.is_some() || self.committed || self.any_heavy() {
            Status::Continue
        } else {
            Status::Halt
        }
    }
}

impl Protocol for BalanceNode {
    type Input = BalanceInput;
    type Message = BalanceMsg;
    type Output = (u32, u64, u64);

    fn init(node: NodeInit<'_, BalanceInput>) -> Self {
        debug_assert_eq!(node.input.nbr_load.len(), node.degree());
        BalanceNode {
            id: node.id.0,
            id_bits: node.input.id_bits,
            rule: node.input.rule,
            seed: node.input.seed,
            nbr_ids: node.neighbor_ids.to_vec(),
            load: node.input.load,
            nbr_load: node.input.nbr_load.clone(),
            announce: node.input.announce,
            rotor: 0,
            proposed: None,
            committed: false,
            moves: 0,
            pot_drop: 0,
        }
    }

    fn round(
        &mut self,
        ctx: &RoundCtx,
        inbox: &Inbox<'_, BalanceMsg>,
        outbox: &mut Outbox<'_, '_, BalanceMsg>,
    ) -> Status {
        let phase = ctx.round % PHASES;
        let cycle = ctx.round / PHASES;
        // Housekeeping that is phase-independent: repairs may start at any
        // phase (the round counter persists across events), so cache
        // refreshes and host-requested announcements must not wait for the
        // next cycle boundary.
        self.refresh_caches(inbox);
        if self.announce {
            self.announce = false;
            outbox.broadcast(BalanceMsg {
                kind: MsgKind::Load,
                load: self.load,
                k: 0,
            });
        }
        match phase {
            0 => {
                self.proposed = None;
                if split_role(self.id, cycle, self.id_bits) {
                    if let Some(p) = self.pick_target(cycle) {
                        outbox.send(
                            p,
                            BalanceMsg {
                                kind: MsgKind::Propose,
                                load: self.load,
                                k: 0,
                            },
                        );
                        self.proposed = Some(p);
                    }
                }
                self.status()
            }
            1 => {
                // Passive side: grant the best valid proposal, re-validated
                // against my own true load (the proposer's true load minus
                // mine must still be ≥ 2). At most one grant per cycle, so
                // grants are acceptor-disjoint and the re-validated gap is
                // exact on both sides.
                let mut best: Option<(u32, u32, Port)> = None;
                for (p, m) in inbox.iter() {
                    if m.kind != MsgKind::Propose || m.load < self.load + 2 {
                        continue;
                    }
                    let gap = m.load - self.load;
                    let proposer = self.nbr_ids[p.idx()];
                    if best.is_none_or(|(bg, bp, _)| gap > bg || (gap == bg && proposer < bp)) {
                        best = Some((gap, proposer, p));
                    }
                }
                if let Some((gap, _, p)) = best {
                    let k = self.rule.quantum(gap);
                    debug_assert!(k >= 1 && k < gap);
                    // Commit my side; the proposer decrements itself on
                    // receiving the accept.
                    self.pot_drop += 2 * k as u64 * (gap - k) as u64;
                    self.moves += k as u64;
                    let proposer_after = self.load + gap - k;
                    self.load += k;
                    self.nbr_load[p.idx()] = proposer_after;
                    outbox.send(
                        p,
                        BalanceMsg {
                            kind: MsgKind::Accept,
                            load: self.load,
                            k,
                        },
                    );
                    self.committed = true;
                }
                self.status()
            }
            _ => {
                if let Some(p) = self.proposed.take() {
                    if let Some(m) = inbox.get(p) {
                        if m.kind == MsgKind::Accept {
                            // Proposer side of the transfer: shed k tokens.
                            self.load -= m.k;
                            self.nbr_load[p.idx()] = m.load;
                            outbox.broadcast(BalanceMsg {
                                kind: MsgKind::Load,
                                load: self.load,
                                k: 0,
                            });
                        }
                    }
                }
                if self.committed {
                    self.committed = false;
                    outbox.broadcast(BalanceMsg {
                        kind: MsgKind::Load,
                        load: self.load,
                        k: 0,
                    });
                }
                self.status()
            }
        }
    }

    /// Final `(load, moves, pot_drop)` snapshot.
    fn finish(self) -> (u32, u64, u64) {
        (self.load, self.moves, self.pot_drop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_moves_at_least_one_and_strictly_reduces() {
        for rule in [Rule::TokenDrop, Rule::Rotor, Rule::Matching] {
            for gap in 2..40 {
                let k = rule.quantum(gap);
                assert!(k >= 1, "{}: k={k} gap={gap}", rule.name());
                assert!(k < gap, "{}: k={k} gap={gap}", rule.name());
                // Potential drop 2k(gap-k) ≥ 2.
                assert!(2 * k * (gap - k) >= 2);
            }
        }
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        let a = mix(7, 3, 11);
        assert_eq!(a, mix(7, 3, 11));
        assert_ne!(a, mix(7, 3, 12));
        assert_ne!(a, mix(7, 4, 11));
        assert_ne!(a, mix(8, 3, 11));
    }

    #[test]
    fn rule_names_are_stable() {
        assert_eq!(Rule::TokenDrop.name(), "token-drop");
        assert_eq!(Rule::Rotor.name(), "rotor-router");
        assert_eq!(Rule::Matching.name(), "matching");
    }
}
