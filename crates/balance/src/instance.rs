//! The abstract load-balancing instance the competing balancers share.
//!
//! An instance is a connected-or-not undirected graph plus an integer token
//! count per node. A load vector is **balanced** when every edge has
//! endpoint gap ≤ 1 — the discrete smoothness the paper's stable
//! orientations provide for edge loads, stated here directly on node loads
//! so token dropping, rotor routing, and matching exchange all solve the
//! same problem and their reports are comparable.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use td_graph::CsrGraph;

/// A load-balancing problem instance: a graph plus per-node token counts.
#[derive(Clone, Debug)]
pub struct BalanceInstance {
    /// The communication graph.
    pub graph: CsrGraph,
    /// Tokens per node.
    pub load: Vec<u32>,
}

impl BalanceInstance {
    /// Builds an instance; `load` must have one entry per node.
    pub fn new(graph: CsrGraph, load: Vec<u32>) -> Self {
        assert_eq!(load.len(), graph.num_nodes(), "one load entry per node");
        BalanceInstance { graph, load }
    }

    /// Seeds a skewed load vector on `graph`: `3n` tokens placed by a
    /// min-of-two-choices draw (biasing low ids), plus a hotspot of
    /// `clamp(n/8, 4, 48)` extra tokens on one pseudorandom node. The skew
    /// guarantees a nontrivial initial discrepancy at every size without
    /// making convergence quadratic in `n`.
    pub fn seeded(graph: CsrGraph, seed: u64) -> Self {
        let n = graph.num_nodes();
        let mut load = vec![0u32; n];
        if n > 0 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA1A_CE0A);
            for _ in 0..3 * n {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                load[a.min(b)] += 1;
            }
            let hot = rng.gen_range(0..n);
            load[hot] += (n as u32 / 8).clamp(4, 48);
        }
        BalanceInstance { graph, load }
    }

    /// Total tokens in the instance.
    pub fn total(&self) -> u64 {
        total_of(&self.load)
    }

    /// Σ load² potential of the instance.
    pub fn potential(&self) -> u64 {
        potential_of(&self.load)
    }

    /// Max load minus min load.
    pub fn discrepancy(&self) -> u32 {
        discrepancy_of(&self.load)
    }

    /// Largest |load(u) − load(v)| over the edges; the instance is balanced
    /// iff this is ≤ 1.
    pub fn max_edge_gap(&self) -> u32 {
        max_edge_gap_of(&self.graph, &self.load)
    }
}

/// Total tokens of a load vector.
pub fn total_of(load: &[u32]) -> u64 {
    load.iter().map(|&l| l as u64).sum()
}

/// Σ load² potential of a load vector.
pub fn potential_of(load: &[u32]) -> u64 {
    load.iter().map(|&l| l as u64 * l as u64).sum()
}

/// Global discrepancy (max − min) of a load vector; 0 when empty.
pub fn discrepancy_of(load: &[u32]) -> u32 {
    match (load.iter().max(), load.iter().min()) {
        (Some(&hi), Some(&lo)) => hi - lo,
        _ => 0,
    }
}

/// Largest endpoint gap over the edges of `graph` under `load`.
pub fn max_edge_gap_of(graph: &CsrGraph, load: &[u32]) -> u32 {
    let mut worst = 0;
    for e in 0..graph.num_edges() {
        let (u, v) = graph.endpoints(td_graph::EdgeId::from(e));
        let gap = load[u.idx()].abs_diff(load[v.idx()]);
        worst = worst.max(gap);
    }
    worst
}

/// FNV-1a fingerprint of a load vector — the cross-executor bit-identity
/// check of the compare report and the CI smoke step.
pub fn fingerprint_of(load: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in load {
        h ^= l as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_graph::gen::classic::cycle;

    #[test]
    fn seeded_is_deterministic_and_skewed() {
        let a = BalanceInstance::seeded(cycle(32), 7);
        let b = BalanceInstance::seeded(cycle(32), 7);
        assert_eq!(a.load, b.load);
        let c = BalanceInstance::seeded(cycle(32), 8);
        assert_ne!(a.load, c.load);
        assert!(a.discrepancy() >= 2, "seeded instance must need balancing");
        assert_eq!(a.total(), 3 * 32 + 4);
    }

    #[test]
    fn measures_agree_on_flat_vectors() {
        let inst = BalanceInstance::new(cycle(5), vec![2; 5]);
        assert_eq!(inst.discrepancy(), 0);
        assert_eq!(inst.max_edge_gap(), 0);
        assert_eq!(inst.potential(), 5 * 4);
        assert_eq!(inst.total(), 10);
    }

    #[test]
    fn fingerprint_separates_vectors() {
        assert_ne!(fingerprint_of(&[1, 2, 3]), fingerprint_of(&[3, 2, 1]));
        assert_eq!(fingerprint_of(&[1, 2, 3]), fingerprint_of(&[1, 2, 3]));
    }

    #[test]
    fn empty_graph_instance_is_degenerate_but_valid() {
        let inst =
            BalanceInstance::seeded(td_graph::GraphBuilder::new(0).build().expect("empty"), 1);
        assert_eq!(inst.total(), 0);
        assert_eq!(inst.discrepancy(), 0);
    }
}
