//! The host engine: runs any [`Rule`] on the wake-based executor, applies
//! churn events, and audits the run with conservation + potential-ledger
//! accounting.
//!
//! The engine mirrors the orientation churn engine: an immutable-topology
//! [`ChurnSim`] hosts the node programs, token events perturb node state in
//! place and wake the neighborhood, and topology events rebuild the sim
//! carrying the load vector (and the retired work counters) over. The
//! per-round potential accounting required of every balancer lives here:
//! each granted transfer logs its exact Σ load² drop at the acceptor, the
//! host logs the potential delta of every token arrival/drop in a ledger,
//! and [`BalanceEngine::verify`] checks the books balance to the token —
//! `potential(loads) == ledger − Σ accounted drops` — alongside token
//! conservation, the gap ≤ 1 termination predicate, and cache exactness.

use crate::instance::{fingerprint_of, max_edge_gap_of, potential_of, total_of, BalanceInstance};
use crate::node::{BalanceInput, BalanceNode, Rule, PHASES};
use td_graph::{CsrGraph, GraphBuilder, NodeId};
use td_local::churn::{id_bits, ChurnError, ChurnEvent, ChurnSim, RepairMode, RepairStats};

/// A live balancing instance under churn: applies [`ChurnEvent`]s and
/// re-balances incrementally (or via the full-recompute fallback).
pub struct BalanceEngine {
    sim: ChurnSim<BalanceNode>,
    loads: Vec<u32>,
    rule: Rule,
    seed: u64,
    mode: RepairMode,
    threads: usize,
    shards: usize,
    max_rounds: u32,
    stamp_horizon: Option<u32>,
    /// Tokens currently in the system (maintained by the host).
    total: u64,
    /// The potential ledger: Σ load² at build time, adjusted by the exact
    /// potential delta of every host token event. The accounting invariant
    /// is `potential(loads) == pot_ledger − accounted_drop()` at all times.
    pot_ledger: u64,
    /// Counters of sims retired by topology rebuilds.
    retired_moves: u64,
    retired_drops: u64,
    perf_retired: td_local::ExecPerf,
}

impl BalanceEngine {
    /// Builds an engine over an instance (not necessarily balanced). Call
    /// [`BalanceEngine::stabilize`] to reach the first balanced state
    /// before applying events.
    pub fn new(inst: &BalanceInstance, rule: Rule, seed: u64, mode: RepairMode) -> Self {
        let sim = Self::build_sim(&inst.graph, &inst.load, rule, seed);
        BalanceEngine {
            sim,
            loads: inst.load.clone(),
            rule,
            seed,
            mode,
            threads: 1,
            shards: 1,
            max_rounds: 10_000_000,
            stamp_horizon: None,
            total: inst.total(),
            pot_ledger: inst.potential(),
            retired_moves: 0,
            retired_drops: 0,
            perf_retired: td_local::ExecPerf::default(),
        }
    }

    /// Sets the worker thread count (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.threads = threads;
        self
    }

    /// Sets the shard count: `shards > 1` runs on the sharded message plane;
    /// runs are bit-identical either way.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1);
        self.shards = shards;
        self
    }

    /// Caps the rounds of a single repair run.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Lowers the stamp-renormalization horizon (test hook; carried across
    /// topology rebuilds).
    pub fn with_stamp_horizon(mut self, horizon: u32) -> Self {
        self.stamp_horizon = Some(horizon);
        self.sim.set_stamp_horizon(horizon);
        self
    }

    /// Builds the sim with the protocol's round period declared: phase
    /// selection is `round % 3` and the role/matching schedule is periodic
    /// in `2 · bits` cycles, so the joint period is `3 · 2 · bits` rounds.
    fn build_sim(graph: &CsrGraph, loads: &[u32], rule: Rule, seed: u64) -> ChurnSim<BalanceNode> {
        let bits = id_bits(graph.num_nodes());
        let inputs: Vec<BalanceInput> = graph
            .nodes()
            .map(|v| BalanceInput {
                rule,
                seed,
                load: loads[v.idx()],
                nbr_load: graph
                    .neighbors(v)
                    .iter()
                    .map(|&u| loads[u as usize])
                    .collect(),
                announce: false,
                id_bits: bits,
            })
            .collect();
        let mut sim = ChurnSim::new(graph.clone(), &inputs);
        sim.set_round_period(PHASES * 2 * bits);
        sim
    }

    /// Which rule this engine runs.
    pub fn rule(&self) -> Rule {
        self.rule
    }

    /// The current instance graph.
    pub fn graph(&self) -> &CsrGraph {
        self.sim.graph()
    }

    /// The maintained load vector.
    pub fn loads(&self) -> &[u32] {
        &self.loads
    }

    /// Total tokens moved by granted transfers over the engine's lifetime.
    pub fn moves(&self) -> u64 {
        self.retired_moves + self.sim.states().iter().map(|s| s.moves).sum::<u64>()
    }

    /// Σ load² potential drop the protocol has accounted for, lifetime.
    pub fn accounted_drop(&self) -> u64 {
        self.retired_drops + self.sim.states().iter().map(|s| s.pot_drop).sum::<u64>()
    }

    /// Σ load² of the maintained load vector.
    pub fn potential(&self) -> u64 {
        potential_of(&self.loads)
    }

    /// Max − min of the maintained load vector.
    pub fn discrepancy(&self) -> u32 {
        crate::instance::discrepancy_of(&self.loads)
    }

    /// FNV-1a fingerprint of the maintained load vector.
    pub fn fingerprint(&self) -> u64 {
        fingerprint_of(&self.loads)
    }

    /// Lifetime executor work counters, including retired sims.
    pub fn exec_perf(&self) -> td_local::ExecPerf {
        let mut p = self.perf_retired;
        p.absorb(self.sim.exec_perf());
        p
    }

    /// Wakes the heavier endpoints of all gap ≥ 2 edges (or everyone, under
    /// [`RepairMode::FullRecompute`]) and runs to quiescence — used both to
    /// reach the first balanced state and as the repair step after events.
    pub fn stabilize(&mut self) -> RepairStats {
        let heavy: Vec<NodeId> = {
            let g = self.sim.graph();
            let mut dirty = Vec::new();
            for (_, u, v) in g.edge_list() {
                let (lu, lv) = (self.loads[u.idx()], self.loads[v.idx()]);
                if lu.abs_diff(lv) >= 2 {
                    dirty.push(if lu > lv { u } else { v });
                }
            }
            dirty
        };
        self.wake_dirty(&heavy);
        self.run_repair()
    }

    /// Applies one event and re-balances. Returns the repair cost.
    ///
    /// Token events (`TokenArrive`, `TokenDrop`) perturb one node in place.
    /// `EdgeInsert`/`EdgeDelete` rebuild the network carrying the loads
    /// over. `EdgeFlip` has no intrinsic meaning for node loads; it is
    /// honored as a *liveness poke* of an existing edge (wake both
    /// endpoints, change nothing), so orientation-flavored traces replay on
    /// every balancer. Assignment events are
    /// [`ChurnError::Unsupported`].
    pub fn apply(&mut self, event: &ChurnEvent) -> Result<RepairStats, ChurnError> {
        match *event {
            ChurnEvent::TokenArrive(v) => self.apply_token(v, true),
            ChurnEvent::TokenDrop(v) => self.apply_token(v, false),
            ChurnEvent::EdgeFlip { u, v } => self.apply_poke(u, v),
            ChurnEvent::EdgeInsert { u, v } => self.apply_insert(u, v),
            ChurnEvent::EdgeDelete { u, v } => self.apply_delete(u, v),
            _ => Err(ChurnError::Unsupported("balance")),
        }
    }

    fn apply_token(&mut self, v: NodeId, arrive: bool) -> Result<RepairStats, ChurnError> {
        if v.idx() >= self.loads.len() {
            return Err(ChurnError::NoSuchEntity(format!("node {v}")));
        }
        let l = self.loads[v.idx()];
        if arrive {
            // (l+1)² − l² = 2l + 1.
            self.pot_ledger += 2 * l as u64 + 1;
            self.total += 1;
            self.loads[v.idx()] = l + 1;
        } else {
            if l == 0 {
                return Err(ChurnError::InvalidEvent(format!(
                    "token drop at empty node {v}"
                )));
            }
            // l² − (l−1)² = 2l − 1.
            self.pot_ledger -= 2 * l as u64 - 1;
            self.total -= 1;
            self.loads[v.idx()] = l - 1;
        }
        let s = self.sim.state_mut(v);
        s.load = self.loads[v.idx()];
        s.announce = true;
        self.wake_dirty(&[v]);
        Ok(self.run_repair())
    }

    fn apply_poke(&mut self, u: NodeId, v: NodeId) -> Result<RepairStats, ChurnError> {
        if self.sim.graph().edge_between(u, v).is_none() {
            return Err(ChurnError::NoSuchEntity(format!("edge {{{u}, {v}}}")));
        }
        self.wake_dirty(&[u, v]);
        Ok(self.run_repair())
    }

    fn apply_insert(&mut self, u: NodeId, v: NodeId) -> Result<RepairStats, ChurnError> {
        let g = self.sim.graph();
        if u == v || u.idx() >= g.num_nodes() || v.idx() >= g.num_nodes() {
            return Err(ChurnError::NoSuchEntity(format!("endpoints {u}, {v}")));
        }
        if g.edge_between(u, v).is_some() {
            return Err(ChurnError::InvalidEvent(format!(
                "edge {{{u}, {v}}} already exists"
            )));
        }
        let n = g.num_nodes();
        let mut edges: Vec<(u32, u32)> = g.edge_list().map(|(_, a, b)| (a.0, b.0)).collect();
        edges.push((u.0, v.0));
        // The new edge may join two previously-separated load levels.
        self.rebuild(n, &edges, &[u, v]);
        Ok(self.run_repair())
    }

    fn apply_delete(&mut self, u: NodeId, v: NodeId) -> Result<RepairStats, ChurnError> {
        let g = self.sim.graph();
        let Some(del) = g.edge_between(u, v) else {
            return Err(ChurnError::NoSuchEntity(format!("edge {{{u}, {v}}}")));
        };
        let n = g.num_nodes();
        let edges: Vec<(u32, u32)> = g
            .edge_list()
            .filter(|&(e, _, _)| e != del)
            .map(|(_, a, b)| (a.0, b.0))
            .collect();
        // Removing an edge removes a gap constraint and never creates one
        // elsewhere (loads are untouched), so nothing can become unbalanced
        // — but wake the endpoints anyway so the incremental and
        // full-recompute twins stay round-aligned.
        self.rebuild(n, &edges, &[u, v]);
        Ok(self.run_repair())
    }

    /// Rebuilds the network after a shape change, carrying the load vector
    /// and the retired work counters over, then waking `dirty`.
    fn rebuild(&mut self, n: usize, edges: &[(u32, u32)], dirty: &[NodeId]) {
        let mut b = GraphBuilder::with_capacity(n, edges.len());
        for &(a, c) in edges {
            b.add_edge(NodeId(a), NodeId(c)).expect("simple edge list");
        }
        let graph = b.build().expect("valid rebuilt graph");
        self.retired_moves += self.sim.states().iter().map(|s| s.moves).sum::<u64>();
        self.retired_drops += self.sim.states().iter().map(|s| s.pot_drop).sum::<u64>();
        self.perf_retired.absorb(self.sim.exec_perf());
        self.sim = Self::build_sim(&graph, &self.loads, self.rule, self.seed);
        if let Some(h) = self.stamp_horizon {
            self.sim.set_stamp_horizon(h);
        }
        self.wake_dirty(dirty);
    }

    fn wake_dirty(&mut self, dirty: &[NodeId]) {
        // An empty dirty set wakes nobody in either mode, so the round
        // counters of an incremental engine and its full-recompute twin
        // stay aligned (the differential tests rely on this).
        if dirty.is_empty() {
            return;
        }
        match self.mode {
            RepairMode::Incremental => {
                for &v in dirty {
                    self.sim.wake(v);
                }
            }
            RepairMode::FullRecompute => self.sim.wake_all(),
        }
    }

    fn run_repair(&mut self) -> RepairStats {
        let stats = if self.shards > 1 {
            self.sim
                .run_sharded(self.shards, self.threads, self.max_rounds)
        } else {
            self.sim.run(self.threads, self.max_rounds)
        };
        assert!(stats.completed, "balancing hit the round cap");
        for (v, s) in self.sim.states().iter().enumerate() {
            self.loads[v] = s.load;
        }
        stats
    }

    /// The balancer's verifier: checks the four invariants quiescence must
    /// imply.
    ///
    /// 1. **balanced** — every edge has endpoint gap ≤ 1;
    /// 2. **conservation** — Σ loads equals the host's maintained total;
    /// 3. **potential accounting** — `potential(loads)` equals the ledger
    ///    minus the protocol's accounted drops, to the token;
    /// 4. **cache exactness** — every node's own and cached neighbor loads
    ///    match the true load vector.
    pub fn verify(&self) -> Result<(), String> {
        let g = self.sim.graph();
        let gap = max_edge_gap_of(g, &self.loads);
        if gap > 1 {
            return Err(format!("unbalanced: max edge gap {gap} > 1"));
        }
        let total = total_of(&self.loads);
        if total != self.total {
            return Err(format!(
                "conservation violated: Σ loads = {total}, expected {}",
                self.total
            ));
        }
        let pot = potential_of(&self.loads) as i128;
        let expect = self.pot_ledger as i128 - self.accounted_drop() as i128;
        if pot != expect {
            return Err(format!(
                "potential accounting violated: Σ load² = {pot}, ledger − drops = {expect}"
            ));
        }
        for (v, s) in self.sim.states().iter().enumerate() {
            if s.load != self.loads[v] {
                return Err(format!(
                    "node {v} state load {} != host load {}",
                    s.load, self.loads[v]
                ));
            }
            for (p, &u) in g.neighbors(NodeId::from(v)).iter().enumerate() {
                if s.nbr_load[p] != self.loads[u as usize] {
                    return Err(format!(
                        "node {v} cached load {} for neighbor {u}, true load {}",
                        s.nbr_load[p], self.loads[u as usize]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use td_graph::gen::classic::{cycle, path, star};

    const RULES: [Rule; 3] = [Rule::TokenDrop, Rule::Rotor, Rule::Matching];

    fn stabilized(graph: CsrGraph, seed: u64, rule: Rule) -> BalanceEngine {
        let inst = BalanceInstance::seeded(graph, seed);
        let mut eng = BalanceEngine::new(&inst, rule, seed, RepairMode::Incremental);
        eng.stabilize();
        eng
    }

    #[test]
    fn every_rule_balances_a_star_hotspot() {
        for rule in RULES {
            let mut load = vec![0u32; 9];
            load[0] = 40;
            let inst = BalanceInstance::new(star(8), load);
            let mut eng = BalanceEngine::new(&inst, rule, 5, RepairMode::Incremental);
            let stats = eng.stabilize();
            assert!(stats.completed);
            eng.verify()
                .unwrap_or_else(|e| panic!("{}: {e}", rule.name()));
            assert_eq!(eng.loads().iter().map(|&l| l as u64).sum::<u64>(), 40);
            // Edge gap ≤ 1 bounds the global discrepancy by the diameter
            // (2 on a star).
            assert!(eng.discrepancy() <= 2, "{}: star must flatten", rule.name());
        }
    }

    #[test]
    fn every_rule_stabilizes_seeded_instances() {
        for rule in RULES {
            for seed in [1, 2, 3] {
                let eng = stabilized(cycle(24), seed, rule);
                eng.verify()
                    .unwrap_or_else(|e| panic!("{}: {e}", rule.name()));
            }
        }
    }

    #[test]
    fn token_events_repair_and_keep_the_books() {
        for rule in RULES {
            let mut eng = stabilized(path(16), 11, rule);
            let mut rng = SmallRng::seed_from_u64(99);
            for i in 0..30 {
                let v = NodeId::from(rng.gen_range(0..16usize));
                let ev = if i % 3 == 0 && eng.loads()[v.idx()] > 0 {
                    ChurnEvent::TokenDrop(v)
                } else {
                    ChurnEvent::TokenArrive(v)
                };
                eng.apply(&ev).unwrap();
            }
            eng.verify()
                .unwrap_or_else(|e| panic!("{}: {e}", rule.name()));
        }
    }

    #[test]
    fn topology_events_rebuild_and_keep_the_books() {
        for rule in RULES {
            let mut eng = stabilized(path(12), 3, rule);
            let before = eng.loads().iter().map(|&l| l as u64).sum::<u64>();
            eng.apply(&ChurnEvent::EdgeInsert {
                u: NodeId(0),
                v: NodeId(11),
            })
            .unwrap();
            eng.apply(&ChurnEvent::EdgeDelete {
                u: NodeId(5),
                v: NodeId(6),
            })
            .unwrap();
            eng.apply(&ChurnEvent::EdgeFlip {
                u: NodeId(0),
                v: NodeId(1),
            })
            .unwrap();
            eng.verify()
                .unwrap_or_else(|e| panic!("{}: {e}", rule.name()));
            assert_eq!(eng.loads().iter().map(|&l| l as u64).sum::<u64>(), before);
            assert!(eng.moves() > 0 || eng.discrepancy() <= 1);
        }
    }

    #[test]
    fn incremental_matches_full_recompute_bit_for_bit() {
        for rule in RULES {
            let inst = BalanceInstance::seeded(cycle(20), 17);
            let mut inc = BalanceEngine::new(&inst, rule, 17, RepairMode::Incremental);
            let mut full = BalanceEngine::new(&inst, rule, 17, RepairMode::FullRecompute);
            let si = inc.stabilize();
            let sf = full.stabilize();
            assert_eq!(si.rounds, sf.rounds, "{}", rule.name());
            assert_eq!(inc.loads(), full.loads(), "{}", rule.name());
            let mut rng = SmallRng::seed_from_u64(4242);
            for _ in 0..12 {
                let v = NodeId::from(rng.gen_range(0..20usize));
                let ri = inc.apply(&ChurnEvent::TokenArrive(v)).unwrap();
                let rf = full.apply(&ChurnEvent::TokenArrive(v)).unwrap();
                assert_eq!(ri.rounds, rf.rounds, "{}", rule.name());
                assert_eq!(inc.loads(), full.loads(), "{}", rule.name());
                assert!(ri.node_steps <= rf.node_steps);
            }
            inc.verify().unwrap();
            full.verify().unwrap();
        }
    }

    #[test]
    fn executor_grid_is_bit_identical() {
        for rule in RULES {
            let inst = BalanceInstance::seeded(cycle(28), 23);
            let mut grid: Vec<BalanceEngine> = [(1, 1), (4, 1), (4, 3)]
                .iter()
                .map(|&(t, k)| {
                    BalanceEngine::new(&inst, rule, 23, RepairMode::Incremental)
                        .with_threads(t)
                        .with_shards(k)
                })
                .collect();
            let base = grid[0].stabilize();
            let fp = grid[0].fingerprint();
            for eng in &mut grid[1..] {
                let s = eng.stabilize();
                assert_eq!(s.rounds, base.rounds, "{}", rule.name());
                assert_eq!(s.messages, base.messages, "{}", rule.name());
                assert_eq!(eng.fingerprint(), fp, "{}", rule.name());
                eng.verify().unwrap();
            }
        }
    }

    #[test]
    fn rejects_foreign_and_invalid_events() {
        let mut eng = stabilized(path(8), 1, Rule::TokenDrop);
        assert!(matches!(
            eng.apply(&ChurnEvent::CustomerJoin { servers: vec![] }),
            Err(ChurnError::Unsupported("balance"))
        ));
        assert!(matches!(
            eng.apply(&ChurnEvent::TokenArrive(NodeId(99))),
            Err(ChurnError::NoSuchEntity(_))
        ));
        assert!(matches!(
            eng.apply(&ChurnEvent::EdgeInsert {
                u: NodeId(0),
                v: NodeId(1)
            }),
            Err(ChurnError::InvalidEvent(_))
        ));
        // Drain node 7, then one more drop must be rejected.
        while eng.loads()[7] > 0 {
            eng.apply(&ChurnEvent::TokenDrop(NodeId(7))).unwrap();
        }
        assert!(matches!(
            eng.apply(&ChurnEvent::TokenDrop(NodeId(7))),
            Err(ChurnError::InvalidEvent(_))
        ));
        eng.verify().unwrap();
    }
}
