//! Criterion benches for experiments E4/E12: stable orientation — the phase
//! algorithm against the arbitrary-start baseline and the sequential
//! flipper, plus the proposal-policy ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::workloads::regular_graph;
use td_orient::baseline;
use td_orient::orientation::Orientation;
use td_orient::phases::{solve_stable_orientation, PhaseConfig, ProposalTie};
use td_orient::sequential;

fn bench_phase_algorithm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_stable_orientation");
    group.sample_size(10);
    for delta in [4usize, 8, 16] {
        let g = regular_graph(delta, 12, 42);
        group.bench_with_input(BenchmarkId::new("ours_phases", delta), &g, |b, g| {
            b.iter(|| solve_stable_orientation(g, PhaseConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("baseline_flips", delta), &g, |b, g| {
            b.iter(|| baseline::run(g, Orientation::toward_larger(g), 7, 10_000_000))
        });
        group.bench_with_input(BenchmarkId::new("sequential_greedy", delta), &g, |b, g| {
            b.iter(|| sequential::run(g, Orientation::toward_larger(g)))
        });
    }
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_proposal_ablation");
    group.sample_size(10);
    let g = regular_graph(8, 12, 42);
    group.bench_function("careful_min_load", |b| {
        b.iter(|| solve_stable_orientation(&g, PhaseConfig::default()))
    });
    group.bench_function("load_blind", |b| {
        b.iter(|| {
            solve_stable_orientation(
                &g,
                PhaseConfig {
                    proposal_tie: ProposalTie::IgnoreLoads,
                },
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_phase_algorithm, bench_ablation);
criterion_main!(benches);
