//! Criterion bench over the Scenario registry: every registered scenario at
//! a reduced size, sequential executor, so a single run sanity-checks the
//! wall-clock cost of the whole workload surface after any engine change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::scenario::{registry, ScenarioKind};
use td_local::Simulator;

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenarios");
    group.sample_size(10);
    let sim = Simulator::sequential();
    for sc in registry() {
        // Reduced sizes keep one bench pass fast even for the Θ(Δ⁴)
        // distributed orientation budget.
        let size = match sc.kind() {
            ScenarioKind::Game => sc.default_size().min(8),
            ScenarioKind::Orientation => {
                if sc.name() == "cascade-orientation" {
                    48
                } else {
                    3
                }
            }
            ScenarioKind::Assignment => 8,
        };
        group.bench_with_input(BenchmarkId::from_parameter(sc.name()), &size, |b, &size| {
            b.iter(|| sc.run(size, 42, &sim))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_registry);
criterion_main!(benches);
