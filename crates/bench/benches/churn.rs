//! Criterion bench: incremental repair vs full recompute as the churn rate
//! sweeps. One measurement = stabilizing an instance and then absorbing a
//! whole event trace; the `repair/` and `recompute/` groups differ only in
//! whether each event restarts the protocol from the dirty set or from
//! every node, so their gap is pure wasted wake-ups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::churn::churn_registry;
use td_local::churn::RepairMode;

fn bench_churn(c: &mut Criterion) {
    for sc in churn_registry() {
        let size = match sc.kind() {
            td_bench::ScenarioKind::Orientation => 96,
            _ => 8,
        };
        for (label, mode) in [
            ("repair", RepairMode::Incremental),
            ("recompute", RepairMode::FullRecompute),
        ] {
            let mut group = c.benchmark_group(format!("churn-{label}/{}", sc.name()));
            group.sample_size(10);
            for events in [4u32, 16, 64] {
                group.bench_with_input(
                    BenchmarkId::from_parameter(events),
                    &events,
                    |b, &events| b.iter(|| sc.run(size, events, 42, 1, mode, false)),
                );
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
