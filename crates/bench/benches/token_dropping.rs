//! Criterion benches for experiments E1/E2: the token dropping engines
//! across the Δ sweep (wall-clock companion to the round-count tables that
//! `repro e1`/`repro e2` print).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::workloads::{layered_game, three_level_game};
use td_core::{greedy, lockstep, proposal, three_level};
use td_local::Simulator;

fn bench_lockstep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_token_dropping_lockstep");
    group.sample_size(10);
    for delta in [4usize, 8, 16] {
        let game = layered_game(delta, 4, 42);
        group.bench_with_input(BenchmarkId::from_parameter(delta), &game, |b, game| {
            b.iter(|| lockstep::run(game));
        });
    }
    group.finish();
}

fn bench_protocol_vs_lockstep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_token_dropping_protocol");
    group.sample_size(10);
    let game = layered_game(8, 4, 42);
    group.bench_function("lockstep", |b| b.iter(|| lockstep::run(&game)));
    group.bench_function("local_protocol_seq", |b| {
        b.iter(|| proposal::run_on_simulator(&game, &Simulator::sequential()))
    });
    group.bench_function("greedy_centralized", |b| b.iter(|| greedy::run(&game)));
    group.finish();
}

fn bench_three_level(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_three_level");
    group.sample_size(10);
    for delta in [8usize, 16, 32] {
        let game = three_level_game(delta, 42);
        group.bench_with_input(BenchmarkId::new("specialised", delta), &game, |b, game| {
            b.iter(|| three_level::run_lockstep(game))
        });
        group.bench_with_input(BenchmarkId::new("general", delta), &game, |b, game| {
            b.iter(|| lockstep::run(game))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lockstep,
    bench_protocol_vs_lockstep,
    bench_three_level
);
criterion_main!(benches);
