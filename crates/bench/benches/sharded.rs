//! Criterion bench for the pinned-worker sharded engine: the `parallel(T)`
//! auto-shard alias vs explicit shard grids on the two locality-sensitive
//! registry scenarios, plus a quiesced-region workload showing the
//! skipped-shard-rounds win.
//!
//! * `rotor-sweep-n1e5` — the deterministic circulant sweep at width
//!   20 000 (n = 120 000 ≥ 10⁵). The BFS-grown partition cuts level bands,
//!   so almost all proposal traffic stays shard-local.
//! * `server-farm` — the Zipf-skewed 2-bounded assignment scenario; the
//!   bipartite customer/server network is the adversarial case for
//!   locality (hot servers touch everything).
//! * `quiesced-region` — 7/8 of a long path halts in round 0 while one
//!   hot region keeps working for 240 rounds; quiesced shards retire and
//!   skip their rounds entirely. The demo assertion checks
//!   `SimOutcome::sharding` actually reports skipped shard-rounds.
//!
//! Outputs stay bit-identical across all executors (enforced separately by
//! `tests/sharded_differential.rs`); this bench only compares wall clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_bench::scenario::find;
use td_graph::gen::classic::path;
use td_local::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Simulator, Status};

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

fn bench_rotor_sweep(c: &mut Criterion) {
    let sc = find("rotor-sweep").expect("registered");
    const WIDTH: u32 = 20_000; // 6 levels -> n = 120_000
    let t = host_threads();
    let mut group = c.benchmark_group("sharded/rotor-sweep-n1e5");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| sc.run(WIDTH, 42, &Simulator::sequential()))
    });
    group.bench_function(BenchmarkId::new("parallel", t), |b| {
        b.iter(|| sc.run(WIDTH, 42, &Simulator::parallel(t)))
    });
    for shards in [t, 4 * t] {
        group.bench_function(BenchmarkId::new(format!("sharded-x{t}t"), shards), |b| {
            b.iter(|| sc.run(WIDTH, 42, &Simulator::sharded(shards, t)))
        });
    }
    group.finish();
}

fn bench_server_farm(c: &mut Criterion) {
    let sc = find("server-farm").expect("registered");
    // Deliberately moderate: the farm's bipartite hot-server topology is
    // the bad case for any partition (tiny network, huge round count), so
    // this group documents the overhead floor rather than a win.
    const SIZE: u32 = 16;
    let t = host_threads();
    let mut group = c.benchmark_group("sharded/server-farm");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| sc.run(SIZE, 42, &Simulator::sequential()))
    });
    group.bench_function(BenchmarkId::new("parallel", t), |b| {
        b.iter(|| sc.run(SIZE, 42, &Simulator::parallel(t)))
    });
    group.bench_function(BenchmarkId::new(format!("sharded-x{t}t"), 2 * t), |b| {
        b.iter(|| sc.run(SIZE, 42, &Simulator::sharded(2 * t, t)))
    });
    group.finish();
}

/// One hot region on a long path: nodes with input `true` gossip for 240
/// rounds, everyone else halts immediately. The BFS partition confines
/// the hot region to 1/8 of the shards; the others skip every remaining
/// round.
struct HotRegion {
    long: bool,
    acc: u64,
}

impl Protocol for HotRegion {
    type Input = bool;
    type Message = u64;
    type Output = u64;

    fn init(node: NodeInit<'_, bool>) -> Self {
        HotRegion {
            long: *node.input,
            acc: node.id.0 as u64,
        }
    }

    fn round(
        &mut self,
        ctx: &RoundCtx,
        inbox: &Inbox<'_, u64>,
        outbox: &mut Outbox<'_, '_, u64>,
    ) -> Status {
        if !self.long {
            return Status::Halt;
        }
        for (_, &m) in inbox.iter() {
            self.acc = self.acc.wrapping_mul(31).wrapping_add(m);
        }
        outbox.broadcast(self.acc);
        if ctx.round >= 240 {
            Status::Halt
        } else {
            Status::Continue
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

fn bench_quiesced_region(c: &mut Criterion) {
    const N: usize = 160_000;
    let g = path(N);
    // Hot region = the first eighth of the path (one contiguous BFS band).
    let inputs: Vec<bool> = (0..N).map(|v| v < N / 8).collect();
    let t = host_threads();
    let shards = 16;

    // Sanity outside the timed loop: the sharded run really skips
    // shard-rounds and agrees with the sequential run.
    let seq = Simulator::sequential().run::<HotRegion>(&g, &inputs);
    let sh = Simulator::sharded(shards, t).run::<HotRegion>(&g, &inputs);
    assert_eq!(seq.outputs, sh.outputs);
    assert_eq!(seq.rounds, sh.rounds);
    let stats = sh.sharding.expect("sharded stats");
    assert!(
        stats.shard_rounds_skipped > stats.shard_rounds_stepped,
        "quiesced region must dominate: {stats:?}"
    );

    let mut group = c.benchmark_group("sharded/quiesced-region");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| Simulator::sequential().run::<HotRegion>(&g, &inputs))
    });
    group.bench_function(BenchmarkId::new("parallel", t), |b| {
        b.iter(|| Simulator::parallel(t).run::<HotRegion>(&g, &inputs))
    });
    group.bench_function(BenchmarkId::new(format!("sharded-x{t}t"), shards), |b| {
        b.iter(|| Simulator::sharded(shards, t).run::<HotRegion>(&g, &inputs))
    });
    group.finish();
}

/// The node-granular sparse-scheduling counterpart of `quiesced-region`:
/// the hot nodes are *scattered* (every 64th node of the path keeps
/// working), so no shard ever fully quiesces and the shard-granular skip
/// is useless — only the per-shard active lists introduced with the sparse
/// scheduler avoid scanning the 63/64 cold residents each round.
fn bench_sparse_scattered(c: &mut Criterion) {
    const N: usize = 160_000;
    let g = path(N);
    let inputs: Vec<bool> = (0..N).map(|v| v % 64 == 0).collect();
    let t = host_threads();
    let shards = 16;

    // Sanity outside the timed loop: nothing quiesces at shard granularity,
    // yet the sparse scheduler skips almost every cold node-round.
    let seq = Simulator::sequential().run::<HotRegion>(&g, &inputs);
    let sh = Simulator::sharded(shards, t).run::<HotRegion>(&g, &inputs);
    assert_eq!(seq.outputs, sh.outputs);
    assert_eq!(seq.rounds, sh.rounds);
    let stats = sh.sharding.expect("sharded stats");
    assert_eq!(
        stats.shard_rounds_skipped, 0,
        "scattered hot nodes keep every shard active: {stats:?}"
    );
    assert_eq!(sh.perf.halted_scans, 0);
    assert_eq!(sh.perf.sparse_skips, seq.perf.halted_scans);
    assert!(sh.perf.sparse_skips > 0);

    let mut group = c.benchmark_group("sharded/sparse-scattered");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| Simulator::sequential().run::<HotRegion>(&g, &inputs))
    });
    group.bench_function("sharded-1x1", |b| {
        b.iter(|| Simulator::sharded(1, 1).run::<HotRegion>(&g, &inputs))
    });
    group.bench_function(BenchmarkId::new(format!("sharded-x{t}t"), shards), |b| {
        b.iter(|| Simulator::sharded(shards, t).run::<HotRegion>(&g, &inputs))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rotor_sweep,
    bench_server_farm,
    bench_quiesced_region,
    bench_sparse_scattered
);
criterion_main!(benches);
