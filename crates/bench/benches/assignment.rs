//! Criterion benches for experiments E6/E7/E8: stable assignment, the
//! 2-bounded relaxation, and the optimal semi-matching solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use td_assign::bounded::solve_2_bounded;
use td_assign::phases::solve_stable_assignment;
use td_assign::semi_matching::optimal_semi_matching;
use td_bench::workloads::assignment_instance;

fn bench_stable_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_stable_assignment");
    group.sample_size(10);
    for s_avg in [4usize, 8, 16] {
        let inst = assignment_instance(3, s_avg, 24, 42);
        group.bench_with_input(BenchmarkId::new("exact", s_avg), &inst, |b, inst| {
            b.iter(|| solve_stable_assignment(inst))
        });
        group.bench_with_input(BenchmarkId::new("bounded_k2", s_avg), &inst, |b, inst| {
            b.iter(|| solve_2_bounded(inst))
        });
    }
    group.finish();
}

fn bench_optimal_semi_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_semi_matching");
    group.sample_size(10);
    for nc in [100usize, 300] {
        let inst = assignment_instance(3, 3 * nc / 24, 24, 42);
        group.bench_with_input(BenchmarkId::new("optimal", nc), &inst, |b, inst| {
            b.iter(|| optimal_semi_matching(inst))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stable_assignment,
    bench_optimal_semi_matching
);
criterion_main!(benches);
