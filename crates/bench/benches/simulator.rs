//! Criterion benches for experiment E13: LOCAL-simulator executor
//! throughput — sequential vs multi-threaded on the real proposal protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use td_bench::workloads::layered_game;
use td_core::{lockstep, proposal};
use td_local::Simulator;

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_simulator_executors");
    group.sample_size(10);
    // Mid-size instance: large enough that per-round work dominates
    // scheduling, small enough for quick iterations.
    let game = layered_game(8, 5, 42);
    group.bench_function("sequential", |b| {
        b.iter(|| proposal::run_on_simulator(&game, &Simulator::sequential()))
    });
    group.bench_function("parallel_2", |b| {
        b.iter(|| proposal::run_on_simulator(&game, &Simulator::parallel(2)))
    });
    group.bench_function("lockstep_fast_path", |b| b.iter(|| lockstep::run(&game)));
    group.finish();
}

fn bench_large_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_large_instance");
    group.sample_size(10);
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(7)
    };
    let game = td_core::TokenGame::random(&[30_000, 30_000, 30_000], 5, 0.5, &mut rng);
    group.bench_function("lockstep_90k_nodes", |b| b.iter(|| lockstep::run(&game)));
    group.finish();
}

criterion_group!(benches, bench_executors, bench_large_round_throughput);
criterion_main!(benches);
