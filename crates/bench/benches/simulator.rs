//! Criterion benches for the LOCAL-simulator hot loop (experiment E13 and
//! the message-plane arena): executor throughput on the real proposal
//! protocol, plus message-plane-bound microbenchmarks where per-node compute
//! is negligible and the timing is dominated by arena writes and inbox
//! stamp scans.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use td_bench::workloads::layered_game;
use td_core::{lockstep, proposal};
use td_local::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Simulator, Status};

fn bench_executors(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_simulator_executors");
    group.sample_size(10);
    // Mid-size instance: large enough that per-round work dominates
    // scheduling, small enough for quick iterations.
    let game = layered_game(8, 5, 42);
    group.bench_function("sequential", |b| {
        b.iter(|| proposal::run_on_simulator(&game, &Simulator::sequential()))
    });
    group.bench_function("parallel_2", |b| {
        b.iter(|| proposal::run_on_simulator(&game, &Simulator::parallel(2)))
    });
    group.bench_function("lockstep_fast_path", |b| b.iter(|| lockstep::run(&game)));
    group.finish();
}

fn bench_large_round_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_large_instance");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(7);
    let game = td_core::TokenGame::random(&[30_000, 30_000, 30_000], 5, 0.5, &mut rng);
    group.bench_function("lockstep_90k_nodes", |b| b.iter(|| lockstep::run(&game)));
    group.finish();
}

/// Pure message-plane stress: every node broadcasts every round until a
/// fixed horizon and folds its inbox into an accumulator. Node compute is a
/// handful of xors, so wall time is dominated by the send path (arena
/// writes) and the receive path (stamp scans).
struct Gossip<M: Payload> {
    acc: M,
}

trait Payload: Clone + Send + Default + 'static {
    fn seed(id: u32) -> Self;
    fn fold(&mut self, other: &Self);
}

impl Payload for u64 {
    fn seed(id: u32) -> Self {
        0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id as u64 + 1)
    }
    fn fold(&mut self, other: &Self) {
        *self ^= other.rotate_left(7);
    }
}

/// A fat payload the size of the real protocol structs (4 words), to expose
/// the cost of moving message bytes through the arena.
#[derive(Clone, Copy, Default)]
struct FatMsg {
    words: [u64; 4],
}

impl Payload for FatMsg {
    fn seed(id: u32) -> Self {
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u64::seed(id ^ (i as u32) << 8);
        }
        FatMsg { words }
    }
    fn fold(&mut self, other: &Self) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            u64::fold(a, b);
        }
    }
}

const GOSSIP_ROUNDS: u32 = 24;

impl<M: Payload> Protocol for Gossip<M> {
    type Input = ();
    type Message = M;
    type Output = M;

    fn init(node: NodeInit<'_, ()>) -> Self {
        Gossip {
            acc: M::seed(node.id.0),
        }
    }

    fn round(
        &mut self,
        ctx: &RoundCtx,
        inbox: &Inbox<'_, M>,
        outbox: &mut Outbox<'_, '_, M>,
    ) -> Status {
        for (_, m) in inbox.iter() {
            self.acc.fold(m);
        }
        outbox.broadcast(self.acc.clone());
        if ctx.round >= GOSSIP_ROUNDS {
            Status::Halt
        } else {
            Status::Continue
        }
    }

    fn finish(self) -> M {
        self.acc
    }
}

fn bench_message_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_plane");
    group.sample_size(10);
    let mut rng = SmallRng::seed_from_u64(99);
    let g = td_graph::gen::random::gnm(10_000, 40_000, &mut rng);
    let inputs = vec![(); g.num_nodes()];
    group.bench_function("gossip_u64_seq", |b| {
        b.iter(|| Simulator::sequential().run::<Gossip<u64>>(&g, &inputs))
    });
    group.bench_function("gossip_u64_par4", |b| {
        b.iter(|| Simulator::parallel(4).run::<Gossip<u64>>(&g, &inputs))
    });
    group.bench_function("gossip_fat_seq", |b| {
        b.iter(|| Simulator::sequential().run::<Gossip<FatMsg>>(&g, &inputs))
    });
    // Sparse delivery: the same graph, but only node 0 ever sends. Receivers
    // still scan their stamp rows every round, so this isolates the
    // miss path of the inbox.
    let sparse_inputs: Vec<bool> = (0..g.num_nodes()).map(|v| v == 0).collect();
    group.bench_function("sparse_seq", |b| {
        b.iter(|| Simulator::sequential().run::<SparseBeacon>(&g, &sparse_inputs))
    });
    group.finish();
}

/// Only the beacon node sends; everyone else scans empty inboxes for a
/// fixed horizon. Exercises the stamp-miss path.
struct SparseBeacon {
    beacon: bool,
    heard: u64,
}

impl Protocol for SparseBeacon {
    type Input = bool;
    type Message = u64;
    type Output = u64;

    fn init(node: NodeInit<'_, bool>) -> Self {
        SparseBeacon {
            beacon: *node.input,
            heard: 0,
        }
    }

    fn round(
        &mut self,
        ctx: &RoundCtx,
        inbox: &Inbox<'_, u64>,
        outbox: &mut Outbox<'_, '_, u64>,
    ) -> Status {
        for (_, &m) in inbox.iter() {
            self.heard = self.heard.wrapping_add(m);
        }
        if self.beacon {
            outbox.broadcast(ctx.round as u64 + 1);
        }
        if ctx.round >= GOSSIP_ROUNDS {
            Status::Halt
        } else {
            Status::Continue
        }
    }

    fn finish(self) -> u64 {
        self.heard
    }
}

criterion_group!(
    benches,
    bench_executors,
    bench_large_round_throughput,
    bench_message_plane
);
criterion_main!(benches);
