//! The **churn scenario registry**: trace-driven dynamic workloads over the
//! incremental repair engines, behind one interface — the online regime the
//! one-shot [`crate::scenario`] registry cannot express.
//!
//! A [`ChurnScenario`] builds a live instance, stabilizes it, then streams
//! a deterministic, seeded [`ChurnEvent`] trace through the family's churn
//! engine, verifying stability after *every* event. Each run reports the
//! accumulated repair cost ([`RepairStats`]) and, optionally, the cost of
//! recomputing from scratch after each event with the same protocol
//! dynamics (a fresh engine started from an arbitrary solution with every
//! node dirty — the Section 1.1 arbitrary-start regime), so experiment E15
//! can put "repair is O(Δ)-local per update" next to "recompute pays Θ(n)"
//! in the same units.
//!
//! Scenarios:
//!
//! * **`edge-flip`** — adversarial orientation churn: random edges of a
//!   Δ=4 regular graph are flipped *toward the higher-load endpoint*
//!   (maximizing the created unhappiness); `size` = nodes.
//! * **`flash-crowd`** — a Zipf server farm whose hotspot drifts: a stream
//!   of customer joins whose candidate lists are Zipf-skewed around a
//!   rotating hot server, with periodic departures (Comte's token
//!   dispatching regime); `size` = servers.
//! * **`rolling-restart`** — servers drain and rejoin round-robin, the
//!   canonical deploy pattern; every drain evicts the server's customers
//!   through the unassigned path of the repair protocol; `size` = servers.

use crate::scenario::ScenarioKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use td_assign::repair::AssignChurnEngine;
use td_assign::AssignmentInstance;
use td_graph::{EdgeId, NodeId};
use td_local::churn::{ChurnEvent, RepairMode, RepairStats};
use td_orient::repair::OrientChurnEngine;
use td_orient::Orientation;

/// Uniform result of one churn scenario run.
#[derive(Clone, Debug)]
pub struct ChurnReport {
    /// Registry name.
    pub scenario: &'static str,
    /// Size knob used.
    pub size: u32,
    /// Seed used.
    pub seed: u64,
    /// Events applied (all trace events apply successfully by design).
    pub events: u32,
    /// Nodes of the (final) network.
    pub nodes: usize,
    /// Edges of the (final) network.
    pub edges: usize,
    /// Accumulated incremental-repair cost over the trace.
    pub repair: RepairStats,
    /// Accumulated from-scratch recompute cost (one fresh all-dirty
    /// stabilization per event), if measured.
    pub recompute: Option<RepairStats>,
    /// Solution fingerprint after the trace (orientation: head per edge;
    /// assignment: server+1 per external customer, 0 = unassigned) — the
    /// quantity the differential tests compare bit-for-bit.
    pub fingerprint: Vec<u32>,
    /// Wall-clock of the trace (repairs + verification).
    pub wall: Duration,
    /// Scenario-specific extras.
    pub notes: Vec<(&'static str, String)>,
}

impl ChurnReport {
    fn note(mut self, key: &'static str, value: impl ToString) -> Self {
        self.notes.push((key, value.to_string()));
        self
    }
}

/// A named, sized, seeded churn workload over one repair engine.
pub trait ChurnScenario: Sync {
    /// Registry name (`td churn <name>`).
    fn name(&self) -> &'static str;
    /// Problem family.
    fn kind(&self) -> ScenarioKind;
    /// One-line description, including what `size` means.
    fn description(&self) -> &'static str;
    /// Default size knob.
    fn default_size(&self) -> u32;
    /// Default trace length.
    fn default_events(&self) -> u32;
    /// Runs the trace. `mode` selects incremental repair or the
    /// full-recompute fallback; `with_recompute` additionally measures a
    /// from-scratch stabilization after every event.
    fn run(
        &self,
        size: u32,
        events: u32,
        seed: u64,
        threads: usize,
        mode: RepairMode,
        with_recompute: bool,
    ) -> ChurnReport;
}

// ------------------------------------------------------------ edge-flip ---

/// Adversarial orientation churn on a Δ=4 regular graph.
struct EdgeFlipChurn;

impl EdgeFlipChurn {
    const DEGREE: usize = 4;

    fn graph(size: u32, seed: u64) -> td_graph::CsrGraph {
        let mut n = (size as usize).max(Self::DEGREE + 2);
        if Self::DEGREE % 2 == 1 && n % 2 == 1 {
            n += 1; // the configuration model needs even n·Δ
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        td_graph::gen::random::random_regular(n, Self::DEGREE, &mut rng, 500)
            .expect("configuration model converges")
    }
}

impl ChurnScenario for EdgeFlipChurn {
    fn name(&self) -> &'static str {
        "edge-flip"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Orientation
    }
    fn description(&self) -> &'static str {
        "adversarial flips toward the higher-load endpoint of a Δ=4 regular graph; size = nodes"
    }
    fn default_size(&self) -> u32 {
        128
    }
    fn default_events(&self) -> u32 {
        32
    }
    fn run(
        &self,
        size: u32,
        events: u32,
        seed: u64,
        threads: usize,
        mode: RepairMode,
        with_recompute: bool,
    ) -> ChurnReport {
        let g = Self::graph(size, seed);
        let t0 = Instant::now();
        let mut eng = OrientChurnEngine::new(g.clone(), Orientation::toward_larger(&g), mode)
            .with_threads(threads);
        eng.stabilize();
        eng.verify().expect("initial stabilization");
        let mut repair = RepairStats::accumulator();
        let mut recompute = with_recompute.then(RepairStats::accumulator);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_c4a0);
        for _ in 0..events {
            // Adversarial pick: among a handful of sampled edges, flip the
            // one whose *tail* is most loaded — reversing it dumps the edge
            // onto an already-busy node, maximizing the unhappiness one
            // update can create.
            let (u, v) = {
                let g = eng.graph();
                let o = eng.orientation();
                let mut best: Option<(u32, NodeId, NodeId)> = None;
                for _ in 0..4 {
                    let e = EdgeId(rng.gen_range(0..g.num_edges() as u32));
                    let (a, b) = g.endpoints(e);
                    let head = o.head(e).expect("complete");
                    let tail = if head == a { b } else { a };
                    let damage = o.load(tail);
                    if best.is_none_or(|(d, _, _)| damage > d) {
                        best = Some((damage, a, b));
                    }
                }
                let (_, a, b) = best.expect("sampled");
                (a, b)
            };
            let stats = eng
                .apply(&ChurnEvent::EdgeFlip { u, v })
                .expect("trace events are valid");
            eng.verify().expect("stable after repair");
            repair.absorb(stats);
            if let Some(acc) = recompute.as_mut() {
                let mut fresh = OrientChurnEngine::new(
                    eng.graph().clone(),
                    Orientation::toward_larger(eng.graph()),
                    RepairMode::FullRecompute,
                )
                .with_threads(threads);
                acc.absorb(fresh.stabilize());
            }
        }
        let wall = t0.elapsed();
        let fingerprint: Vec<u32> = eng
            .graph()
            .edges()
            .map(|e| eng.orientation().head(e).expect("complete").0)
            .collect();
        let max_load = eng
            .graph()
            .nodes()
            .map(|v| eng.orientation().load(v))
            .max()
            .unwrap_or(0);
        ChurnReport {
            scenario: self.name(),
            size,
            seed,
            events,
            nodes: eng.graph().num_nodes(),
            edges: eng.graph().num_edges(),
            repair,
            recompute,
            fingerprint,
            wall,
            notes: Vec::new(),
        }
        .note("Δ", Self::DEGREE)
        .note("max load", max_load)
        .note("potential Σ load²", eng.orientation().potential())
    }
}

// ----------------------------------------------------------- flash-crowd ---

/// Zipf server farm with a drifting hotspot.
struct FlashCrowdChurn;

/// Zipf(1.2) rank weights over `ns` servers, precomputed once per run
/// (draws happen in a rejection loop on every join event).
struct ZipfRanks {
    weights: Vec<f64>,
    total: f64,
}

impl ZipfRanks {
    fn new(ns: usize) -> Self {
        let weights: Vec<f64> = (0..ns).map(|r| 1.0 / ((r + 1) as f64).powf(1.2)).collect();
        let total = weights.iter().sum();
        ZipfRanks { weights, total }
    }

    /// Draws a Zipf-ranked server around the rotating hotspot.
    fn draw(&self, hot: usize, rng: &mut SmallRng) -> u32 {
        let ns = self.weights.len();
        let mut x = rng.gen_range(0.0..self.total);
        for (r, w) in self.weights.iter().enumerate() {
            if x < *w {
                return ((hot + r) % ns) as u32;
            }
            x -= w;
        }
        ((hot + ns - 1) % ns) as u32
    }

    fn join_list(&self, hot: usize, rng: &mut SmallRng) -> Vec<u32> {
        let ns = self.weights.len();
        let want = 3.min(ns);
        let mut list: Vec<u32> = Vec::with_capacity(want);
        while list.len() < want {
            let s = self.draw(hot, rng);
            if !list.contains(&s) {
                list.push(s);
            }
        }
        list
    }
}

impl ChurnScenario for FlashCrowdChurn {
    fn name(&self) -> &'static str {
        "flash-crowd"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Assignment
    }
    fn description(&self) -> &'static str {
        "customer joins with Zipf lists around a drifting hot server, periodic leaves; size = servers"
    }
    fn default_size(&self) -> u32 {
        16
    }
    fn default_events(&self) -> u32 {
        48
    }
    fn run(
        &self,
        size: u32,
        events: u32,
        seed: u64,
        threads: usize,
        mode: RepairMode,
        with_recompute: bool,
    ) -> ChurnReport {
        let ns = (size as usize).max(2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let base = AssignmentInstance::random(2 * ns, ns, 1..=3.min(ns), &mut rng);
        let t0 = Instant::now();
        let mut eng = AssignChurnEngine::new(&base, mode).with_threads(threads);
        eng.stabilize();
        eng.verify().expect("initial stabilization");
        let mut repair = RepairStats::accumulator();
        let mut recompute = with_recompute.then(RepairStats::accumulator);
        let ranks = ZipfRanks::new(ns);
        let mut alive: Vec<u32> = (0..2 * ns as u32).collect();
        let mut next_id = 2 * ns as u32;
        for i in 0..events {
            // The hotspot drifts one server every four events.
            let hot = (i as usize / 4) % ns;
            let ev = if i % 4 == 3 && alive.len() > ns {
                let k = rng.gen_range(0..alive.len());
                ChurnEvent::CustomerLeave(alive.swap_remove(k))
            } else {
                alive.push(next_id);
                next_id += 1;
                ChurnEvent::CustomerJoin {
                    servers: ranks.join_list(hot, &mut rng),
                }
            };
            let stats = eng.apply(&ev).expect("trace events are valid");
            eng.verify().expect("stable after repair");
            repair.absorb(stats);
            if let Some(acc) = recompute.as_mut() {
                let (inst, _, _) = eng.effective_instance();
                let mut fresh =
                    AssignChurnEngine::new(&inst, RepairMode::FullRecompute).with_threads(threads);
                acc.absorb(fresh.stabilize());
            }
        }
        let wall = t0.elapsed();
        let fingerprint: Vec<u32> = eng
            .assignment_vector()
            .iter()
            .map(|a| a.map_or(0, |s| s + 1))
            .collect();
        let loads = eng.server_loads();
        let (inst, _, _) = eng.effective_instance();
        let edges = (0..inst.num_customers())
            .map(|c| inst.servers_of(c).len())
            .sum();
        ChurnReport {
            scenario: self.name(),
            size,
            seed,
            events,
            nodes: eng.num_alive() + ns,
            edges,
            repair,
            recompute,
            fingerprint,
            wall,
            notes: Vec::new(),
        }
        .note("customers (final)", eng.num_alive())
        .note("cost Σ load²⁺", eng.cost())
        .note("max load", loads.iter().max().copied().unwrap_or(0))
    }
}

// ------------------------------------------------------- rolling-restart ---

/// Servers drain and rejoin round-robin.
struct RollingRestartChurn;

impl ChurnScenario for RollingRestartChurn {
    fn name(&self) -> &'static str {
        "rolling-restart"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Assignment
    }
    fn description(&self) -> &'static str {
        "servers drain and rejoin round-robin; evicted customers rebalance; size = servers"
    }
    fn default_size(&self) -> u32 {
        16
    }
    fn default_events(&self) -> u32 {
        32
    }
    fn run(
        &self,
        size: u32,
        events: u32,
        seed: u64,
        threads: usize,
        mode: RepairMode,
        with_recompute: bool,
    ) -> ChurnReport {
        let ns = (size as usize).max(2);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Degree ≥ 2 so drained customers always have an alternative.
        let base = AssignmentInstance::random(3 * ns, ns, 2.min(ns)..=3.min(ns), &mut rng);
        let t0 = Instant::now();
        let mut eng = AssignChurnEngine::new(&base, mode).with_threads(threads);
        eng.stabilize();
        eng.verify().expect("initial stabilization");
        let mut repair = RepairStats::accumulator();
        let mut recompute = with_recompute.then(RepairStats::accumulator);
        for i in 0..events {
            let server = ((i / 2) as usize % ns) as u32;
            let ev = if i % 2 == 0 {
                ChurnEvent::ServerCapacity {
                    server,
                    capacity: 0,
                }
            } else {
                ChurnEvent::ServerCapacity {
                    server,
                    capacity: 1,
                }
            };
            let stats = eng.apply(&ev).expect("trace events are valid");
            eng.verify().expect("stable after repair");
            repair.absorb(stats);
            if let Some(acc) = recompute.as_mut() {
                let (inst, _, _) = eng.effective_instance();
                let mut fresh =
                    AssignChurnEngine::new(&inst, RepairMode::FullRecompute).with_threads(threads);
                acc.absorb(fresh.stabilize());
            }
        }
        let wall = t0.elapsed();
        let fingerprint: Vec<u32> = eng
            .assignment_vector()
            .iter()
            .map(|a| a.map_or(0, |s| s + 1))
            .collect();
        let loads = eng.server_loads();
        let (inst, _, _) = eng.effective_instance();
        let edges = (0..inst.num_customers())
            .map(|c| inst.servers_of(c).len())
            .sum();
        ChurnReport {
            scenario: self.name(),
            size,
            seed,
            events,
            nodes: eng.num_alive() + ns,
            edges,
            repair,
            recompute,
            fingerprint,
            wall,
            notes: Vec::new(),
        }
        .note("customers", eng.num_alive())
        .note("cost Σ load²⁺", eng.cost())
        .note("max load", loads.iter().max().copied().unwrap_or(0))
    }
}

// ------------------------------------------------------- small-world-flux ---

/// Orientation churn on a Watts–Strogatz small-world topology: a mixed
/// flip/insert/delete trace drawn by the `small-world` workload family
/// ([`crate::spec::WorkloadSpec`]), so `td churn small-world-flux` replays
/// exactly what the fuzz plane generates for that family.
struct SmallWorldFlux;

impl ChurnScenario for SmallWorldFlux {
    fn name(&self) -> &'static str {
        "small-world-flux"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Orientation
    }
    fn description(&self) -> &'static str {
        "mixed flip/insert/delete churn on a Watts-Strogatz small-world graph; size = nodes"
    }
    fn default_size(&self) -> u32 {
        96
    }
    fn default_events(&self) -> u32 {
        32
    }
    fn run(
        &self,
        size: u32,
        events: u32,
        seed: u64,
        threads: usize,
        mode: RepairMode,
        with_recompute: bool,
    ) -> ChurnReport {
        let spec = crate::spec::WorkloadSpec::new("small-world")
            .expect("registered family")
            .with_size(size)
            .with_seed(seed)
            .with_param("events", events);
        let built = spec.build().expect("default small-world spec is valid");
        let crate::spec::WorkloadInstance::OrientChurn { graph: g, trace } = built else {
            unreachable!("small-world builds an orientation churn instance");
        };
        let t0 = Instant::now();
        let mut eng = OrientChurnEngine::new(g.clone(), Orientation::toward_larger(&g), mode)
            .with_threads(threads);
        eng.stabilize();
        eng.verify().expect("initial stabilization");
        let mut repair = RepairStats::accumulator();
        let mut recompute = with_recompute.then(RepairStats::accumulator);
        let mut applied = 0u32;
        for ev in &trace {
            let stats = eng.apply(ev).expect("trace events are valid");
            eng.verify().expect("stable after repair");
            repair.absorb(stats);
            applied += 1;
            if let Some(acc) = recompute.as_mut() {
                let mut fresh = OrientChurnEngine::new(
                    eng.graph().clone(),
                    Orientation::toward_larger(eng.graph()),
                    RepairMode::FullRecompute,
                )
                .with_threads(threads);
                acc.absorb(fresh.stabilize());
            }
        }
        let wall = t0.elapsed();
        let fingerprint: Vec<u32> = eng
            .graph()
            .edges()
            .map(|e| eng.orientation().head(e).expect("complete").0)
            .collect();
        let max_load = eng
            .graph()
            .nodes()
            .map(|v| eng.orientation().load(v))
            .max()
            .unwrap_or(0);
        ChurnReport {
            scenario: self.name(),
            size,
            seed,
            events: applied,
            nodes: eng.graph().num_nodes(),
            edges: eng.graph().num_edges(),
            repair,
            recompute,
            fingerprint,
            wall,
            notes: Vec::new(),
        }
        .note("spec", spec)
        .note("max load", max_load)
        .note("potential Σ load²", eng.orientation().potential())
    }
}

// -------------------------------------------------------------- registry ---

static CHURN_REGISTRY: &[&dyn ChurnScenario] = &[
    &EdgeFlipChurn,
    &FlashCrowdChurn,
    &RollingRestartChurn,
    &SmallWorldFlux,
];

/// Every registered churn scenario.
pub fn churn_registry() -> &'static [&'static dyn ChurnScenario] {
    CHURN_REGISTRY
}

/// Looks a churn scenario up by name.
pub fn find_churn(name: &str) -> Option<&'static dyn ChurnScenario> {
    CHURN_REGISTRY.iter().copied().find(|s| s.name() == name)
}

/// Renders the churn registry as an aligned listing.
pub fn churn_listing() -> String {
    let mut t = crate::Table::new(&["name", "kind", "size", "events", "description"]);
    for s in churn_registry() {
        t.row(vec![
            s.name().to_string(),
            s.kind().label().to_string(),
            s.default_size().to_string(),
            s.default_events().to_string(),
            s.description().to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique_and_findable() {
        let mut names: Vec<&str> = churn_registry().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        for n in names {
            assert!(find_churn(n).is_some());
        }
        assert!(find_churn("no-such-churn").is_none());
        assert!(churn_listing().contains("edge-flip"));
    }

    #[test]
    fn every_churn_scenario_runs_small() {
        for s in churn_registry() {
            let size = match s.kind() {
                ScenarioKind::Orientation => 64,
                _ => 6,
            };
            let rep = s.run(size, 6, 42, 1, RepairMode::Incremental, true);
            assert_eq!(rep.scenario, s.name());
            assert_eq!(rep.events, 6);
            assert!(rep.repair.completed, "{}", s.name());
            let rec = rep.recompute.expect("measured");
            assert!(
                rep.repair.node_steps < rec.node_steps,
                "{}: repair {} !< recompute {}",
                s.name(),
                rep.repair.node_steps,
                rec.node_steps
            );
        }
    }

    #[test]
    fn traces_are_deterministic_and_mode_independent() {
        for s in churn_registry() {
            let size = match s.kind() {
                ScenarioKind::Orientation => 24,
                _ => 5,
            };
            let a = s.run(size, 5, 7, 1, RepairMode::Incremental, false);
            let b = s.run(size, 5, 7, 1, RepairMode::Incremental, false);
            assert_eq!(
                a.fingerprint,
                b.fingerprint,
                "{} not deterministic",
                s.name()
            );
            let c = s.run(size, 5, 7, 1, RepairMode::FullRecompute, false);
            assert_eq!(
                a.fingerprint,
                c.fingerprint,
                "{} diverges across modes",
                s.name()
            );
            assert_eq!(a.repair.rounds, c.repair.rounds);
            assert_eq!(a.repair.messages, c.repair.messages);
        }
    }
}
