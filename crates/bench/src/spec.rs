//! **Parametric workload specs**: every generated workload — graph family,
//! size, seed, and family-specific parameters — behind one value,
//! [`WorkloadSpec`], that serializes to a one-line string and parses back.
//!
//! The spec string is the repro currency of the fuzz plane: every fuzz
//! failure prints `td fuzz --spec '<string>'`, and that line alone rebuilds
//! the exact instance (generators are seeded, parameters are integers, no
//! floats in the grammar). Format:
//!
//! ```text
//! <family>:size=<u32>:seed=<u64>[:<param>=<u32>]*
//! ```
//!
//! e.g. `small-world:size=32:seed=7:k=4:p_pct=15:events=10:flip_w=1:ins_w=1:del_w=1`.
//! [`std::fmt::Display`] always prints the full canonical parameter list, so
//! a displayed spec is self-contained; [`WorkloadSpec::parse`] fills omitted
//! keys with the family defaults. Probabilities and exponents ride as
//! integer percent knobs (`p_pct`, `alpha_pct`, `density_pct`).
//!
//! [`WorkloadSpec::build`] materializes the instance: a token game, a graph
//! for the orientation protocol, an assignment instance, or a live graph /
//! instance plus a seeded [`ChurnEvent`] trace drawn from the family's
//! event-mix weights.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt;
use td_assign::AssignmentInstance;
use td_core::TokenGame;
use td_graph::{CsrGraph, NodeId};
use td_local::churn::ChurnEvent;

/// Which pipeline a family's instances run through in the fuzz plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyKind {
    /// A [`TokenGame`] solved by the proposal protocol (Theorem 4.1).
    Game,
    /// A graph stably oriented by the distributed Θ(Δ⁴) protocol
    /// (Theorem 5.1) — bounded-degree families only.
    Orientation,
    /// An [`AssignmentInstance`] solved by the distributed stable /
    /// k-bounded assignment protocol (Theorems 7.3 / 7.5).
    Assignment,
    /// A live graph plus a churn trace through [`OrientChurnEngine`]
    /// (incremental repair vs full recompute).
    ///
    /// [`OrientChurnEngine`]: td_orient::repair::OrientChurnEngine
    OrientChurn,
    /// A live instance plus a churn trace through [`AssignChurnEngine`].
    ///
    /// [`AssignChurnEngine`]: td_assign::repair::AssignChurnEngine
    AssignChurn,
}

impl FamilyKind {
    /// Short label for listings.
    pub fn label(self) -> &'static str {
        match self {
            FamilyKind::Game => "game",
            FamilyKind::Orientation => "orientation",
            FamilyKind::Assignment => "assignment",
            FamilyKind::OrientChurn => "orient-churn",
            FamilyKind::AssignChurn => "assign-churn",
        }
    }
}

/// One declared family parameter: its name, default, and the closed range
/// of values [`WorkloadSpec::validate`] accepts. The bounds replace the
/// scattered `.max(..)`/`.clamp(..)` guards that used to silently rewrite
/// degenerate values inside `build` — an out-of-range parameter is now a
/// parse/build *error*, never a silently different instance.
pub struct ParamInfo {
    /// Parameter key (as it appears in the spec string).
    pub name: &'static str,
    /// Value used when the spec string omits the key.
    pub default: u32,
    /// Smallest accepted value.
    pub min: u32,
    /// Largest accepted value.
    pub max: u32,
}

/// Shorthand constructor for [`ParamInfo`] (keeps the registry readable).
const fn p(name: &'static str, default: u32, min: u32, max: u32) -> ParamInfo {
    ParamInfo {
        name,
        default,
        min,
        max,
    }
}

/// Event-mix weights get a generous but finite ceiling so that summing a
/// family's weights can never overflow `u32` arithmetic in the generators.
const WEIGHT_MAX: u32 = 1 << 20;

/// Static description of one generator family: its name, pipeline kind,
/// default size, accepted size range, size ladder (used by the fuzz
/// corpus), and the canonical parameter list with defaults and bounds.
pub struct FamilyInfo {
    /// Registry name (the first token of the spec string).
    pub name: &'static str,
    /// Pipeline the family's instances run through.
    pub kind: FamilyKind,
    /// Size used when the spec string omits `size=`.
    pub default_size: u32,
    /// Smallest size [`WorkloadSpec::validate`] accepts.
    pub min_size: u32,
    /// Largest size [`WorkloadSpec::validate`] accepts.
    pub max_size: u32,
    /// Sizes the fuzz corpus cycles through.
    pub size_ladder: &'static [u32],
    /// Canonical parameter list, in display order.
    pub params: &'static [ParamInfo],
    /// What the family generates and what `size` means.
    pub about: &'static str,
}

/// Every registered workload family.
pub static FAMILIES: &[FamilyInfo] = &[
    FamilyInfo {
        name: "regular",
        kind: FamilyKind::Orientation,
        default_size: 24,
        min_size: 4,
        max_size: u32::MAX,
        size_ladder: &[16, 24, 32],
        params: &[p("d", 3, 2, 4)],
        about: "random d-regular graph (configuration model); size = nodes (>= d + 2)",
    },
    FamilyInfo {
        name: "grid",
        kind: FamilyKind::Orientation,
        default_size: 6,
        min_size: 2,
        max_size: u32::MAX,
        size_ladder: &[4, 5, 6, 7],
        params: &[],
        about: "side x side grid; size = side length (>= 2)",
    },
    FamilyInfo {
        name: "torus",
        kind: FamilyKind::Orientation,
        default_size: 4,
        min_size: 3,
        max_size: u32::MAX,
        size_ladder: &[3, 4, 5],
        params: &[],
        about: "side x side torus (4-regular); size = side length (>= 3)",
    },
    FamilyInfo {
        name: "hypercube",
        kind: FamilyKind::Orientation,
        default_size: 4,
        min_size: 1,
        max_size: 10,
        size_ladder: &[3, 4],
        params: &[],
        about: "dim-dimensional hypercube (2^dim nodes); size = dim (1..=10)",
    },
    FamilyInfo {
        name: "small-world",
        kind: FamilyKind::OrientChurn,
        default_size: 32,
        min_size: 4,
        max_size: u32::MAX,
        size_ladder: &[24, 32, 48],
        params: &[
            p("k", 4, 2, 1 << 16),
            p("p_pct", 15, 0, 100),
            p("events", 10, 0, 10_000_000),
            p("flip_w", 1, 0, WEIGHT_MAX),
            p("ins_w", 1, 0, WEIGHT_MAX),
            p("del_w", 1, 0, WEIGHT_MAX),
        ],
        about: "Watts-Strogatz ring lattice (degree k, p_pct% rewired) under orientation churn; size = nodes (>= k + 2)",
    },
    FamilyInfo {
        name: "power-law",
        kind: FamilyKind::OrientChurn,
        default_size: 32,
        min_size: 3,
        max_size: u32::MAX,
        size_ladder: &[24, 32, 48],
        params: &[
            p("m", 2, 1, 4),
            p("events", 10, 0, 10_000_000),
            p("flip_w", 2, 0, WEIGHT_MAX),
            p("ins_w", 1, 0, WEIGHT_MAX),
            p("del_w", 1, 0, WEIGHT_MAX),
        ],
        about: "Barabasi-Albert preferential attachment (m edges/node) under orientation churn; size = nodes (>= m + 2)",
    },
    FamilyInfo {
        name: "layered",
        kind: FamilyKind::Game,
        default_size: 6,
        min_size: 2,
        max_size: u32::MAX,
        size_ladder: &[4, 6, 8],
        params: &[
            p("levels", 4, 1, 8),
            p("delta", 3, 1, 6),
            p("density_pct", 50, 1, 100),
        ],
        about: "random layered token game; size = level width (>= 2)",
    },
    FamilyInfo {
        name: "hourglass",
        kind: FamilyKind::Game,
        default_size: 8,
        min_size: 4,
        max_size: u32::MAX,
        size_ladder: &[6, 8, 10],
        params: &[p("delta", 2, 1, 6), p("density_pct", 60, 1, 100)],
        about: "5-level layered game pinched in the middle (funnel contention); size = outer width (>= 4)",
    },
    FamilyInfo {
        name: "rotor",
        kind: FamilyKind::Game,
        default_size: 8,
        min_size: 2,
        max_size: u32::MAX,
        size_ladder: &[6, 10, 14],
        params: &[],
        about: "deterministic circulant rotor sweep (seed ignored); size = width (>= 2)",
    },
    FamilyInfo {
        name: "zipf-cluster",
        kind: FamilyKind::Assignment,
        default_size: 6,
        min_size: 2,
        max_size: u32::MAX,
        size_ladder: &[4, 5, 6],
        params: &[
            p("clusters", 3, 1, u32::MAX),
            p("alpha_pct", 120, 0, 10_000),
            p("cps", 3, 1, 1 << 16),
            p("bound", 2, 0, 1 << 16),
        ],
        about: "clustered Zipf bipartite assignment (cps customers/server, bound = k or 0 for exact); size = servers (>= 2, >= clusters)",
    },
    FamilyInfo {
        name: "uniform-assign",
        kind: FamilyKind::Assignment,
        default_size: 3,
        min_size: 2,
        max_size: u32::MAX,
        size_ladder: &[3, 4, 5],
        params: &[p("cps", 3, 1, 1 << 16), p("bound", 0, 0, 1 << 16)],
        about: "uniform random assignment instance (exact protocol is O(C·S⁴): keep size small at bound=0); size = servers (>= 2)",
    },
    FamilyInfo {
        name: "churn-orient",
        kind: FamilyKind::OrientChurn,
        default_size: 48,
        min_size: 4,
        max_size: u32::MAX,
        size_ladder: &[32, 48, 64],
        params: &[
            p("d", 4, 2, 6),
            p("events", 16, 0, 10_000_000),
            p("flip_w", 2, 0, WEIGHT_MAX),
            p("ins_w", 1, 0, WEIGHT_MAX),
            p("del_w", 1, 0, WEIGHT_MAX),
        ],
        about: "random d-regular graph under a flip/insert/delete event mix; size = nodes (>= d + 2)",
    },
    FamilyInfo {
        name: "churn-assign",
        kind: FamilyKind::AssignChurn,
        default_size: 6,
        min_size: 3,
        max_size: u32::MAX,
        size_ladder: &[4, 6, 8],
        params: &[
            p("events", 16, 0, 10_000_000),
            p("join_w", 3, 0, WEIGHT_MAX),
            p("leave_w", 1, 0, WEIGHT_MAX),
            p("cap_w", 2, 0, WEIGHT_MAX),
        ],
        about: "live assignment under a join/leave/drain event mix; size = servers (>= 3)",
    },
];

/// Looks a family up by name.
pub fn find_family(name: &str) -> Option<&'static FamilyInfo> {
    FAMILIES.iter().find(|f| f.name == name)
}

/// A fully parameterized, seeded workload: one generated instance,
/// reproducible from its one-line string form alone.
///
/// ```
/// use td_bench::spec::{WorkloadInstance, WorkloadSpec};
///
/// // Parsing fills omitted keys with the family defaults…
/// let spec = WorkloadSpec::parse("torus:size=4:seed=7").unwrap();
/// // …and Display always prints the full canonical form (round-trips).
/// assert_eq!(WorkloadSpec::parse(&spec.to_string()).unwrap(), spec);
///
/// // `build` materializes the instance the string names.
/// let WorkloadInstance::Orientation(g) = spec.build().unwrap() else {
///     panic!("torus is an orientation family")
/// };
/// assert_eq!(g.num_nodes(), 16); // 4 x 4, exactly 4-regular
///
/// // Degenerate knobs are rejected, never silently patched up.
/// assert!(WorkloadSpec::parse("torus:size=0").is_err());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Canonical family name (a [`FAMILIES`] entry).
    pub family: &'static str,
    /// The family's one-dimensional size knob.
    pub size: u32,
    /// Generator seed (deterministic families ignore it).
    pub seed: u64,
    /// Full canonical parameter list, in the family's declared order.
    pub params: Vec<(&'static str, u32)>,
}

impl WorkloadSpec {
    /// A spec for `family` with default size, seed 42, default parameters.
    pub fn new(family: &str) -> Result<Self, String> {
        let info = find_family(family).ok_or_else(|| {
            format!(
                "unknown family '{family}' (known: {})",
                FAMILIES
                    .iter()
                    .map(|f| f.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
        Ok(WorkloadSpec {
            family: info.name,
            size: info.default_size,
            seed: 42,
            params: info.params.iter().map(|p| (p.name, p.default)).collect(),
        })
    }

    /// The family's static description.
    pub fn info(&self) -> &'static FamilyInfo {
        find_family(self.family).expect("spec family is registered")
    }

    /// The family's pipeline kind.
    pub fn kind(&self) -> FamilyKind {
        self.info().kind
    }

    /// Value of parameter `name`.
    ///
    /// # Panics
    /// If the family has no such parameter.
    pub fn param(&self, name: &str) -> u32 {
        self.params
            .iter()
            .find(|(k, _)| *k == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("{}: no parameter '{name}'", self.family))
    }

    /// Returns the spec with `size` replaced.
    pub fn with_size(mut self, size: u32) -> Self {
        self.size = size;
        self
    }

    /// Returns the spec with `seed` replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec with parameter `name` set.
    ///
    /// # Panics
    /// If the family has no such parameter.
    pub fn with_param(mut self, name: &str, value: u32) -> Self {
        let slot = self
            .params
            .iter_mut()
            .find(|(k, _)| *k == name)
            .unwrap_or_else(|| panic!("{}: no parameter '{name}'", self.family));
        slot.1 = value;
        self
    }

    /// Parses the one-line form. Omitted keys take family defaults; unknown
    /// families or keys, malformed integers, and duplicate keys are errors.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut parts = s.trim().split(':');
        let family = parts.next().unwrap_or("");
        let mut spec = WorkloadSpec::new(family)?;
        let mut seen: Vec<&str> = Vec::new();
        for part in parts {
            let (key, raw) = part
                .split_once('=')
                .ok_or_else(|| format!("'{part}': expected key=value"))?;
            if seen.contains(&key) {
                return Err(format!("duplicate key '{key}'"));
            }
            match key {
                "size" => {
                    spec.size = raw
                        .parse()
                        .map_err(|_| format!("size '{raw}': not a u32"))?;
                }
                "seed" => {
                    spec.seed = raw
                        .parse()
                        .map_err(|_| format!("seed '{raw}': not a u64"))?;
                }
                _ => {
                    let value: u32 = raw
                        .parse()
                        .map_err(|_| format!("{key} '{raw}': not a u32"))?;
                    let slot = spec
                        .params
                        .iter_mut()
                        .find(|(k, _)| *k == key)
                        .ok_or_else(|| format!("{family}: unknown parameter '{key}'"))?;
                    slot.1 = value;
                }
            }
            // `seen` borrows from `part`, which lives as long as `s`.
            seen.push(key);
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks `size` and every parameter against the family's declared
    /// bounds, plus the structural rules the generators rely on. Both
    /// [`parse`](Self::parse) and [`build`](Self::build) run this, so a spec
    /// assembled via `with_size`/`with_param` is still checked before it can
    /// materialize an instance.
    pub fn validate(&self) -> Result<(), String> {
        let info = self.info();
        if self.size < info.min_size || self.size > info.max_size {
            return Err(format!(
                "{}: size {} out of range [{}, {}]",
                self.family, self.size, info.min_size, info.max_size
            ));
        }
        for pi in info.params {
            let v = self.param(pi.name);
            if v < pi.min || v > pi.max {
                return Err(format!(
                    "{}: {} {} out of range [{}, {}]",
                    self.family, pi.name, v, pi.min, pi.max
                ));
            }
        }
        // Structural rules that couple size to a parameter, or parameters to
        // each other — the generators assume these hold.
        let floor = |knob: &str, need: u32| -> Result<(), String> {
            if self.size < need {
                Err(format!(
                    "{}: size {} too small for {knob} (need >= {need})",
                    self.family, self.size
                ))
            } else {
                Ok(())
            }
        };
        match self.family {
            "regular" => floor("d", self.param("d") + 2)?,
            "churn-orient" => floor("d", self.param("d") + 2)?,
            "small-world" => floor("k", self.param("k") + 2)?,
            "power-law" => floor("m", self.param("m") + 2)?,
            "zipf-cluster" if self.param("clusters") > self.size => {
                return Err(format!(
                    "{}: clusters {} exceeds size {}",
                    self.family,
                    self.param("clusters"),
                    self.size
                ));
            }
            _ => {}
        }
        match self.kind() {
            FamilyKind::OrientChurn => {
                let sum = self.param("flip_w") + self.param("ins_w") + self.param("del_w");
                if sum == 0 {
                    return Err(format!(
                        "{}: event-mix weights sum to 0 (flip_w + ins_w + del_w must be >= 1)",
                        self.family
                    ));
                }
            }
            FamilyKind::AssignChurn => {
                let sum = self.param("join_w") + self.param("leave_w") + self.param("cap_w");
                if sum == 0 {
                    return Err(format!(
                        "{}: event-mix weights sum to 0 (join_w + leave_w + cap_w must be >= 1)",
                        self.family
                    ));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Materializes the instance this spec describes, after
    /// [`validate`](Self::validate)-ing it.
    pub fn build(&self) -> Result<WorkloadInstance, String> {
        self.validate()?;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        Ok(match self.family {
            "regular" => {
                let d = self.param("d") as usize;
                let mut n = self.size as usize;
                if (n * d) % 2 == 1 {
                    n += 1;
                }
                let g = td_graph::gen::random::random_regular(n, d, &mut rng, 500)
                    .expect("configuration model converges");
                WorkloadInstance::Orientation(g)
            }
            "grid" => {
                let side = self.size as usize;
                WorkloadInstance::Orientation(td_graph::gen::classic::grid(side, side))
            }
            "torus" => {
                let side = self.size as usize;
                WorkloadInstance::Orientation(td_graph::gen::classic::torus(side, side))
            }
            "hypercube" => {
                let dim = self.size as usize;
                WorkloadInstance::Orientation(td_graph::gen::classic::hypercube(dim))
            }
            "small-world" => {
                // Ring-lattice degree must be even; k rounds down.
                let k = (self.param("k") as usize / 2) * 2;
                let n = self.size as usize;
                let p = f64::from(self.param("p_pct")) / 100.0;
                let g = td_graph::gen::random::small_world(n, k, p, &mut rng);
                let trace = self.orient_trace(&g, &mut rng);
                WorkloadInstance::OrientChurn { graph: g, trace }
            }
            "power-law" => {
                let m = self.param("m") as usize;
                let n = self.size as usize;
                let g = td_graph::gen::random::preferential_attachment(n, m, &mut rng);
                let trace = self.orient_trace(&g, &mut rng);
                WorkloadInstance::OrientChurn { graph: g, trace }
            }
            "layered" => {
                let width = self.size as usize;
                let levels = self.param("levels") as usize;
                let delta = self.param("delta") as usize;
                let density = f64::from(self.param("density_pct")) / 100.0;
                let widths = vec![width; levels + 1];
                WorkloadInstance::Game(TokenGame::random(&widths, delta, density, &mut rng))
            }
            "hourglass" => {
                let w = self.size as usize;
                let delta = self.param("delta") as usize;
                let density = f64::from(self.param("density_pct")) / 100.0;
                let widths = [w, w / 2, w / 4, w / 2, w];
                WorkloadInstance::Game(TokenGame::random(&widths, delta, density, &mut rng))
            }
            "rotor" => {
                let w = self.size as usize;
                WorkloadInstance::Game(crate::scenario::rotor_sweep_game(w))
            }
            "zipf-cluster" => {
                let ns = self.size as usize;
                let clusters = self.param("clusters") as usize;
                let alpha = f64::from(self.param("alpha_pct")) / 100.0;
                let nc = self.param("cps") as usize * ns;
                let g = td_graph::gen::random::clustered_zipf_bipartite(
                    nc,
                    ns,
                    clusters,
                    1..=3.min(ns),
                    alpha,
                    &mut rng,
                );
                let inst = AssignmentInstance::from_bipartite_graph(&g, nc);
                let b = self.param("bound");
                WorkloadInstance::Assignment {
                    inst,
                    bound: (b > 0).then_some(b),
                }
            }
            "uniform-assign" => {
                let ns = self.size as usize;
                let nc = self.param("cps") as usize * ns;
                let inst = AssignmentInstance::random(nc, ns, 1..=3.min(ns), &mut rng);
                let b = self.param("bound");
                WorkloadInstance::Assignment {
                    inst,
                    bound: (b > 0).then_some(b),
                }
            }
            "churn-orient" => {
                let d = self.param("d") as usize;
                let mut n = self.size as usize;
                if (n * d) % 2 == 1 {
                    n += 1;
                }
                let g = td_graph::gen::random::random_regular(n, d, &mut rng, 500)
                    .expect("configuration model converges");
                let trace = self.orient_trace(&g, &mut rng);
                WorkloadInstance::OrientChurn { graph: g, trace }
            }
            "churn-assign" => {
                let ns = self.size as usize;
                let base = AssignmentInstance::random(2 * ns, ns, 2..=3.min(ns), &mut rng);
                let trace = self.assign_trace(&base, ns, &mut rng);
                WorkloadInstance::AssignChurn { base, trace }
            }
            other => unreachable!("unregistered family '{other}'"),
        })
    }

    /// A seeded flip/insert/delete event trace over `g`, valid by
    /// construction: the generator tracks the evolving edge set, so flips
    /// and deletes always name a live edge and inserts never duplicate one.
    fn orient_trace(&self, g: &CsrGraph, rng: &mut SmallRng) -> Vec<ChurnEvent> {
        let events = self.param("events");
        let (fw, iw, dw) = (
            self.param("flip_w"),
            self.param("ins_w"),
            self.param("del_w"),
        );
        // validate() guarantees a nonzero sum (and WEIGHT_MAX keeps it from
        // overflowing).
        let total = fw + iw + dw;
        let n = g.num_nodes() as u32;
        let mut live: Vec<(u32, u32)> = g.edge_list().map(|(_, u, v)| (u.0, v.0)).collect();
        let mut present: HashSet<(u32, u32)> =
            live.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        let mut trace = Vec::with_capacity(events as usize);
        for _ in 0..events {
            let mut roll = rng.gen_range(0..total);
            // Insert when rolled (and a non-edge is found), delete when
            // rolled (keeping a floor of edges), otherwise flip.
            if roll < iw && n >= 2 {
                let mut found = None;
                for _ in 0..64 {
                    let u = rng.gen_range(0..n);
                    let v = rng.gen_range(0..n);
                    if u != v && !present.contains(&(u.min(v), u.max(v))) {
                        found = Some((u, v));
                        break;
                    }
                }
                if let Some((u, v)) = found {
                    present.insert((u.min(v), u.max(v)));
                    live.push((u, v));
                    trace.push(ChurnEvent::EdgeInsert {
                        u: NodeId(u),
                        v: NodeId(v),
                    });
                    continue;
                }
                roll = iw; // graph is complete: fall through
            }
            if roll < iw + dw && live.len() > (n as usize) / 2 {
                let k = rng.gen_range(0..live.len());
                let (u, v) = live.swap_remove(k);
                present.remove(&(u.min(v), u.max(v)));
                trace.push(ChurnEvent::EdgeDelete {
                    u: NodeId(u),
                    v: NodeId(v),
                });
                continue;
            }
            if live.is_empty() {
                continue;
            }
            let &(u, v) = &live[rng.gen_range(0..live.len())];
            trace.push(ChurnEvent::EdgeFlip {
                u: NodeId(u),
                v: NodeId(v),
            });
        }
        trace
    }

    /// A seeded join/leave/drain trace for a live assignment over `ns`
    /// servers. Valid by construction: leaves name alive customers, at most
    /// one server is drained at a time (and every customer has >= 2
    /// candidates, so an available server always remains), and capacity
    /// events strictly alternate drain/restore per server.
    fn assign_trace(
        &self,
        base: &AssignmentInstance,
        ns: usize,
        rng: &mut SmallRng,
    ) -> Vec<ChurnEvent> {
        let events = self.param("events");
        let (jw, lw, cw) = (
            self.param("join_w"),
            self.param("leave_w"),
            self.param("cap_w"),
        );
        // validate() guarantees a nonzero sum.
        let total = jw + lw + cw;
        let mut alive: Vec<u32> = (0..base.num_customers() as u32).collect();
        let mut next_id = base.num_customers() as u32;
        let mut drained: Option<u32> = None;
        let mut trace = Vec::with_capacity(events as usize);
        for _ in 0..events {
            let roll = rng.gen_range(0..total);
            if roll < cw {
                match drained.take() {
                    Some(s) => trace.push(ChurnEvent::ServerCapacity {
                        server: s,
                        capacity: 1,
                    }),
                    None => {
                        let s = rng.gen_range(0..ns as u32);
                        drained = Some(s);
                        trace.push(ChurnEvent::ServerCapacity {
                            server: s,
                            capacity: 0,
                        });
                    }
                }
            } else if roll < cw + lw && alive.len() > ns {
                let k = rng.gen_range(0..alive.len());
                trace.push(ChurnEvent::CustomerLeave(alive.swap_remove(k)));
            } else {
                let want = 2.min(ns) + rng.gen_range(0..=1usize).min(ns.saturating_sub(2));
                let mut servers: Vec<u32> = Vec::with_capacity(want);
                while servers.len() < want {
                    let s = rng.gen_range(0..ns as u32);
                    if !servers.contains(&s) {
                        servers.push(s);
                    }
                }
                alive.push(next_id);
                next_id += 1;
                trace.push(ChurnEvent::CustomerJoin { servers });
            }
        }
        trace
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:size={}:seed={}", self.family, self.size, self.seed)?;
        for (k, v) in &self.params {
            write!(f, ":{k}={v}")?;
        }
        Ok(())
    }
}

/// A materialized workload: what [`WorkloadSpec::build`] hands to the
/// family's pipeline.
pub enum WorkloadInstance {
    /// A token dropping game (proposal protocol pipeline).
    Game(TokenGame),
    /// A graph for the distributed stable-orientation protocol.
    Orientation(CsrGraph),
    /// An assignment instance plus the protocol bound (`None` = exact).
    Assignment {
        /// The instance.
        inst: AssignmentInstance,
        /// `Some(k)` runs the k-bounded relaxation, `None` the exact protocol.
        bound: Option<u32>,
    },
    /// A live graph plus a churn trace for the orientation repair engine.
    OrientChurn {
        /// The initial graph.
        graph: CsrGraph,
        /// The event trace (valid by construction).
        trace: Vec<ChurnEvent>,
    },
    /// A live instance plus a churn trace for the assignment repair engine.
    AssignChurn {
        /// The initial instance.
        base: AssignmentInstance,
        /// The event trace (valid by construction).
        trace: Vec<ChurnEvent>,
    },
}

/// Renders the family registry as an aligned listing (used by `td fuzz`).
pub fn family_listing() -> String {
    let mut t = crate::Table::new(&["family", "kind", "size", "params", "description"]);
    for f in FAMILIES {
        let params = f
            .params
            .iter()
            .map(|p| format!("{}={}", p.name, p.default))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(vec![
            f.name.to_string(),
            f.kind.label().to_string(),
            f.default_size.to_string(),
            if params.is_empty() {
                "-".into()
            } else {
                params
            },
            f.about.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_have_unique_names_and_nonempty_ladders() {
        let mut names: Vec<&str> = FAMILIES.iter().map(|f| f.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate family names");
        for f in FAMILIES {
            assert!(!f.size_ladder.is_empty(), "{}: empty ladder", f.name);
            assert!(find_family(f.name).is_some());
        }
        assert!(find_family("no-such-family").is_none());
    }

    #[test]
    fn display_parse_roundtrip_for_every_family() {
        for f in FAMILIES {
            let spec = WorkloadSpec::new(f.name)
                .unwrap()
                .with_size(f.size_ladder[0])
                .with_seed(7);
            let s = spec.to_string();
            let back = WorkloadSpec::parse(&s).unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(spec, back, "{s}");
        }
    }

    #[test]
    fn parse_fills_defaults_and_rejects_garbage() {
        let spec = WorkloadSpec::parse("layered:seed=9").unwrap();
        assert_eq!(spec.size, 6);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.param("delta"), 3);

        assert!(WorkloadSpec::parse("no-such-family").is_err());
        assert!(WorkloadSpec::parse("layered:delta").is_err());
        assert!(WorkloadSpec::parse("layered:delta=x").is_err());
        assert!(WorkloadSpec::parse("layered:bogus=3").is_err());
        assert!(WorkloadSpec::parse("layered:size=1:size=2").is_err());
        assert!(WorkloadSpec::parse("layered:seed=-1").is_err());
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        // size=0 / zero-valued params used to slip through and build
        // silently-patched instances; they are now parse/build errors.
        for bad in [
            "torus:size=0",
            "grid:size=0",
            "grid:size=1",
            "hypercube:size=0",
            "hypercube:size=11",
            "regular:size=24:d=1",
            "regular:size=24:d=5",
            "regular:size=4:d=3", // size < d + 2
            "small-world:size=32:k=40",
            "small-world:p_pct=200",
            "power-law:size=3:m=2", // size < m + 2
            "layered:levels=0",
            "layered:density_pct=0",
            "layered:density_pct=101",
            "hourglass:size=3",
            "zipf-cluster:size=2:clusters=3",
            "zipf-cluster:cps=0",
            "uniform-assign:size=1",
            "churn-orient:flip_w=0:ins_w=0:del_w=0",
            "churn-assign:join_w=0:leave_w=0:cap_w=0",
            "churn-assign:size=2",
        ] {
            assert!(WorkloadSpec::parse(bad).is_err(), "{bad}: should reject");
        }
        // build() re-validates, so with_size/with_param can't sneak a
        // degenerate spec past parse().
        let spec = WorkloadSpec::new("torus").unwrap().with_size(0);
        assert!(spec.validate().is_err());
        assert!(spec.build().is_err());
    }

    #[test]
    fn validation_accepts_defaults_and_single_zero_weights() {
        for f in FAMILIES {
            let spec = WorkloadSpec::new(f.name).unwrap();
            assert!(spec.validate().is_ok(), "{}: default spec", f.name);
            assert!(spec.build().is_ok(), "{}: default build", f.name);
        }
        // Individual weights may be zero as long as the mix sums to >= 1
        // (the serve stamp-horizon test runs a pure-flip mix this way).
        let spec = WorkloadSpec::parse("churn-orient:flip_w=1:ins_w=0:del_w=0").unwrap();
        assert!(spec.build().is_ok());
    }

    #[test]
    fn build_is_deterministic_per_spec() {
        for f in FAMILIES {
            let spec = WorkloadSpec::new(f.name).unwrap().with_seed(3);
            let (a, b) = (spec.build().unwrap(), spec.build().unwrap());
            let shape = |w: &WorkloadInstance| match w {
                WorkloadInstance::Game(g) => (g.num_nodes(), g.graph().num_edges()),
                WorkloadInstance::Orientation(g) => (g.num_nodes(), g.num_edges()),
                WorkloadInstance::Assignment { inst, .. } => {
                    (inst.num_customers(), inst.num_servers())
                }
                WorkloadInstance::OrientChurn { graph, trace } => {
                    (graph.num_nodes(), graph.num_edges() + trace.len())
                }
                WorkloadInstance::AssignChurn { base, trace } => {
                    (base.num_customers(), trace.len())
                }
            };
            assert_eq!(shape(&a), shape(&b), "{}", f.name);
        }
    }

    #[test]
    fn orient_traces_stay_valid_under_mutation() {
        // The trace generator tracks the evolving edge set; every flip and
        // delete must name an edge that exists at that point in the trace.
        let spec = WorkloadSpec::parse("churn-orient:size=32:seed=5:events=40").unwrap();
        let WorkloadInstance::OrientChurn { graph, trace } = spec.build().unwrap() else {
            panic!("churn-orient builds a churn instance");
        };
        assert_eq!(trace.len(), 40);
        let mut present: HashSet<(u32, u32)> = graph
            .edge_list()
            .map(|(_, u, v)| (u.0.min(v.0), u.0.max(v.0)))
            .collect();
        for ev in &trace {
            match ev {
                ChurnEvent::EdgeFlip { u, v } => {
                    assert!(present.contains(&(u.0.min(v.0), u.0.max(v.0))), "{ev:?}");
                }
                ChurnEvent::EdgeInsert { u, v } => {
                    assert!(present.insert((u.0.min(v.0), u.0.max(v.0))), "{ev:?}");
                }
                ChurnEvent::EdgeDelete { u, v } => {
                    assert!(present.remove(&(u.0.min(v.0), u.0.max(v.0))), "{ev:?}");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn assign_traces_respect_capacity_alternation() {
        let spec = WorkloadSpec::parse("churn-assign:size=5:seed=8:events=40").unwrap();
        let WorkloadInstance::AssignChurn { base, trace } = spec.build().unwrap() else {
            panic!("churn-assign builds a churn instance");
        };
        assert_eq!(trace.len(), 40);
        let mut alive: HashSet<u32> = (0..base.num_customers() as u32).collect();
        let mut next = base.num_customers() as u32;
        let mut drained: Option<u32> = None;
        for ev in &trace {
            match ev {
                ChurnEvent::CustomerJoin { servers } => {
                    assert!(servers.len() >= 2, "{ev:?}");
                    alive.insert(next);
                    next += 1;
                }
                ChurnEvent::CustomerLeave(c) => assert!(alive.remove(c), "{ev:?}"),
                ChurnEvent::ServerCapacity { server, capacity } => {
                    if *capacity == 0 {
                        assert_eq!(drained, None, "double drain {ev:?}");
                        drained = Some(*server);
                    } else {
                        assert_eq!(drained, Some(*server), "restore mismatch {ev:?}");
                        drained = None;
                    }
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }
}
