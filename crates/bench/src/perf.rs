//! The **perf telemetry plane**: a machine-readable performance trajectory
//! for the whole executor stack.
//!
//! Every PR so far has asserted its speedups in prose (criterion numbers in
//! EXPERIMENTS.md); this module turns them into data. One sweep —
//! scenario × executor × size — runs representative workloads from the
//! [`crate::spec`] families plus one synthetic quiescing showcase through
//! the sequential executor and the pinned-worker sharded engine — both as
//! `parallel(T)` (auto shard count) and at explicit shard grids — (and the
//! churn engines through their thread/shard grid), collecting for each
//! point:
//!
//! * the headline costs: rounds, messages, wall-clock (total and per
//!   round);
//! * the [`ExecPerf`] work counters every executor now maintains: node
//!   rounds stepped, halted residents scanned past (dense executors) vs
//!   halted node-rounds never visited (the sharded executor's node-granular
//!   sparse scheduler), messages routed locally vs over the batched
//!   boundary, and arena stamp scans;
//! * the sharded partition stats ([`ShardExecStats`]) where applicable;
//! * a down-sampled per-round curve of active nodes and messages (the
//!   active-fraction trajectory experiment E18 fits).
//!
//! [`write_json`] serializes the sweep as a versioned (`td-perf/v1`)
//! report — the `td perf` subcommand writes it to `BENCH_10.json` so
//! future PRs can append comparable trajectory points; every run also
//! cross-checks rounds and messages across executors (a perf run that
//! diverges is a bug, not a data point).
//!
//! ```
//! use td_bench::perf::{self, SweepConfig};
//! let mut cfg = SweepConfig::quick();
//! cfg.scenario = Some("drain-wave".into());
//! let report = perf::run_sweep(&cfg).unwrap();
//! assert!(report.points.iter().all(|p| p.rounds > 0));
//! // The sparse scheduler never scans a halted resident…
//! let sharded = report.points.iter().find(|p| p.executor.starts_with("sharded")).unwrap();
//! assert_eq!(sharded.counters.halted_scans, 0);
//! // …while the dense sequential baseline pays for every one of them.
//! let seq = report.points.iter().find(|p| p.executor == "sequential").unwrap();
//! assert!(seq.counters.halted_scans > 0);
//! ```

use crate::spec::{WorkloadInstance, WorkloadSpec};
use std::time::Instant;
use td_assign::repair::AssignChurnEngine;
use td_core::proposal;
use td_local::{
    ExecPerf, Inbox, NodeInit, Outbox, Protocol, RepairMode, RepairStats, RoundCtx, RoundStats,
    ShardExecStats, SimOutcome, Simulator, Status,
};
use td_orient::protocol::run_distributed;
use td_orient::repair::OrientChurnEngine;
use td_orient::Orientation;

/// Schema tag written into every report; bump on any incompatible change.
pub const SCHEMA: &str = "td-perf/v1";

/// Maximum points kept in a down-sampled [`Curve`].
const CURVE_POINTS: usize = 48;

/// A down-sampled per-round trajectory: every `stride`-th round's active
/// node count and message count (plus the final round, so the tail is
/// always visible).
#[derive(Clone, Debug, Default)]
pub struct Curve {
    /// Sampling stride in rounds (1 = every round kept).
    pub stride: u32,
    /// Sampled round numbers.
    pub rounds: Vec<u32>,
    /// Active nodes at the start of each sampled round.
    pub active: Vec<usize>,
    /// Messages sent during each sampled round.
    pub messages: Vec<u64>,
}

impl Curve {
    fn from_trace(trace: &[RoundStats]) -> Curve {
        if trace.is_empty() {
            return Curve::default();
        }
        let stride = trace.len().div_ceil(CURVE_POINTS).max(1);
        let mut c = Curve {
            stride: stride as u32,
            ..Curve::default()
        };
        for (i, r) in trace.iter().enumerate() {
            if i % stride == 0 || i + 1 == trace.len() {
                c.rounds.push(r.round);
                c.active.push(r.active_nodes);
                c.messages.push(r.messages);
            }
        }
        c
    }
}

/// One measured (scenario, executor, size) point.
#[derive(Clone, Debug)]
pub struct PerfPoint {
    /// Perf scenario name (see [`REGISTRY`]).
    pub scenario: &'static str,
    /// The exact workload: a [`WorkloadSpec`] string, or a synthetic
    /// descriptor for the drain-wave showcase.
    pub spec: String,
    /// Pipeline kind label (game / orientation / assignment / churn /
    /// synthetic).
    pub kind: &'static str,
    /// Executor label (`sequential`, `parallel(T)`, `sharded(K,T)`,
    /// `churn(T,K)`).
    pub executor: String,
    /// The scenario's size knob for this point.
    pub size: u32,
    /// Seed used.
    pub seed: u64,
    /// Nodes of the instance.
    pub nodes: usize,
    /// Edges (adjacency entries for assignments).
    pub edges: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Messages sent.
    pub messages: u64,
    /// Wall-clock of the solve alone, nanoseconds — verification is
    /// excluded on one-shot rows so executor deltas are undiluted; churn
    /// rows time the full repair trace (incl. the per-event verification
    /// every grid point pays identically).
    pub wall_ns: u128,
    /// Executor work counters (zeroed on churn rows, which report
    /// `node_steps` instead).
    pub counters: ExecPerf,
    /// Sharded-executor stats, where the run was sharded.
    pub sharding: Option<ShardExecStats>,
    /// Down-sampled per-round trajectory (one-shot rows only).
    pub curve: Curve,
    /// Churn rows: node steps of the repair trace (the wake-driven
    /// executor's sparse work measure).
    pub node_steps: Option<u64>,
}

impl PerfPoint {
    /// The cache-stable canonical serialization of this point: the
    /// deterministic work counters as flat `<executor>/<name>` integer
    /// metrics, excluding wall-clock (nondeterministic) and the stamp
    /// scans (an allocator detail, not a cost claim). What the experiment
    /// cache stores and keys render output off.
    pub fn canonical_metrics(&self) -> Vec<(String, u64)> {
        let e = &self.executor;
        let mut m = vec![
            (format!("{e}/rounds"), self.rounds),
            (format!("{e}/messages"), self.messages),
        ];
        match self.node_steps {
            Some(steps) => m.push((format!("{e}/node_steps"), steps)),
            None => {
                let c = &self.counters;
                m.push((format!("{e}/node_rounds"), c.node_rounds));
                m.push((format!("{e}/halted_scans"), c.halted_scans));
                m.push((format!("{e}/sparse_skips"), c.sparse_skips));
                m.push((format!("{e}/local_messages"), c.local_messages));
                m.push((format!("{e}/boundary_messages"), c.boundary_messages));
            }
        }
        if let Some(sh) = &self.sharding {
            m.push((format!("{e}/cut_edges"), sh.cut_edges as u64));
            m.push((format!("{e}/shard_rounds_skipped"), sh.shard_rounds_skipped));
        }
        m
    }

    /// Active fraction: node steps actually executed over the dense
    /// `nodes × rounds` grid a non-sparse executor would scan.
    pub fn active_fraction(&self) -> f64 {
        let dense = self.nodes as u64 * self.rounds;
        if dense == 0 {
            return 0.0;
        }
        let steps = self.node_steps.unwrap_or(self.counters.node_rounds);
        steps as f64 / dense as f64
    }
}

/// A full sweep: configuration echo plus every measured point.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Worker threads used by the parallel/sharded rows.
    pub threads: usize,
    /// Shard count used by the sharded rows.
    pub shards: usize,
    /// Base seed.
    pub seed: u64,
    /// Timing repetitions each point ran (min-of-N wall clock).
    pub repeat: usize,
    /// All measured points, in sweep order.
    pub points: Vec<PerfPoint>,
}

impl PerfReport {
    /// The largest-size point of `scenario` measured under `executor`.
    fn best_point(&self, scenario: &str, executor: &str) -> Option<&PerfPoint> {
        self.points
            .iter()
            .filter(|p| p.scenario == scenario && p.executor == executor)
            .max_by_key(|p| p.size)
    }

    /// Wall-clock ratio of the `sequential` row over the `executor` row for
    /// `scenario` at the largest measured size (both rows must exist at
    /// that size). `> 1` means the executor beat sequential.
    fn speedup_vs_sequential(&self, scenario: &str, executor: &str) -> Option<f64> {
        let seq = self.best_point(scenario, "sequential")?;
        let other = self.best_point(scenario, executor)?;
        if other.size != seq.size || other.wall_ns == 0 {
            return None;
        }
        Some(seq.wall_ns as f64 / other.wall_ns as f64)
    }

    /// Wall-clock speedup of the sparse sharded executor (1 shard, 1
    /// thread — pure scheduling, no parallelism) over the dense sequential
    /// baseline for `scenario`, at the largest measured size.
    pub fn sparse_speedup(&self, scenario: &str) -> Option<f64> {
        self.speedup_vs_sequential(scenario, "sharded(1,1)")
    }

    /// Wall-clock speedup of the pinned-worker engine at the sweep's
    /// thread count (`parallel(T)`) over the sequential baseline for
    /// `scenario`, at the largest measured size — the seq-vs-parallel
    /// column of the committed benchmark.
    pub fn parallel_speedup(&self, scenario: &str) -> Option<f64> {
        self.speedup_vs_sequential(scenario, &format!("parallel({})", self.threads))
    }
}

// ------------------------------------------------------------- scenarios ---

/// A named perf workload: what to build and which sizes to sweep.
pub struct PerfScenario {
    /// Registry name (`td perf --scenario <name>`).
    pub name: &'static str,
    /// Pipeline kind label.
    pub kind: &'static str,
    /// Default size sweep.
    pub sizes: &'static [u32],
    /// One-line description, including what `size` means.
    pub about: &'static str,
}

/// The perf scenario registry: one quiescing synthetic showcase plus
/// representative [`crate::spec`] workloads from every pipeline.
pub static REGISTRY: &[PerfScenario] = &[
    PerfScenario {
        name: "drain-wave",
        kind: "synthetic",
        sizes: &[8_192, 32_768, 131_072],
        about: "rolling-restart analogue: 15/16 of a path drains in round 0, a small frontier keeps working; size = nodes",
    },
    PerfScenario {
        name: "rotor",
        kind: "game",
        sizes: &[64, 256, 1024],
        about: "deterministic rotor sweep (quasirandom-style drain); size = width",
    },
    PerfScenario {
        name: "layered",
        kind: "game",
        sizes: &[4, 6],
        about: "random layered token game; size = level width",
    },
    PerfScenario {
        name: "torus",
        kind: "orientation",
        sizes: &[6, 8],
        about: "distributed stable orientation on a side x side torus; size = side",
    },
    PerfScenario {
        name: "zipf-cluster",
        kind: "assignment",
        sizes: &[6, 10],
        about: "clustered Zipf assignment, 2-bounded protocol; size = servers",
    },
    PerfScenario {
        name: "churn-orient",
        kind: "churn",
        sizes: &[48, 96],
        about: "orientation repair under a flip/insert/delete trace; size = nodes",
    },
    PerfScenario {
        name: "churn-assign",
        kind: "churn",
        sizes: &[8, 16],
        about: "assignment repair under a join/leave/drain trace; size = servers",
    },
];

/// Looks a perf scenario up by name.
pub fn find(name: &str) -> Option<&'static PerfScenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Renders the perf registry as an aligned listing.
pub fn listing() -> String {
    let mut t = crate::Table::new(&["name", "kind", "sizes", "description"]);
    for s in REGISTRY {
        let sizes = s
            .sizes
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join(",");
        t.row(vec![
            s.name.to_string(),
            s.kind.to_string(),
            sizes,
            s.about.to_string(),
        ]);
    }
    t.render()
}

// ------------------------------------------------------------- the sweep ---

/// Sweep configuration (what `td perf`'s flags map onto).
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Restrict to one perf scenario (`None` = all).
    pub scenario: Option<String>,
    /// Override the size sweep (`None` = each scenario's default ladder).
    /// Must be paired with [`SweepConfig::scenario`]: `size` units differ
    /// per scenario (nodes, side, servers…), so one list applied across
    /// the whole registry would build absurd instances — [`run_sweep`]
    /// rejects the combination.
    pub sizes: Option<Vec<u32>>,
    /// Base seed.
    pub seed: u64,
    /// Worker threads for the parallel/sharded rows (>= 1).
    pub threads: usize,
    /// Shards for the sharded rows (>= 1).
    pub shards: usize,
    /// Trim every ladder to its smallest rung (smoke mode).
    pub quick: bool,
    /// Timing repetitions per point: each point runs `repeat` times and
    /// reports the *minimum* wall-clock (the standard noise floor for
    /// single-shot timings; outputs are deterministic, so the counters are
    /// identical across repetitions).
    pub repeat: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            scenario: None,
            sizes: None,
            seed: 42,
            threads: 4,
            shards: 4,
            quick: false,
            repeat: 3,
        }
    }
}

impl SweepConfig {
    /// A smoke-sized configuration: every scenario at its smallest size
    /// only, on a 2-thread 2-shard grid. What CI and the library tests run.
    pub fn quick() -> Self {
        SweepConfig {
            threads: 2,
            shards: 2,
            quick: true,
            repeat: 1,
            ..SweepConfig::default()
        }
    }

    fn sizes_for(&self, sc: &PerfScenario) -> Vec<u32> {
        match &self.sizes {
            Some(s) => s.clone(),
            None if self.quick => vec![sc.sizes[0]],
            None => sc.sizes.to_vec(),
        }
    }
}

/// Runs the sweep. Every one-shot point is cross-checked against the
/// sequential reference (same rounds, same messages); `Err` reports the
/// first divergence, an unknown scenario name, or a `sizes` override
/// without a named scenario (size units differ per scenario, so one list
/// applied across the registry would build absurd instances).
pub fn run_sweep(cfg: &SweepConfig) -> Result<PerfReport, String> {
    if cfg.sizes.is_some() && cfg.scenario.is_none() {
        return Err(
            "a sizes override needs a named scenario (size units differ per scenario)".into(),
        );
    }
    let scenarios: Vec<&PerfScenario> = match &cfg.scenario {
        Some(name) => vec![find(name).ok_or_else(|| {
            format!(
                "unknown perf scenario '{name}' (known: {})",
                REGISTRY
                    .iter()
                    .map(|s| s.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?],
        None => REGISTRY.iter().collect(),
    };
    let mut points = Vec::new();
    for sc in scenarios {
        for size in cfg.sizes_for(sc) {
            let mut batch = match sc.name {
                "drain-wave" => run_drain_wave(cfg, size)?,
                "rotor" | "layered" => run_game(cfg, sc.name, size)?,
                "torus" => run_orientation(cfg, size)?,
                "zipf-cluster" => run_assignment(cfg, size)?,
                "churn-orient" | "churn-assign" => run_churn(cfg, sc.name, size)?,
                other => unreachable!("unregistered perf scenario '{other}'"),
            };
            points.append(&mut batch);
        }
    }
    Ok(PerfReport {
        threads: cfg.threads,
        shards: cfg.shards,
        seed: cfg.seed,
        repeat: cfg.repeat.max(1),
        points,
    })
}

/// The executor labels a sweep of `scenario` under `cfg` produces, in
/// sweep order — the resolved grid the report header now records, and the
/// experiment cache keys off.
pub fn grid_labels(cfg: &SweepConfig, scenario: &str) -> Vec<String> {
    if matches!(scenario, "churn-orient" | "churn-assign") {
        let mut grid: Vec<(String, ())> = vec![
            ("churn(1,1)".into(), ()),
            (format!("churn({},1)", cfg.threads), ()),
            (format!("churn({},{})", cfg.threads, cfg.shards), ()),
        ];
        dedup_by_label(&mut grid);
        grid.into_iter().map(|(l, ())| l).collect()
    } else {
        executor_grid(cfg).into_iter().map(|(l, _)| l).collect()
    }
}

/// The executor grid every one-shot scenario is swept over: the dense
/// sequential reference, the pinned-worker engine as `parallel(T)` (auto
/// shard count — the seq-vs-parallel headline row), the engine at the
/// configured explicit shard grid point, and `sharded(1,1)` — the sparse
/// scheduler with parallelism and partitioning stripped away, so its row
/// isolates the node-granular active-list win against `sequential`.
/// Rows whose labels collide (e.g. `--shards 1 --threads 1` makes the
/// configured sharded point *be* `sharded(1,1)`) are emitted once.
fn executor_grid(cfg: &SweepConfig) -> Vec<(String, Simulator)> {
    let mut grid: Vec<(String, Simulator)> = vec![
        ("sequential".into(), Simulator::sequential()),
        (
            format!("parallel({})", cfg.threads),
            Simulator::parallel(cfg.threads),
        ),
        (
            format!("sharded({},{})", cfg.shards, cfg.threads),
            Simulator::sharded(cfg.shards, cfg.threads),
        ),
        ("sharded(1,1)".into(), Simulator::sharded(1, 1)),
    ];
    dedup_by_label(&mut grid);
    grid
}

/// Drops later grid entries whose label already appeared (duplicate rows
/// would double the work and make by-label lookups ambiguous).
fn dedup_by_label<T>(grid: &mut Vec<(String, T)>) {
    let mut seen: Vec<String> = Vec::new();
    grid.retain(|(label, _)| {
        if seen.contains(label) {
            false
        } else {
            seen.push(label.clone());
            true
        }
    });
}

struct OneShot {
    nodes: usize,
    edges: usize,
    rounds: u64,
    messages: u64,
    wall_ns: u128,
    counters: ExecPerf,
    sharding: Option<ShardExecStats>,
    curve: Curve,
}

fn point(
    sc_name: &'static str,
    kind: &'static str,
    spec: String,
    executor: String,
    size: u32,
    seed: u64,
    o: OneShot,
) -> PerfPoint {
    PerfPoint {
        scenario: sc_name,
        spec,
        kind,
        executor,
        size,
        seed,
        nodes: o.nodes,
        edges: o.edges,
        rounds: o.rounds,
        messages: o.messages,
        wall_ns: o.wall_ns,
        counters: o.counters,
        sharding: o.sharding,
        curve: o.curve,
        node_steps: None,
    }
}

/// Cross-executor differential: every grid row must report the reference
/// row's rounds and messages (`ref_label` names that row — `sequential`
/// on one-shot grids, `churn(1,1)` on churn grids).
fn check_reference(
    scenario: &str,
    executor: &str,
    got: (u64, u64),
    reference: Option<(u64, u64)>,
    ref_label: &str,
) -> Result<(), String> {
    match reference {
        Some(r) if r != got => Err(format!(
            "perf {scenario}: {executor} rounds/messages {}/{} diverge from {ref_label} {}/{}",
            got.0, got.1, r.0, r.1
        )),
        _ => Ok(()),
    }
}

// ------------------------------------------------------------ drain-wave ---

/// The quiescing showcase: node `v` of a path halts immediately unless it
/// belongs to a small fixed-size leading frontier, which gossips for a
/// fixed budget of rounds — the shape of a rolling restart, where one
/// drained region is being worked on while the rest of the fleet idles.
/// After round 0 almost all residents are cold, so a dense scan pays ~`n`
/// per round while the sparse scheduler pays only the frontier; the gap
/// widens linearly with `n`.
struct DrainWave {
    long: bool,
    steps: u32,
}

const DRAIN_ROUNDS: u32 = 240;

impl Protocol for DrainWave {
    type Input = bool;
    type Message = u32;
    type Output = u32;

    fn init(node: NodeInit<'_, bool>) -> Self {
        DrainWave {
            long: *node.input,
            steps: 0,
        }
    }

    fn round(
        &mut self,
        ctx: &RoundCtx,
        _inbox: &Inbox<'_, u32>,
        outbox: &mut Outbox<'_, '_, u32>,
    ) -> Status {
        self.steps += 1;
        if !self.long {
            return Status::Halt;
        }
        outbox.broadcast(ctx.round);
        if ctx.round + 1 >= DRAIN_ROUNDS {
            Status::Halt
        } else {
            Status::Continue
        }
    }

    fn finish(self) -> u32 {
        self.steps
    }
}

fn run_drain_wave(cfg: &SweepConfig, size: u32) -> Result<Vec<PerfPoint>, String> {
    let n = (size as usize).max(32);
    let g = td_graph::gen::classic::path(n);
    let frontier = 256.min(n / 4);
    let inputs: Vec<bool> = (0..n).map(|v| v < frontier).collect();
    let spec = format!("drain-wave:size={n}:frontier={frontier}:rounds={DRAIN_ROUNDS}");
    let mut out = Vec::new();
    let mut reference = None;
    for (label, sim) in executor_grid(cfg) {
        let mut wall_ns = u128::MAX;
        let mut last = None;
        for _ in 0..cfg.repeat.max(1) {
            let t0 = Instant::now();
            let outcome: SimOutcome<u32> = sim.with_trace(true).run::<DrainWave>(&g, &inputs);
            wall_ns = wall_ns.min(t0.elapsed().as_nanos());
            last = Some(outcome);
        }
        let outcome = last.expect("repeat >= 1");
        if !outcome.completed {
            return Err(format!("drain-wave {label}: did not complete"));
        }
        // Self-verify the synthetic output: every node knows its step count.
        for (v, &steps) in outcome.outputs.iter().enumerate() {
            let want = if v < frontier { DRAIN_ROUNDS } else { 1 };
            if steps != want {
                return Err(format!(
                    "drain-wave {label}: node {v} stepped {steps} != {want}"
                ));
            }
        }
        check_reference(
            "drain-wave",
            &label,
            (outcome.rounds as u64, outcome.messages),
            reference,
            "sequential",
        )?;
        reference.get_or_insert((outcome.rounds as u64, outcome.messages));
        out.push(point(
            "drain-wave",
            "synthetic",
            spec.clone(),
            label,
            size,
            cfg.seed,
            OneShot {
                nodes: n,
                edges: g.num_edges(),
                rounds: outcome.rounds as u64,
                messages: outcome.messages,
                wall_ns,
                counters: outcome.perf,
                sharding: outcome.sharding,
                curve: Curve::from_trace(outcome.trace.as_deref().unwrap_or(&[])),
            },
        ));
    }
    Ok(out)
}

// ------------------------------------------------- spec-driven one-shots ---

fn build_spec(family: &str, size: u32, seed: u64) -> Result<WorkloadSpec, String> {
    Ok(WorkloadSpec::new(family)?.with_size(size).with_seed(seed))
}

fn run_game(cfg: &SweepConfig, family: &'static str, size: u32) -> Result<Vec<PerfPoint>, String> {
    let spec = build_spec(family, size, cfg.seed)?;
    let WorkloadInstance::Game(game) = spec.build()? else {
        return Err(format!("{family}: expected a game instance"));
    };
    let mut out = Vec::new();
    let mut reference = None;
    for (label, sim) in executor_grid(cfg) {
        let mut wall_ns = u128::MAX;
        let mut last = None;
        for _ in 0..cfg.repeat.max(1) {
            let t0 = Instant::now();
            let res = proposal::run_on_simulator(&game, &sim.with_trace(true));
            wall_ns = wall_ns.min(t0.elapsed().as_nanos());
            last = Some(res);
        }
        let res = last.expect("repeat >= 1");
        td_core::verify_solution(&game, &res.solution).map_err(|e| format!("{family}: {e:?}"))?;
        check_reference(
            family,
            &label,
            (res.comm_rounds as u64, res.messages),
            reference,
            "sequential",
        )?;
        reference.get_or_insert((res.comm_rounds as u64, res.messages));
        out.push(point(
            family,
            "game",
            spec.to_string(),
            label,
            size,
            cfg.seed,
            OneShot {
                nodes: game.num_nodes(),
                edges: game.graph().num_edges(),
                rounds: res.comm_rounds as u64,
                messages: res.messages,
                wall_ns,
                counters: res.perf,
                sharding: res.sharding,
                curve: Curve::from_trace(res.trace.as_deref().unwrap_or(&[])),
            },
        ));
    }
    Ok(out)
}

fn run_orientation(cfg: &SweepConfig, size: u32) -> Result<Vec<PerfPoint>, String> {
    let spec = build_spec("torus", size, cfg.seed)?;
    let WorkloadInstance::Orientation(g) = spec.build()? else {
        return Err("torus: expected an orientation instance".into());
    };
    let mut out = Vec::new();
    let mut reference = None;
    for (label, sim) in executor_grid(cfg) {
        let mut wall_ns = u128::MAX;
        let mut last = None;
        for _ in 0..cfg.repeat.max(1) {
            let t0 = Instant::now();
            let res = run_distributed(&g, &sim.with_trace(true));
            wall_ns = wall_ns.min(t0.elapsed().as_nanos());
            last = Some(res);
        }
        let res = last.expect("repeat >= 1");
        res.orientation
            .verify_stable(&g)
            .map_err(|e| format!("torus: {e:?}"))?;
        check_reference(
            "torus",
            &label,
            (res.comm_rounds as u64, res.messages),
            reference,
            "sequential",
        )?;
        reference.get_or_insert((res.comm_rounds as u64, res.messages));
        out.push(point(
            "torus",
            "orientation",
            spec.to_string(),
            label,
            size,
            cfg.seed,
            OneShot {
                nodes: g.num_nodes(),
                edges: g.num_edges(),
                rounds: res.comm_rounds as u64,
                messages: res.messages,
                wall_ns,
                counters: res.perf,
                sharding: res.sharding,
                curve: Curve::from_trace(res.trace.as_deref().unwrap_or(&[])),
            },
        ));
    }
    Ok(out)
}

fn run_assignment(cfg: &SweepConfig, size: u32) -> Result<Vec<PerfPoint>, String> {
    let spec = build_spec("zipf-cluster", size, cfg.seed)?.with_param("bound", 2);
    let WorkloadInstance::Assignment { inst, bound } = spec.build()? else {
        return Err("zipf-cluster: expected an assignment instance".into());
    };
    let mut out = Vec::new();
    let mut reference = None;
    for (label, sim) in executor_grid(cfg) {
        let mut wall_ns = u128::MAX;
        let mut last = None;
        for _ in 0..cfg.repeat.max(1) {
            let t0 = Instant::now();
            let res = td_assign::protocol::run_distributed_assignment(
                &inst,
                bound,
                &sim.with_trace(true),
            );
            wall_ns = wall_ns.min(t0.elapsed().as_nanos());
            last = Some(res);
        }
        let res = last.expect("repeat >= 1");
        match bound {
            Some(k) => res
                .assignment
                .verify_k_bounded(&inst, k)
                .map_err(|e| format!("zipf-cluster: {e:?}"))?,
            None => res
                .assignment
                .verify_stable(&inst)
                .map_err(|e| format!("zipf-cluster: {e:?}"))?,
        }
        check_reference(
            "zipf-cluster",
            &label,
            (res.comm_rounds as u64, res.messages),
            reference,
            "sequential",
        )?;
        reference.get_or_insert((res.comm_rounds as u64, res.messages));
        let edges = (0..inst.num_customers())
            .map(|c| inst.servers_of(c).len())
            .sum();
        out.push(point(
            "zipf-cluster",
            "assignment",
            spec.to_string(),
            label,
            size,
            cfg.seed,
            OneShot {
                nodes: inst.num_customers() + inst.num_servers(),
                edges,
                rounds: res.comm_rounds as u64,
                messages: res.messages,
                wall_ns,
                counters: res.perf,
                sharding: res.sharding,
                curve: Curve::from_trace(res.trace.as_deref().unwrap_or(&[])),
            },
        ));
    }
    Ok(out)
}

// ------------------------------------------------------------ churn rows ---

fn run_churn(cfg: &SweepConfig, family: &'static str, size: u32) -> Result<Vec<PerfPoint>, String> {
    let spec = build_spec(family, size, cfg.seed)?;
    let mut grid: Vec<(String, (usize, usize))> = vec![
        ("churn(1,1)".into(), (1, 1)),
        (format!("churn({},1)", cfg.threads), (cfg.threads, 1)),
        (
            format!("churn({},{})", cfg.threads, cfg.shards),
            (cfg.threads, cfg.shards),
        ),
    ];
    dedup_by_label(&mut grid);
    let mut out = Vec::new();
    let mut reference: Option<(u64, u64)> = None;
    for (label, (threads, shards)) in grid {
        let mut wall_ns = u128::MAX;
        let mut last = None;
        for _ in 0..cfg.repeat.max(1) {
            let built = spec.build()?;
            let t0 = Instant::now();
            let measured = run_churn_once(family, built, threads, shards)?;
            wall_ns = wall_ns.min(t0.elapsed().as_nanos());
            last = Some(measured);
        }
        let (stats, nodes, edges) = last.expect("repeat >= 1");
        if !stats.completed {
            return Err(format!("{family} {label}: repair hit the round cap"));
        }
        check_reference(
            family,
            &label,
            (stats.rounds as u64, stats.messages),
            reference,
            "churn(1,1)",
        )?;
        reference.get_or_insert((stats.rounds as u64, stats.messages));
        out.push(PerfPoint {
            scenario: family,
            spec: spec.to_string(),
            kind: "churn",
            executor: label,
            size,
            seed: cfg.seed,
            nodes,
            edges,
            rounds: stats.rounds as u64,
            messages: stats.messages,
            wall_ns,
            counters: ExecPerf::default(),
            sharding: None,
            curve: Curve::default(),
            node_steps: Some(stats.node_steps),
        });
    }
    Ok(out)
}

/// One timed repetition of a churn grid point: stabilize, stream the
/// trace, verify after every event.
fn run_churn_once(
    family: &'static str,
    built: WorkloadInstance,
    threads: usize,
    shards: usize,
) -> Result<(RepairStats, usize, usize), String> {
    Ok(match built {
        WorkloadInstance::OrientChurn { graph, trace } => {
            let mut eng = OrientChurnEngine::new(
                graph.clone(),
                Orientation::toward_larger(&graph),
                RepairMode::Incremental,
            )
            .with_threads(threads)
            .with_shards(shards);
            let mut total = RepairStats::accumulator();
            total.absorb(eng.stabilize());
            eng.verify()
                .map_err(|e| format!("{family}: initial stabilization: {e:?}"))?;
            for (i, ev) in trace.iter().enumerate() {
                total.absorb(
                    eng.apply(ev)
                        .map_err(|e| format!("{family}: event {i}: {e}"))?,
                );
                eng.verify()
                    .map_err(|e| format!("{family}: after event {i}: {e:?}"))?;
            }
            (total, eng.graph().num_nodes(), eng.graph().num_edges())
        }
        WorkloadInstance::AssignChurn { base, trace } => {
            let mut eng = AssignChurnEngine::new(&base, RepairMode::Incremental)
                .with_threads(threads)
                .with_shards(shards);
            let mut total = RepairStats::accumulator();
            total.absorb(eng.stabilize());
            eng.verify()
                .map_err(|e| format!("{family}: initial stabilization: {e:?}"))?;
            for (i, ev) in trace.iter().enumerate() {
                total.absorb(
                    eng.apply(ev)
                        .map_err(|e| format!("{family}: event {i}: {e}"))?,
                );
                eng.verify()
                    .map_err(|e| format!("{family}: after event {i}: {e:?}"))?;
            }
            let edges = (0..base.num_customers()).map(|c| base.degree_of(c)).sum();
            (total, eng.num_alive() + base.num_servers(), edges)
        }
        _ => return Err(format!("{family}: expected a churn instance")),
    })
}

// ------------------------------------------------------------------ JSON ---

fn push_kv_u64(s: &mut String, key: &str, v: u64, trailing: bool) {
    s.push_str(&format!("\"{key}\":{v}{}", if trailing { "," } else { "" }));
}

fn json_array_u64<I: IntoIterator<Item = u64>>(vals: I) -> String {
    let items: Vec<String> = vals.into_iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// The report header shared by `td perf` output and the experiment
/// cache's benchmark regeneration: schema tag, trajectory point, the
/// sweep knobs, the timing repeat count, and the resolved executor grid
/// (schema-additive over earlier `td-perf/v1` documents). Ends mid-object,
/// ready for `"points"`.
pub fn header_json(
    threads: usize,
    shards: usize,
    seed: u64,
    repeat: usize,
    executors: &[String],
) -> String {
    let execs: Vec<String> = executors.iter().map(|e| format!("\"{e}\"")).collect();
    format!(
        "{{\n\"schema\":\"{SCHEMA}\",\n\"bench\":10,\n\"threads\":{threads},\n\"shards\":{shards},\n\
         \"seed\":{seed},\n\"repeat\":{repeat},\n\"executors\":[{}],\n",
        execs.join(",")
    )
}

/// Serializes one measured point as a single-line JSON object — the exact
/// fragment [`write_json`] emits, exposed so the experiment cache can
/// store points verbatim and splice them back byte-identically.
pub fn point_json(p: &PerfPoint) -> String {
    let mut s = String::new();
    s.push('{');
    s.push_str(&format!(
        "\"scenario\":\"{}\",\"spec\":\"{}\",\"kind\":\"{}\",\"executor\":\"{}\",",
        p.scenario, p.spec, p.kind, p.executor
    ));
    s.push_str(&format!("\"size\":{},\"seed\":{},", p.size, p.seed));
    push_kv_u64(&mut s, "nodes", p.nodes as u64, true);
    push_kv_u64(&mut s, "edges", p.edges as u64, true);
    push_kv_u64(&mut s, "rounds", p.rounds, true);
    push_kv_u64(&mut s, "messages", p.messages, true);
    push_kv_u64(&mut s, "wall_ns", p.wall_ns as u64, true);
    let per_round = (p.wall_ns as u64).checked_div(p.rounds).unwrap_or(0);
    push_kv_u64(&mut s, "wall_ns_per_round", per_round, true);
    match p.node_steps {
        Some(steps) => {
            push_kv_u64(&mut s, "node_steps", steps, true);
        }
        None => {
            let c = &p.counters;
            push_kv_u64(&mut s, "node_rounds", c.node_rounds, true);
            push_kv_u64(&mut s, "halted_scans", c.halted_scans, true);
            push_kv_u64(&mut s, "sparse_skips", c.sparse_skips, true);
            push_kv_u64(&mut s, "local_messages", c.local_messages, true);
            push_kv_u64(&mut s, "boundary_messages", c.boundary_messages, true);
            push_kv_u64(&mut s, "stamp_scans", c.stamp_scans, true);
        }
    }
    if let Some(sh) = &p.sharding {
        push_kv_u64(&mut s, "exec_shards", sh.shards as u64, true);
        push_kv_u64(&mut s, "cut_edges", sh.cut_edges as u64, true);
        push_kv_u64(
            &mut s,
            "shard_rounds_stepped",
            sh.shard_rounds_stepped,
            true,
        );
        push_kv_u64(
            &mut s,
            "shard_rounds_skipped",
            sh.shard_rounds_skipped,
            true,
        );
    }
    s.push_str(&format!("\"active_fraction\":{:.6},", p.active_fraction()));
    if p.curve.rounds.is_empty() {
        s.push_str("\"curve\":null");
    } else {
        s.push_str(&format!(
            "\"curve\":{{\"stride\":{},\"rounds\":{},\"active\":{},\"messages\":{}}}",
            p.curve.stride,
            json_array_u64(p.curve.rounds.iter().map(|&r| r as u64)),
            json_array_u64(p.curve.active.iter().map(|&a| a as u64)),
            json_array_u64(p.curve.messages.iter().copied()),
        ));
    }
    s.push('}');
    s
}

/// Serializes a report as the versioned `td-perf/v1` JSON document. The
/// writer is hand-rolled (the workspace is hermetic: no serde), emits only
/// integers, strings of known-safe characters, and fixed-precision
/// fractions, and is covered by a shape test plus a round-trip test
/// through the in-tree [`crate::json`] parser.
pub fn write_json(report: &PerfReport) -> String {
    let mut executors: Vec<String> = Vec::new();
    for p in &report.points {
        if !executors.contains(&p.executor) {
            executors.push(p.executor.clone());
        }
    }
    let mut s = header_json(
        report.threads,
        report.shards,
        report.seed,
        report.repeat,
        &executors,
    );
    s.push_str("\"points\":[\n");
    let fragments: Vec<String> = report.points.iter().map(point_json).collect();
    s.push_str(&fragments.join(",\n"));
    s.push_str("\n],\n\"derived\":{");
    let mut speedups: Vec<String> = Vec::new();
    for sc in REGISTRY {
        if let Some(x) = report.sparse_speedup(sc.name) {
            speedups.push(format!("\"sparse_speedup_{}\":{x:.3}", sc.name));
        }
        if let Some(x) = report.parallel_speedup(sc.name) {
            speedups.push(format!("\"parallel_speedup_{}\":{x:.3}", sc.name));
        }
    }
    s.push_str(&speedups.join(","));
    s.push_str("}\n}\n");
    s
}

/// Renders the human summary table `td perf` prints next to the JSON file.
pub fn summary_table(report: &PerfReport) -> String {
    let mut t = crate::Table::new(&[
        "scenario",
        "executor",
        "size",
        "n",
        "rounds",
        "messages",
        "wall ms",
        "active%",
        "sparse skips",
    ]);
    for p in &report.points {
        t.row(vec![
            p.scenario.to_string(),
            p.executor.clone(),
            p.size.to_string(),
            p.nodes.to_string(),
            p.rounds.to_string(),
            p.messages.to_string(),
            format!("{:.3}", p.wall_ns as f64 / 1e6),
            format!("{:.1}", 100.0 * p.active_fraction()),
            p.node_steps
                .map_or_else(|| p.counters.sparse_skips.to_string(), |_| "-".into()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_one(name: &str) -> PerfReport {
        let mut cfg = SweepConfig::quick();
        cfg.scenario = Some(name.to_string());
        run_sweep(&cfg).unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    #[test]
    fn registry_names_unique_and_findable() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate perf scenario names");
        for n in names {
            assert!(find(n).is_some());
        }
        assert!(find("no-such-perf-scenario").is_none());
        assert!(listing().contains("drain-wave"));
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        let mut cfg = SweepConfig::quick();
        cfg.scenario = Some("bogus".into());
        let err = run_sweep(&cfg).unwrap_err();
        assert!(err.contains("unknown perf scenario"), "{err}");
    }

    #[test]
    fn sizes_override_without_scenario_is_an_error() {
        // One size list across the registry would build absurd instances
        // (size units differ per scenario); run_sweep itself refuses, so
        // library callers are as safe as the CLI.
        let mut cfg = SweepConfig::quick();
        cfg.sizes = Some(vec![131_072]);
        let err = run_sweep(&cfg).unwrap_err();
        assert!(err.contains("needs a named scenario"), "{err}");
    }

    #[test]
    fn drain_wave_counters_tell_the_sparse_story() {
        let mut cfg = SweepConfig::quick();
        cfg.scenario = Some("drain-wave".into());
        cfg.sizes = Some(vec![2048]);
        let rep = run_sweep(&cfg).unwrap();
        let by = |ex: &str| rep.points.iter().find(|p| p.executor == ex).unwrap();
        let seq = by("sequential");
        let sparse = by("sharded(1,1)");
        // Bit-identical round/message counts…
        assert_eq!(seq.rounds, sparse.rounds);
        assert_eq!(seq.messages, sparse.messages);
        assert_eq!(seq.counters.node_rounds, sparse.counters.node_rounds);
        // …but the dense scan pays for every halted resident while the
        // sparse scheduler skips exactly the same node-rounds untouched.
        assert!(seq.counters.halted_scans > 0);
        assert_eq!(sparse.counters.halted_scans, 0);
        assert_eq!(seq.counters.halted_scans, sparse.counters.sparse_skips);
        // Boundary routing is visible on the multi-shard row.
        let sharded = by("sharded(2,2)");
        assert_eq!(
            sharded.counters.local_messages + sharded.counters.boundary_messages,
            sharded.messages
        );
    }

    #[test]
    fn every_scenario_runs_quick_and_serializes() {
        for sc in REGISTRY {
            // The churn and protocol scenarios are exercised at their
            // smallest rung; the drain wave at a tiny override.
            let mut cfg = SweepConfig::quick();
            cfg.scenario = Some(sc.name.to_string());
            if sc.name == "drain-wave" {
                cfg.sizes = Some(vec![512]);
            }
            let rep = run_sweep(&cfg).unwrap_or_else(|e| panic!("{}: {e}", sc.name));
            assert!(!rep.points.is_empty(), "{}", sc.name);
            for p in &rep.points {
                assert!(p.rounds > 0, "{}: zero rounds", sc.name);
                assert!(p.active_fraction() <= 1.0 + 1e-9, "{}", sc.name);
            }
            let json = write_json(&rep);
            assert!(json.contains(SCHEMA));
            assert!(json.contains(sc.name));
            assert!(json_shape_ok(&json), "{}: malformed JSON:\n{json}", sc.name);
            assert!(summary_table(&rep).contains(sc.name));
        }
    }

    #[test]
    fn churn_rows_report_sparse_node_steps() {
        let rep = quick_one("churn-assign");
        for p in &rep.points {
            let steps = p.node_steps.expect("churn rows carry node_steps");
            assert!(steps > 0, "{}", p.executor);
            // The wake-driven executor steps far fewer node-rounds than the
            // dense grid.
            assert!(p.active_fraction() < 1.0, "{}", p.executor);
        }
        // All three grid points agree on rounds/messages (checked inside
        // run_sweep, re-asserted here on the output).
        let r0 = (rep.points[0].rounds, rep.points[0].messages);
        for p in &rep.points {
            assert_eq!((p.rounds, p.messages), r0, "{}", p.executor);
        }
    }

    /// A tiny structural validator: balanced braces/brackets outside
    /// strings, no trailing commas before closers. Not a full parser, but
    /// enough to keep the hand-rolled writer honest.
    fn json_shape_ok(s: &str) -> bool {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut prev = ' ';
        for ch in s.chars() {
            if in_str {
                if ch == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match ch {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        if prev == ',' {
                            return false;
                        }
                        depth -= 1;
                        if depth < 0 {
                            return false;
                        }
                    }
                    _ => {}
                }
            }
            if !ch.is_whitespace() {
                prev = ch;
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn json_report_round_trips_with_header_fields() {
        // The header now records the repeat count and the resolved
        // executor grid (schema-additive); pin the whole document by
        // parsing it back with the in-tree JSON reader.
        let rep = quick_one("rotor");
        let doc = write_json(&rep);
        let parsed = crate::json::parse(&doc).unwrap();
        assert_eq!(parsed.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        assert_eq!(parsed.get("bench").and_then(|v| v.as_u64()), Some(10));
        assert_eq!(
            parsed.get("repeat").and_then(|v| v.as_u64()),
            Some(rep.repeat as u64)
        );
        let execs: Vec<&str> = parsed
            .get("executors")
            .and_then(|e| e.as_arr())
            .expect("executors array")
            .iter()
            .filter_map(|e| e.as_str())
            .collect();
        let points = parsed.get("points").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(points.len(), rep.points.len());
        for (j, p) in points.iter().zip(&rep.points) {
            assert_eq!(
                j.get("executor").and_then(|v| v.as_str()),
                Some(p.executor.as_str())
            );
            assert_eq!(j.get("rounds").and_then(|v| v.as_u64()), Some(p.rounds));
            assert_eq!(j.get("messages").and_then(|v| v.as_u64()), Some(p.messages));
            assert_eq!(
                j.get("wall_ns").and_then(|v| v.as_u64()),
                Some(p.wall_ns as u64)
            );
        }
        // The recorded grid is exactly what grid_labels resolves for the
        // same configuration — cache keys and report headers agree.
        let mut cfg = SweepConfig::quick();
        cfg.scenario = Some("rotor".into());
        assert_eq!(grid_labels(&cfg, "rotor"), execs);
    }

    #[test]
    fn grid_labels_cover_churn_and_oneshot_shapes() {
        let cfg = SweepConfig::default();
        assert_eq!(
            grid_labels(&cfg, "churn-orient"),
            vec!["churn(1,1)", "churn(4,1)", "churn(4,4)"]
        );
        assert_eq!(
            grid_labels(&cfg, "drain-wave"),
            vec!["sequential", "parallel(4)", "sharded(4,4)", "sharded(1,1)"]
        );
        // Colliding labels dedup, same as the executors actually run.
        let one = SweepConfig {
            threads: 1,
            shards: 1,
            ..SweepConfig::default()
        };
        assert_eq!(grid_labels(&one, "churn-assign"), vec!["churn(1,1)"]);
        assert_eq!(
            grid_labels(&one, "rotor"),
            vec!["sequential", "parallel(1)", "sharded(1,1)"]
        );
    }

    #[test]
    fn canonical_metrics_are_executor_prefixed_and_deterministic() {
        let rep = quick_one("rotor");
        let seq = rep
            .points
            .iter()
            .find(|p| p.executor == "sequential")
            .unwrap();
        let m = seq.canonical_metrics();
        assert!(m
            .iter()
            .any(|(k, v)| k == "sequential/rounds" && *v == seq.rounds));
        assert!(m.iter().all(|(k, _)| k.starts_with("sequential/")));
        assert!(!m.iter().any(|(k, _)| k.ends_with("/wall_ns")));
        let churn = quick_one("churn-assign");
        let c = &churn.points[0];
        assert!(c
            .canonical_metrics()
            .iter()
            .any(|(k, _)| k.ends_with("/node_steps")));
    }

    #[test]
    fn sparse_speedup_reads_the_largest_size() {
        let mut cfg = SweepConfig::quick();
        cfg.scenario = Some("drain-wave".into());
        cfg.sizes = Some(vec![512, 1024]);
        let rep = run_sweep(&cfg).unwrap();
        let s = rep.sparse_speedup("drain-wave").expect("both rows present");
        assert!(s > 0.0);
        assert!(rep.sparse_speedup("no-such").is_none());
        let p = rep
            .parallel_speedup("drain-wave")
            .expect("parallel row present");
        assert!(p > 0.0);
        assert!(rep.parallel_speedup("no-such").is_none());
    }
}
