//! Shared harness code for the reproduction experiments: the [`scenario`]
//! registry (named workloads behind one interface), the parametric
//! [`spec`] workload generator suite plus its differential [`fuzz`] plane,
//! the long-running [`serve`] daemon with its open-loop load generator,
//! workload builders with controlled (Δ, L, C, S) parameters, aligned
//! table printing, and growth-rate fitting for the shape checks in
//! EXPERIMENTS.md.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use td_assign::AssignmentInstance;
use td_core::TokenGame;
use td_graph::CsrGraph;

pub mod churn;
pub mod compare;
pub mod exp;
pub mod fuzz;
pub mod json;
pub mod perf;
pub mod plot;
pub mod scenario;
pub mod serve;
pub mod spec;
pub mod trace;

pub use churn::{ChurnReport, ChurnScenario};
pub use compare::{CompareConfig, CompareReport, CompareRow};
pub use exp::{ExpConfig, ExperimentDef, Manifest};
pub use perf::{PerfPoint, PerfReport, SweepConfig};
pub use scenario::{Scenario, ScenarioKind, ScenarioReport};
pub use serve::{ServeConfig, ServeReport};
pub use spec::{FamilyKind, WorkloadInstance, WorkloadSpec};
pub use trace::{Trace, TraceSource};

/// Workload builders with controlled parameters.
pub mod workloads {
    use super::*;

    /// A layered token dropping game with `levels + 1` levels, per-level
    /// width `4·delta` (enough room for contention), down-degree `delta`,
    /// and ~50% token density.
    pub fn layered_game(delta: usize, levels: usize, seed: u64) -> TokenGame {
        let mut rng = SmallRng::seed_from_u64(seed);
        let width = 4 * delta.max(2);
        TokenGame::random(&vec![width; levels + 1], delta, 0.5, &mut rng)
    }

    /// A 3-level game (levels {0,1,2}) with down-degree `delta`.
    pub fn three_level_game(delta: usize, seed: u64) -> TokenGame {
        let mut rng = SmallRng::seed_from_u64(seed);
        let width = 3 * delta.max(2);
        TokenGame::random(&[width, width, width], delta, 0.6, &mut rng)
    }

    /// A random `d`-regular graph with `factor·d` nodes (rounded even).
    pub fn regular_graph(d: usize, factor: usize, seed: u64) -> CsrGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut n = (factor * d).max(d + 2);
        if n * d % 2 == 1 {
            n += 1;
        }
        td_graph::gen::random::random_regular(n, d, &mut rng, 500)
            .expect("configuration model converges")
    }

    /// An Erdős–Rényi graph with average degree `avg_deg`.
    pub fn gnm_graph(n: usize, avg_deg: usize, seed: u64) -> CsrGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        td_graph::gen::random::gnm(n, n * avg_deg / 2, &mut rng)
    }

    /// A bipartite assignment instance with customer degree exactly `c` and
    /// expected server degree `s_avg` over `ns` servers.
    pub fn assignment_instance(c: usize, s_avg: usize, ns: usize, seed: u64) -> AssignmentInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let nc = (s_avg * ns) / c.max(1);
        AssignmentInstance::random(nc.max(1), ns, c..=c, &mut rng)
    }

    /// A uniform random assignment instance: `nc` customers picking 1–3
    /// candidate servers uniformly over `ns` servers.
    pub fn uniform_assignment(nc: usize, ns: usize, seed: u64) -> AssignmentInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        AssignmentInstance::random(nc, ns, 1..=3, &mut rng)
    }

    /// A Zipf-skewed assignment instance (exponent `alpha`): popular servers
    /// attract most of the 1–3 candidate choices — the "hot server" workload
    /// of the load-balancing example, the server-farm scenario, and E8.
    pub fn skewed_assignment(nc: usize, ns: usize, alpha: f64, seed: u64) -> AssignmentInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        AssignmentInstance::skewed(nc, ns, 1..=3, alpha, &mut rng)
    }

    /// A bipartite graph for matching reductions: `nc` customers of degree
    /// up to `d` over `nc` servers.
    pub fn matching_graph(nc: usize, d: usize, seed: u64) -> CsrGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        td_graph::gen::random::random_bipartite(nc, nc, 1..=d, &mut rng)
    }

    /// The Section 1.1 "propagation chain" adversary: a path `v0 … v_{n-1}`
    /// with `k` extra leaves hanging off `v0`. Returns the graph and an
    /// initial orientation in which all path edges point toward lower ids
    /// and all leaf edges point into `v0` — so `v0` starts with load
    /// `k + 1`, and resolving the resulting unhappiness must cascade along
    /// the entire path, one flip at a time.
    pub fn cascade_path(n: usize, k: usize) -> (CsrGraph, td_orient::Orientation) {
        assert!(n >= 2);
        let mut b = td_graph::GraphBuilder::new(n + k);
        for i in 1..n {
            b.add_edge(td_graph::NodeId::from(i - 1), td_graph::NodeId::from(i))
                .unwrap();
        }
        for j in 0..k {
            b.add_edge(td_graph::NodeId(0), td_graph::NodeId::from(n + j))
                .unwrap();
        }
        let g = b.build().unwrap();
        let mut o = td_orient::Orientation::unoriented(&g);
        for (e, u, v) in g.edge_list() {
            let head = if v.idx() >= n {
                u // leaf edges point into the path end (v0)
            } else {
                u.min(v)
            };
            o.orient(&g, e, head);
        }
        (g, o)
    }
}

/// Minimal aligned-table printer for the `repro` binary.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Fits `y ≈ a · x^b` by least squares on (ln x, ln y) and returns the
/// exponent `b`. Points with `y == 0` are dropped. Returns 0.0 if fewer
/// than two usable points remain.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> f64 {
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|&(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

/// Mean of a slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Max of a slice.
pub fn max(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_fit_recovers_exponent() {
        let xs: Vec<f64> = (1..=6).map(|x| x as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(2.0)).collect();
        let b = fit_power_law(&xs, &ys);
        assert!((b - 2.0).abs() < 1e-9, "b = {b}");
    }

    #[test]
    fn power_law_fit_handles_degenerate() {
        assert_eq!(fit_power_law(&[1.0], &[2.0]), 0.0);
        assert_eq!(fit_power_law(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["10".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains(" a  bbbb"));
        assert!(s.contains("10     2"));
    }

    #[test]
    fn workloads_have_requested_shape() {
        let g = workloads::regular_graph(4, 10, 1);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        let game = workloads::three_level_game(3, 2);
        assert_eq!(game.height(), 2);
        let inst = workloads::assignment_instance(3, 8, 10, 3);
        assert_eq!(inst.max_customer_degree(), 3);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(max(&[1.0, 5.0, 3.0]), 5.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
