//! The **mass randomized differential fuzz plane**: seeded
//! [`WorkloadSpec`]s driven through every protocol stack and executor, with
//! each run cross-checked four ways —
//!
//! 1. **verifier acceptance** — every output passes the family's verifier
//!    (rules 1–3 + dynamics replay, orientation stability, assignment
//!    stability / k-boundedness), after every churn event on live traces;
//! 2. **executor differential** — the sequential executor and the
//!    pinned-worker sharded engine, both as `parallel(T)` and at explicit
//!    shard grids (and, on churn traces, incremental repair vs full
//!    recompute) must be *bit-identical*: same outputs, same rounds, same
//!    message counts;
//! 3. **metamorphic relabeling** — re-running on a seeded node relabeling
//!    of the same instance must still verify, with label-invariant
//!    structure (node/edge/token counts, degree multiset) preserved;
//! 4. **seed-independent structural stats** — for *any* seed, the family's
//!    generator contract holds (a `d`-regular spec is exactly d-regular, a
//!    small-world spec has exactly `n·k/2` edges, a hypercube is exactly
//!    `dim`-regular, …).
//!
//! Every failure is reported as an `Err(String)` whose caller prints the
//! self-contained repro line [`repro_line`] (`td fuzz --spec '<spec>'`);
//! panics inside protocol or verifier code are caught and converted, so one
//! bad spec never takes down the whole fuzz run.

use crate::spec::{WorkloadInstance, WorkloadSpec, FAMILIES};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use td_assign::protocol::run_distributed_assignment;
use td_assign::repair::AssignChurnEngine;
use td_assign::AssignmentInstance;
use td_balance::{total_of, BalanceInstance, ExecPoint};
use td_core::{proposal, TokenGame};
use td_graph::{CsrGraph, NodeId};
use td_local::churn::{ChurnEvent, RepairMode, RepairStats};
use td_local::Simulator;
use td_orient::protocol::run_distributed;
use td_orient::repair::OrientChurnEngine;
use td_orient::Orientation;

/// What one clean fuzz check measured (the sequential run's numbers).
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// Nodes of the built instance (customers + servers for assignments).
    pub nodes: usize,
    /// Edges / adjacency entries of the built instance.
    pub edges: usize,
    /// Rounds of the sequential reference run (accumulated over a churn
    /// trace).
    pub rounds: u64,
    /// Messages of the sequential reference run.
    pub messages: u64,
    /// Executor / mode grid points that were compared bit-for-bit against
    /// the reference (not counting the reference itself).
    pub compared: usize,
}

/// The self-contained repro command for a spec.
pub fn repro_line(spec: &WorkloadSpec) -> String {
    format!("td fuzz --spec '{spec}'")
}

/// A deterministic fuzz corpus: `count` specs cycling through every family,
/// walking each family's size ladder and a small parameter rotation, with
/// per-spec seeds derived from `base_seed`. Same arguments, same corpus.
pub fn corpus(count: usize, base_seed: u64) -> Vec<WorkloadSpec> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let f = &FAMILIES[i % FAMILIES.len()];
        let v = i / FAMILIES.len();
        let vu = v as u32;
        let mut spec = WorkloadSpec::new(f.name)
            .expect("registered family")
            .with_size(f.size_ladder[v % f.size_ladder.len()])
            .with_seed(base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)));
        spec = match f.name {
            "regular" => spec.with_param("d", 3 + (vu % 2)),
            "layered" => spec
                .with_param("delta", 2 + (vu % 3))
                .with_param("density_pct", 40 + 10 * (vu % 4)),
            "hourglass" => spec.with_param("delta", 2 + (vu % 2)),
            "small-world" => spec.with_param("p_pct", 5 + 10 * (vu % 3)),
            "power-law" => spec.with_param("m", 1 + (vu % 3)),
            // The exact protocol (bound = 0) always pays its full O(C·S⁴)
            // budget, so the corpus runs it only at the smallest size and
            // uses the 2-bounded relaxation everywhere else.
            "zipf-cluster" => spec
                .with_param("clusters", 1 + (vu % 4))
                .with_param("bound", 2),
            "uniform-assign" => {
                if v.is_multiple_of(8) {
                    spec.with_size(3).with_param("bound", 0)
                } else {
                    spec.with_param("bound", 2)
                }
            }
            "churn-orient" => spec.with_param("d", 3 + (vu % 2)),
            "churn-assign" => spec.with_param("cap_w", 1 + (vu % 3)),
            _ => spec,
        };
        out.push(spec);
    }
    out
}

/// Runs the full differential + metamorphic check for one spec. `Err`
/// carries a human-readable failure description (panics inside protocol or
/// verifier code included); print [`repro_line`] next to it.
///
/// ```
/// use td_bench::fuzz;
/// use td_bench::spec::WorkloadSpec;
///
/// let spec = WorkloadSpec::parse("rotor:size=4:seed=1").unwrap();
/// let rep = fuzz::check(&spec).expect("rotor at width 4 fuzzes clean");
/// assert!(rep.compared >= 3); // executor/mode grid points vs the reference
/// assert_eq!(fuzz::repro_line(&spec), "td fuzz --spec 'rotor:size=4:seed=1'");
/// ```
pub fn check(spec: &WorkloadSpec) -> Result<FuzzReport, String> {
    let spec = spec.clone();
    catch_unwind(AssertUnwindSafe(move || check_inner(&spec)))
        .unwrap_or_else(|p| Err(format!("panicked: {}", panic_message(p.as_ref()))))
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs the churn differential (incremental vs full recompute, thread ×
/// shard grid, metamorphic relabeling) for a *provided* event stream
/// instead of the spec's generated mix — the fuzz-plane consumer of
/// `td trace replay`. The spec names the base instance; the trace's events
/// replace the generated ones. Panics are caught like [`check`].
pub fn check_churn_trace(spec: &WorkloadSpec, events: &[ChurnEvent]) -> Result<FuzzReport, String> {
    let spec = spec.clone();
    let events = events.to_vec();
    catch_unwind(AssertUnwindSafe(move || {
        match spec.build().map_err(|e| format!("build: {e}"))? {
            WorkloadInstance::OrientChurn { graph, .. } => check_orient_churn(&spec, graph, events),
            WorkloadInstance::AssignChurn { base, .. } => check_assign_churn(&spec, base, events),
            _ => Err(format!(
                "'{}' is not a churn family; traces replay only through churn pipelines",
                spec.family
            )),
        }
    }))
    .unwrap_or_else(|p| Err(format!("panicked: {}", panic_message(p.as_ref()))))
}

fn check_inner(spec: &WorkloadSpec) -> Result<FuzzReport, String> {
    match spec.build().map_err(|e| format!("build: {e}"))? {
        WorkloadInstance::Game(game) => check_game(spec, game),
        WorkloadInstance::Orientation(graph) => check_orientation(spec, graph),
        WorkloadInstance::Assignment { inst, bound } => check_assignment(spec, inst, bound),
        WorkloadInstance::OrientChurn { graph, trace } => check_orient_churn(spec, graph, trace),
        WorkloadInstance::AssignChurn { base, trace } => check_assign_churn(spec, base, trace),
    }
}

/// A seeded permutation of `0..n` (the metamorphic relabeling).
fn permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut SmallRng::seed_from_u64(seed ^ 0x5eed_ab1e));
    perm
}

/// `g` with node `v` renamed to `perm[v]`.
fn relabel_graph(g: &CsrGraph, perm: &[u32]) -> CsrGraph {
    let edges: Vec<(u32, u32)> = g
        .edge_list()
        .map(|(_, u, v)| (perm[u.idx()], perm[v.idx()]))
        .collect();
    CsrGraph::from_edges(g.num_nodes(), &edges).expect("relabeling preserves simplicity")
}

fn sorted_degrees(g: &CsrGraph) -> Vec<usize> {
    let mut d: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    d.sort_unstable();
    d
}

/// The work-count half of every differential: `got` must report exactly the
/// reference run's rounds and message count.
fn compare_counts(label: &str, got: (u64, u64), reference: (u64, u64)) -> Result<(), String> {
    if got == reference {
        Ok(())
    } else {
        Err(format!(
            "{label}: rounds/messages {}/{} != reference {}/{}",
            got.0, got.1, reference.0, reference.1
        ))
    }
}

// ---------------------------------------------------- balance protocols ---

/// Runs the balance-protocol differential for one spec: every registered
/// balancer ([`td_balance::registry`]) on the spec's projected node-load
/// workload ([`crate::compare::balance_workload`]), cross-checked three
/// ways — **verifier acceptance** (each protocol's own verifier accepts
/// every run: balanced, token-conserving, potential books to the token),
/// **executor differential** (the sequential reference vs parallel and
/// thread × shard grid points must produce bit-identical [`BalanceRun`]s,
/// fingerprints included), and **metamorphic relabeling** (a seeded node
/// relabeling of the instance, loads and churn events carried along, must
/// still verify, balance, and conserve the token total). Panics are caught
/// like [`check`].
///
/// [`BalanceRun`]: td_balance::BalanceRun
///
/// ```
/// use td_bench::fuzz;
/// use td_bench::spec::WorkloadSpec;
///
/// let spec = WorkloadSpec::parse("rotor:size=4:seed=1").unwrap();
/// let rep = fuzz::check_balance(&spec).expect("rotor at width 4 balances clean");
/// assert!(rep.compared >= 4); // grid points + relabeled twin, per protocol
/// ```
pub fn check_balance(spec: &WorkloadSpec) -> Result<FuzzReport, String> {
    let spec = spec.clone();
    catch_unwind(AssertUnwindSafe(move || check_balance_inner(&spec)))
        .unwrap_or_else(|p| Err(format!("panicked: {}", panic_message(p.as_ref()))))
}

fn check_balance_inner(spec: &WorkloadSpec) -> Result<FuzzReport, String> {
    let (graph, events) = crate::compare::balance_workload(spec)?;
    let inst = BalanceInstance::seeded(graph, spec.seed);
    let nodes = inst.graph.num_nodes();
    let edges = inst.graph.num_edges();

    // The relabeled twin: node v becomes perm[v], loads and events carried
    // along. Generated traces only move edges (insert/delete/flip), which
    // relabel cleanly; token arrivals are label-free too.
    let perm = permutation(nodes, spec.seed);
    let r_graph = relabel_graph(&inst.graph, &perm);
    let mut r_load = vec![0u32; nodes];
    for (v, &l) in inst.load.iter().enumerate() {
        r_load[perm[v] as usize] = l;
    }
    let r_inst = BalanceInstance::new(r_graph, r_load);
    if sorted_degrees(&inst.graph) != sorted_degrees(&r_inst.graph) {
        return Err("relabeling changed the degree multiset".into());
    }
    let r_events: Vec<ChurnEvent> = events.iter().map(|ev| relabel_event(ev, &perm)).collect();

    let grid = [
        ExecPoint {
            threads: 3,
            shards: 1,
        },
        ExecPoint {
            threads: 2,
            shards: 2,
        },
        ExecPoint {
            threads: 4,
            shards: 3,
        },
    ];
    let mut rounds = 0u64;
    let mut messages = 0u64;
    let mut compared = 0usize;
    for proto in td_balance::registry() {
        let name = proto.name();
        let base = proto
            .run(&inst, spec.seed, ExecPoint::sequential(), &events)
            .map_err(|e| format!("balance/{name} sequential: {e}"))?;
        rounds += base.rounds;
        messages += base.messages;
        for exec in grid {
            let run = proto
                .run(&inst, spec.seed, exec, &events)
                .map_err(|e| format!("balance/{name} at {exec:?}: {e}"))?;
            compare_counts(
                &format!("balance/{name} at {}x{}", exec.threads, exec.shards),
                (run.rounds, run.messages),
                (base.rounds, base.messages),
            )?;
            if run != base {
                return Err(format!(
                    "balance/{name} at {}x{} diverged: fingerprint {:016x} != {:016x}",
                    exec.threads, exec.shards, run.fingerprint, base.fingerprint
                ));
            }
            compared += 1;
        }
        // The twin takes its own trajectory (roles follow ids) but must
        // still verify, balance, and hold the original's token total.
        let twin = proto
            .run(&r_inst, spec.seed, ExecPoint::sequential(), &r_events)
            .map_err(|e| format!("balance/{name} relabeled: {e}"))?;
        if total_of(&twin.loads) != total_of(&base.loads) {
            return Err(format!(
                "balance/{name} relabeled: token total {} != {}",
                total_of(&twin.loads),
                total_of(&base.loads)
            ));
        }
        if twin.max_gap > 1 {
            return Err(format!(
                "balance/{name} relabeled: final max edge gap {} > 1",
                twin.max_gap
            ));
        }
        compared += 1;
    }
    Ok(FuzzReport {
        nodes,
        edges,
        rounds,
        messages,
        compared,
    })
}

/// `ev` with every node id renamed through `perm`.
fn relabel_event(ev: &ChurnEvent, perm: &[u32]) -> ChurnEvent {
    let p = |v: NodeId| NodeId(perm[v.idx()]);
    match *ev {
        ChurnEvent::EdgeInsert { u, v } => ChurnEvent::EdgeInsert { u: p(u), v: p(v) },
        ChurnEvent::EdgeDelete { u, v } => ChurnEvent::EdgeDelete { u: p(u), v: p(v) },
        ChurnEvent::EdgeFlip { u, v } => ChurnEvent::EdgeFlip { u: p(u), v: p(v) },
        ChurnEvent::TokenArrive(v) => ChurnEvent::TokenArrive(p(v)),
        ChurnEvent::TokenDrop(v) => ChurnEvent::TokenDrop(p(v)),
        ref other => other.clone(),
    }
}

// ------------------------------------------------------------------ games ---

fn check_game(spec: &WorkloadSpec, game: TokenGame) -> Result<FuzzReport, String> {
    // Seed-independent structural stats.
    match spec.family {
        "layered" => {
            let levels = (spec.param("levels") as usize).clamp(1, 8);
            let width = (spec.size as usize).max(2);
            if game.height() != levels as u32 {
                return Err(format!(
                    "layered: height {} != levels {levels}",
                    game.height()
                ));
            }
            let bottom = game.levels().iter().filter(|&&l| l == 0).count();
            if bottom != width {
                return Err(format!("layered: level-0 width {bottom} != {width}"));
            }
        }
        "hourglass" if game.height() != 4 => {
            return Err(format!("hourglass: height {} != 4", game.height()));
        }
        "rotor" => {
            // Deterministic: another seed must build the identical instance.
            let rebuilt = spec
                .clone()
                .with_seed(spec.seed ^ 1)
                .build()
                .map_err(|e| format!("rotor: rebuild failed: {e}"))?;
            let WorkloadInstance::Game(again) = rebuilt else {
                return Err("rotor: rebuild changed kind".into());
            };
            if again.levels() != game.levels() || again.tokens() != game.tokens() {
                return Err("rotor: instance depends on the seed".into());
            }
        }
        _ => {}
    }

    let seq = proposal::run_on_simulator(&game, &Simulator::sequential());
    td_core::verify_solution(&game, &seq.solution).map_err(|e| format!("verifier: {e:?}"))?;
    td_core::verify_dynamics(&game, &seq.log).map_err(|e| format!("dynamics: {e:?}"))?;

    let grid: [(&str, Simulator); 3] = [
        ("parallel(3)", Simulator::parallel(3)),
        ("sharded(2,2)", Simulator::sharded(2, 2)),
        ("sharded(4,2)", Simulator::sharded(4, 2)),
    ];
    for (name, sim) in &grid {
        let run = proposal::run_on_simulator(&game, sim);
        if run.solution != seq.solution || run.log != seq.log {
            return Err(format!("{name}: output diverges from sequential"));
        }
        compare_counts(
            name,
            (run.comm_rounds as u64, run.messages),
            (seq.comm_rounds as u64, seq.messages),
        )?;
    }

    // Metamorphic relabeling: permute node ids, rerun, re-verify.
    let perm = permutation(game.num_nodes(), spec.seed);
    let rg = relabel_graph(game.graph(), &perm);
    let mut level = vec![0u32; game.num_nodes()];
    let mut token = vec![false; game.num_nodes()];
    for v in 0..game.num_nodes() {
        level[perm[v] as usize] = game.level(NodeId::from(v));
        token[perm[v] as usize] = game.has_token(NodeId::from(v));
    }
    let relabeled =
        TokenGame::new(rg, level, token).map_err(|e| format!("relabeled instance invalid: {e}"))?;
    if relabeled.token_count() != game.token_count() {
        return Err("relabeling changed the token count".into());
    }
    let rl = proposal::run_on_simulator(&relabeled, &Simulator::sequential());
    td_core::verify_solution(&relabeled, &rl.solution)
        .map_err(|e| format!("relabeled verifier: {e:?}"))?;
    td_core::verify_dynamics(&relabeled, &rl.log)
        .map_err(|e| format!("relabeled dynamics: {e:?}"))?;

    Ok(FuzzReport {
        nodes: game.num_nodes(),
        edges: game.graph().num_edges(),
        rounds: seq.comm_rounds as u64,
        messages: seq.messages,
        compared: grid.len() + 1,
    })
}

// ----------------------------------------------------------- orientations ---

fn check_orientation(spec: &WorkloadSpec, graph: CsrGraph) -> Result<FuzzReport, String> {
    // Seed-independent structural stats.
    let (n, m) = (graph.num_nodes(), graph.num_edges());
    match spec.family {
        "regular" => {
            let d = (spec.param("d") as usize).clamp(2, 4);
            if !graph.nodes().all(|v| graph.degree(v) == d) {
                return Err(format!("regular: not {d}-regular"));
            }
        }
        "grid" => {
            let side = (spec.size as usize).max(2);
            if n != side * side || m != 2 * side * (side - 1) {
                return Err(format!("grid: n={n}, m={m} for side {side}"));
            }
        }
        "torus" => {
            let side = (spec.size as usize).max(3);
            if n != side * side || !graph.nodes().all(|v| graph.degree(v) == 4) {
                return Err(format!("torus: n={n} not 4-regular for side {side}"));
            }
        }
        "hypercube" => {
            let dim = (spec.size as usize).clamp(1, 10);
            if n != 1 << dim || !graph.nodes().all(|v| graph.degree(v) == dim) {
                return Err(format!("hypercube: n={n} not {dim}-regular"));
            }
        }
        _ => {}
    }

    let seq = run_distributed(&graph, &Simulator::sequential());
    seq.orientation
        .verify_stable(&graph)
        .map_err(|e| format!("verifier: {e:?}"))?;

    let grid: [(&str, Simulator); 2] = [
        ("parallel(3)", Simulator::parallel(3)),
        ("sharded(4,2)", Simulator::sharded(4, 2)),
    ];
    for (name, sim) in &grid {
        let run = run_distributed(&graph, sim);
        if run.orientation != seq.orientation {
            return Err(format!("{name}: orientation diverges from sequential"));
        }
        compare_counts(
            name,
            (run.comm_rounds as u64, run.messages),
            (seq.comm_rounds as u64, seq.messages),
        )?;
    }

    // Metamorphic relabeling.
    let perm = permutation(n, spec.seed);
    let rg = relabel_graph(&graph, &perm);
    if sorted_degrees(&rg) != sorted_degrees(&graph) {
        return Err("relabeling changed the degree multiset".into());
    }
    let rl = run_distributed(&rg, &Simulator::sequential());
    rl.orientation
        .verify_stable(&rg)
        .map_err(|e| format!("relabeled verifier: {e:?}"))?;

    Ok(FuzzReport {
        nodes: n,
        edges: m,
        rounds: seq.comm_rounds as u64,
        messages: seq.messages,
        compared: grid.len() + 1,
    })
}

// ------------------------------------------------------------ assignments ---

fn check_assignment(
    spec: &WorkloadSpec,
    inst: AssignmentInstance,
    bound: Option<u32>,
) -> Result<FuzzReport, String> {
    // Seed-independent structural stats.
    let ns = (spec.size as usize).max(2);
    let nc = (spec.param("cps") as usize).max(1) * ns;
    if inst.num_servers() != ns || inst.num_customers() != nc {
        return Err(format!(
            "instance shape ({}, {}) != requested ({nc}, {ns})",
            inst.num_customers(),
            inst.num_servers()
        ));
    }
    for c in 0..nc {
        let d = inst.degree_of(c);
        if !(1..=3).contains(&d) {
            return Err(format!("customer {c} degree {d} outside 1..=3"));
        }
    }

    let verify = |a: &td_assign::Assignment, label: &str| -> Result<(), String> {
        match bound {
            Some(k) => a
                .verify_k_bounded(&inst, k)
                .map_err(|e| format!("{label}: {e:?}")),
            None => a
                .verify_stable(&inst)
                .map_err(|e| format!("{label}: {e:?}")),
        }
    };
    let seq = run_distributed_assignment(&inst, bound, &Simulator::sequential());
    verify(&seq.assignment, "verifier")?;

    let grid: [(&str, Simulator); 2] = [
        ("parallel(3)", Simulator::parallel(3)),
        ("sharded(3,2)", Simulator::sharded(3, 2)),
    ];
    for (name, sim) in &grid {
        let run = run_distributed_assignment(&inst, bound, sim);
        if run.assignment != seq.assignment {
            return Err(format!("{name}: assignment diverges from sequential"));
        }
        compare_counts(
            name,
            (run.comm_rounds as u64, run.messages),
            (seq.comm_rounds as u64, seq.messages),
        )?;
    }

    // Metamorphic relabeling: permute server ids and customer order.
    let sperm = permutation(ns, spec.seed);
    let cperm = permutation(nc, spec.seed ^ 0x00c0_ffee);
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nc];
    for c in 0..nc {
        lists[cperm[c] as usize] = inst
            .servers_of(c)
            .iter()
            .map(|&s| sperm[s as usize])
            .collect();
    }
    let rinst = AssignmentInstance::new(ns, &lists);
    let rl = run_distributed_assignment(&rinst, bound, &Simulator::sequential());
    match bound {
        Some(k) => rl
            .assignment
            .verify_k_bounded(&rinst, k)
            .map_err(|e| format!("relabeled verifier: {e:?}"))?,
        None => rl
            .assignment
            .verify_stable(&rinst)
            .map_err(|e| format!("relabeled verifier: {e:?}"))?,
    }

    let edges = (0..nc).map(|c| inst.degree_of(c)).sum();
    Ok(FuzzReport {
        nodes: nc + ns,
        edges,
        rounds: seq.comm_rounds as u64,
        messages: seq.messages,
        compared: grid.len() + 1,
    })
}

// ------------------------------------------------------------ churn traces ---

/// Runs a full orientation churn trace: stabilize, then apply every event,
/// verifying stability after each. Returns accumulated stats plus the final
/// solution fingerprint (head id per edge, in edge order).
pub(crate) fn orient_trace_run(
    graph: &CsrGraph,
    trace: &[ChurnEvent],
    mode: RepairMode,
    threads: usize,
    shards: usize,
) -> Result<(RepairStats, Vec<u32>), String> {
    let mut eng = OrientChurnEngine::new(graph.clone(), Orientation::toward_larger(graph), mode)
        .with_threads(threads)
        .with_shards(shards);
    let mut total = RepairStats::accumulator();
    total.absorb(eng.stabilize());
    eng.verify()
        .map_err(|e| format!("initial stabilization: {e:?}"))?;
    for (i, ev) in trace.iter().enumerate() {
        total.absorb(
            eng.apply(ev)
                .map_err(|e| format!("event {i} {ev:?}: {e}"))?,
        );
        eng.verify()
            .map_err(|e| format!("after event {i}: {e:?}"))?;
    }
    let fp: Vec<u32> = eng
        .graph()
        .edges()
        .map(|e| eng.orientation().head(e).expect("complete").0)
        .collect();
    Ok((total, fp))
}

fn check_orient_churn(
    spec: &WorkloadSpec,
    graph: CsrGraph,
    trace: Vec<ChurnEvent>,
) -> Result<FuzzReport, String> {
    // Seed-independent structural stats.
    let n = graph.num_nodes();
    match spec.family {
        "small-world" => {
            let k = ((spec.param("k") as usize).max(2) / 2) * 2;
            if graph.num_edges() != n * k / 2 {
                return Err(format!(
                    "small-world: {} edges != n*k/2 = {}",
                    graph.num_edges(),
                    n * k / 2
                ));
            }
        }
        "power-law" => {
            let m = (spec.param("m") as usize).clamp(1, 4);
            let expect = m * (m + 1) / 2 + (n - m - 1) * m;
            if graph.num_edges() != expect {
                return Err(format!(
                    "power-law: {} edges != exact BA count {expect}",
                    graph.num_edges()
                ));
            }
        }
        "churn-orient" => {
            let d = (spec.param("d") as usize).clamp(2, 6);
            if !graph.nodes().all(|v| graph.degree(v) == d) {
                return Err(format!("churn-orient: base graph not {d}-regular"));
            }
        }
        _ => {}
    }

    let (base_stats, base_fp) = orient_trace_run(&graph, &trace, RepairMode::Incremental, 1, 1)?;
    let (rec_stats, rec_fp) = orient_trace_run(&graph, &trace, RepairMode::FullRecompute, 1, 1)?;
    if rec_fp != base_fp {
        return Err("full recompute diverges from incremental repair".into());
    }
    compare_counts(
        "full recompute",
        (rec_stats.rounds as u64, rec_stats.messages),
        (base_stats.rounds as u64, base_stats.messages),
    )?;
    for (threads, shards) in [(2, 1), (2, 2)] {
        let (stats, fp) =
            orient_trace_run(&graph, &trace, RepairMode::Incremental, threads, shards)?;
        if fp != base_fp || stats != base_stats {
            return Err(format!("threads {threads} x shards {shards} diverges"));
        }
    }

    // Metamorphic relabeling: permute node ids in the graph *and* the trace.
    let perm = permutation(n, spec.seed);
    let rg = relabel_graph(&graph, &perm);
    let rtrace: Vec<ChurnEvent> = trace
        .iter()
        .map(|ev| match *ev {
            ChurnEvent::EdgeFlip { u, v } => ChurnEvent::EdgeFlip {
                u: NodeId(perm[u.idx()]),
                v: NodeId(perm[v.idx()]),
            },
            ChurnEvent::EdgeInsert { u, v } => ChurnEvent::EdgeInsert {
                u: NodeId(perm[u.idx()]),
                v: NodeId(perm[v.idx()]),
            },
            ChurnEvent::EdgeDelete { u, v } => ChurnEvent::EdgeDelete {
                u: NodeId(perm[u.idx()]),
                v: NodeId(perm[v.idx()]),
            },
            ref other => other.clone(),
        })
        .collect();
    let (_, rfp) = orient_trace_run(&rg, &rtrace, RepairMode::Incremental, 1, 1)?;
    if rfp.len() != base_fp.len() {
        return Err("relabeled trace changed the final edge count".into());
    }

    Ok(FuzzReport {
        nodes: n,
        edges: graph.num_edges(),
        rounds: base_stats.rounds as u64,
        messages: base_stats.messages,
        compared: 4,
    })
}

/// Runs a full assignment churn trace (see [`orient_trace_run`]).
pub(crate) fn assign_trace_run(
    base: &AssignmentInstance,
    trace: &[ChurnEvent],
    mode: RepairMode,
    threads: usize,
    shards: usize,
) -> Result<(RepairStats, Vec<u32>), String> {
    let mut eng = AssignChurnEngine::new(base, mode)
        .with_threads(threads)
        .with_shards(shards);
    let mut total = RepairStats::accumulator();
    total.absorb(eng.stabilize());
    eng.verify()
        .map_err(|e| format!("initial stabilization: {e:?}"))?;
    for (i, ev) in trace.iter().enumerate() {
        total.absorb(
            eng.apply(ev)
                .map_err(|e| format!("event {i} {ev:?}: {e}"))?,
        );
        eng.verify()
            .map_err(|e| format!("after event {i}: {e:?}"))?;
    }
    let fp: Vec<u32> = eng
        .assignment_vector()
        .iter()
        .map(|a| a.map_or(0, |s| s + 1))
        .collect();
    Ok((total, fp))
}

fn check_assign_churn(
    spec: &WorkloadSpec,
    base: AssignmentInstance,
    trace: Vec<ChurnEvent>,
) -> Result<FuzzReport, String> {
    let ns = (spec.size as usize).max(3);
    if base.num_servers() != ns || base.num_customers() != 2 * ns {
        return Err("churn-assign: base instance shape drifted".into());
    }

    let (base_stats, base_fp) = assign_trace_run(&base, &trace, RepairMode::Incremental, 1, 1)?;
    let (rec_stats, rec_fp) = assign_trace_run(&base, &trace, RepairMode::FullRecompute, 1, 1)?;
    if rec_fp != base_fp {
        return Err("full recompute diverges from incremental repair".into());
    }
    compare_counts(
        "full recompute",
        (rec_stats.rounds as u64, rec_stats.messages),
        (base_stats.rounds as u64, base_stats.messages),
    )?;
    for (threads, shards) in [(2, 1), (2, 2)] {
        let (stats, fp) =
            assign_trace_run(&base, &trace, RepairMode::Incremental, threads, shards)?;
        if fp != base_fp || stats != base_stats {
            return Err(format!("threads {threads} x shards {shards} diverges"));
        }
    }

    // Metamorphic relabeling: permute server ids in the instance and trace.
    let sperm = permutation(ns, spec.seed);
    let lists: Vec<Vec<u32>> = (0..base.num_customers())
        .map(|c| {
            base.servers_of(c)
                .iter()
                .map(|&s| sperm[s as usize])
                .collect()
        })
        .collect();
    let rbase = AssignmentInstance::new(ns, &lists);
    let rtrace: Vec<ChurnEvent> = trace
        .iter()
        .map(|ev| match ev {
            ChurnEvent::CustomerJoin { servers } => ChurnEvent::CustomerJoin {
                servers: servers.iter().map(|&s| sperm[s as usize]).collect(),
            },
            ChurnEvent::ServerCapacity { server, capacity } => ChurnEvent::ServerCapacity {
                server: sperm[*server as usize],
                capacity: *capacity,
            },
            other => other.clone(),
        })
        .collect();
    let (_, rfp) = assign_trace_run(&rbase, &rtrace, RepairMode::Incremental, 1, 1)?;
    if rfp.len() != base_fp.len() {
        return Err("relabeled trace changed the customer count".into());
    }

    let edges = (0..base.num_customers()).map(|c| base.degree_of(c)).sum();
    Ok(FuzzReport {
        nodes: base.num_customers() + ns,
        edges,
        rounds: base_stats.rounds as u64,
        messages: base_stats.messages,
        compared: 4,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_spans_every_family() {
        let a = corpus(2 * FAMILIES.len(), 7);
        let b = corpus(2 * FAMILIES.len(), 7);
        assert_eq!(a, b);
        for f in FAMILIES {
            assert!(
                a.iter().any(|s| s.family == f.name),
                "corpus missing {}",
                f.name
            );
        }
        // Different base seeds give different specs.
        let c = corpus(FAMILIES.len(), 8);
        assert_ne!(a[..FAMILIES.len()], c[..]);
    }

    #[test]
    fn one_spec_per_kind_passes() {
        for name in [
            "layered",
            "torus",
            "uniform-assign",
            "power-law",
            "churn-assign",
        ] {
            let mut spec = WorkloadSpec::new(name).unwrap().with_seed(5);
            if name == "uniform-assign" {
                spec = spec.with_param("bound", 2); // keep the lib test fast
            }
            let rep = check(&spec).unwrap_or_else(|e| panic!("{}: {e}", repro_line(&spec)));
            assert!(rep.compared >= 3, "{name}");
            assert!(rep.rounds > 0, "{name}");
        }
    }

    #[test]
    fn balance_differential_passes_per_kind_samples() {
        // One representative per projection arm of `balance_workload`:
        // plain graph, game graph, bipartite assignment, churn trace.
        for name in ["torus", "rotor", "uniform-assign", "churn-orient"] {
            let mut spec = WorkloadSpec::new(name).unwrap().with_seed(9);
            if name == "uniform-assign" {
                spec = spec.with_param("bound", 2);
            }
            let rep = check_balance(&spec).unwrap_or_else(|e| panic!("{}: {e}", repro_line(&spec)));
            // 3 protocols x (3 grid points + relabeled twin).
            assert_eq!(rep.compared, 12, "{name}");
            assert!(rep.rounds > 0, "{name}");
        }
    }

    #[test]
    fn check_catches_panics_as_failures() {
        // A spec whose build clamps fine but whose structural check we can
        // only trip via an honest mismatch is hard to fabricate; instead
        // verify the catch_unwind plumbing directly on a poisoned closure.
        let err = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
            panic!("boom {}", 42)
        }))
        .unwrap_or_else(|p| Err(format!("panicked: {}", panic_message(p.as_ref()))));
        assert_eq!(err, Err("panicked: boom 42".to_string()));
    }
}
