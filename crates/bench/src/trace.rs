//! The **portable trace plane**: a schema-versioned on-disk format for
//! churn event streams, recorded-workload *shapes* beyond the generator
//! mixes, and deterministic replay into every consumer the repo has.
//!
//! A trace file (`td-trace/v1`) is a plain-text artifact: a header binding
//! the base instance (the canonical [`WorkloadSpec`] string — graph family,
//! size, seed), the recording source, the event count, and an FNV-1a
//! content fingerprint; then one [`ChurnEvent`] per line (the
//! [`ChurnEvent::encode`] grammar); then an `end` sentinel. Everything a
//! replay needs rides in the file — no side channel, no environment.
//!
//! ```text
//! td-trace/v1
//! spec churn-orient:size=48:seed=7:d=4:events=16:flip_w=2:ins_w=1:del_w=1
//! source spec
//! events 16
//! fingerprint 8d4f0b2a91c37e56
//! ---
//! flip 3 41
//! ins 17 29
//! ...
//! end
//! ```
//!
//! **One trace, four consumers.** [`replay_engine`] drives the incremental
//! repair engines over any thread × shard grid, [`replay_differential`]
//! runs the fuzz plane's full differential (incremental vs recompute,
//! executor grid, metamorphic relabeling) on the recorded events, and
//! [`replay_serve`] streams the trace through the `td serve` daemon. All
//! consumers are bit-identical to the generator path: churn families draw
//! the base instance *before* the event mix, so rebuilding the spec and
//! substituting the recorded events reproduces exactly the run that was
//! recorded.
//!
//! **Shapes.** [`SHAPES`] registers recorded workload shapes the generator
//! mixes cannot express — diurnal sine load, correlated rack-failure
//! bursts, cascading drain waves, flash crowds with decay, and an
//! adversarial hotspot-chaser that runs a live repair engine *during
//! generation* to always attack the currently heaviest node. Shape traces
//! are seeded and re-derivable: the header records `source shape:<name>`,
//! so [`Trace::reseed`] can regenerate the same shape under a new seed.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use td_assign::AssignmentInstance;
use td_graph::{CsrGraph, NodeId};
use td_local::{ChurnEvent, RepairMode, RepairStats};
use td_orient::repair::OrientChurnEngine;
use td_orient::Orientation;

use crate::fuzz::{self, FuzzReport};
use crate::serve::{fnv1a_words, serve, ServeConfig, ServeReport};
use crate::spec::{FamilyKind, WorkloadInstance, WorkloadSpec};
use crate::Table;

/// Version tag on the first line of every trace file.
pub const SCHEMA: &str = "td-trace/v1";

/// Salt mixed into the workload seed for shape-generator randomness, so a
/// shape's event stream is decorrelated from the base-instance generator
/// that consumed the unsalted seed.
const SHAPE_SALT: u64 = 0x0074_6472_6163_6531; // "tdtrace1"

// ---------------------------------------------------------------- source ---

/// Where a trace's events came from — recorded in the header so
/// [`Trace::reseed`] knows how to regenerate the stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceSource {
    /// The spec's own seeded event mix (`source spec`).
    SpecMix,
    /// A registered workload shape (`source shape:<name>`).
    Shape(String),
}

impl TraceSource {
    fn label(&self) -> String {
        match self {
            TraceSource::SpecMix => "spec".to_string(),
            TraceSource::Shape(name) => format!("shape:{name}"),
        }
    }

    fn parse(raw: &str) -> Result<Self, String> {
        if raw == "spec" {
            return Ok(TraceSource::SpecMix);
        }
        if let Some(name) = raw.strip_prefix("shape:") {
            find_shape(name)?;
            return Ok(TraceSource::Shape(name.to_string()));
        }
        Err(format!("source '{raw}': expected 'spec' or 'shape:<name>'"))
    }
}

// ---------------------------------------------------------------- shapes ---

/// Static description of one recorded workload shape.
pub struct ShapeInfo {
    /// Registry name (`td trace record --shape <name>`).
    pub name: &'static str,
    /// Base spec family the shape's instance comes from.
    pub family: &'static str,
    /// Size used when the caller does not override it.
    pub default_size: u32,
    /// Event count used when the caller does not override it.
    pub default_events: u32,
    /// What the shape models.
    pub about: &'static str,
}

/// Every registered workload shape.
pub static SHAPES: &[ShapeInfo] = &[
    ShapeInfo {
        name: "diurnal",
        family: "small-world",
        default_size: 48,
        default_events: 96,
        about: "sine-modulated day/night cycle: inserts peak at midday, deletes at night, flips all day",
    },
    ShapeInfo {
        name: "rack-burst",
        family: "churn-orient",
        default_size: 48,
        default_events: 96,
        about: "correlated rack failures: bursts of edge deletions per contiguous id block, then staggered recovery",
    },
    ShapeInfo {
        name: "drain-wave",
        family: "churn-assign",
        default_size: 8,
        default_events: 96,
        about: "cascading drain wave: servers drained and restored one after another while customers churn",
    },
    ShapeInfo {
        name: "flash-crowd",
        family: "churn-assign",
        default_size: 8,
        default_events: 96,
        about: "flash crowd with decay: a join surge decaying geometrically into a leave-dominated tail",
    },
    ShapeInfo {
        name: "hotspot",
        family: "churn-orient",
        default_size: 48,
        default_events: 64,
        about: "adversarial hotspot-chaser: every flip re-targets the currently heaviest node (engine-in-the-loop)",
    },
];

/// Looks a shape up by name.
pub fn find_shape(name: &str) -> Result<&'static ShapeInfo, String> {
    SHAPES.iter().find(|s| s.name == name).ok_or_else(|| {
        format!(
            "unknown shape '{name}' (known: {})",
            SHAPES.iter().map(|s| s.name).collect::<Vec<_>>().join(", ")
        )
    })
}

/// Renders the shape registry as an aligned listing (`td trace shapes`).
pub fn shape_listing() -> String {
    let mut t = Table::new(&["shape", "family", "size", "events", "description"]);
    for s in SHAPES {
        t.row(vec![
            s.name.to_string(),
            s.family.to_string(),
            s.default_size.to_string(),
            s.default_events.to_string(),
            s.about.to_string(),
        ]);
    }
    t.render()
}

// ----------------------------------------------------------------- trace ---

/// A recorded churn trace: the base-instance spec, the recording source,
/// and the event stream. Serializes to / parses from the `td-trace/v1`
/// text format via [`write`](Trace::write) / [`read`](Trace::read).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Base instance binding: family, size, seed, params. The spec's
    /// `events` knob always equals `events.len()`.
    pub spec: WorkloadSpec,
    /// How the stream was produced.
    pub source: TraceSource,
    /// The recorded events, in application order.
    pub events: Vec<ChurnEvent>,
}

impl Trace {
    /// Records the spec's own generated event mix (the `td trace record
    /// --spec` path; also exactly what a `td serve` run over the same spec
    /// and budget streams).
    pub fn from_spec(spec: &WorkloadSpec) -> Result<Trace, String> {
        let events = match spec.build()? {
            WorkloadInstance::OrientChurn { trace, .. } => trace,
            WorkloadInstance::AssignChurn { trace, .. } => trace,
            _ => {
                return Err(format!(
                    "'{}' is not a churn family; traces record churn event streams",
                    spec.family
                ))
            }
        };
        Ok(Trace {
            spec: spec.clone(),
            source: TraceSource::SpecMix,
            events,
        })
    }

    /// Records a registered workload shape over its base family at `size`
    /// / `seed`, `events` events long. The base instance comes from the
    /// unsalted spec seed (bit-identical to what every replay rebuilds);
    /// the shape generator draws from a salted stream.
    pub fn from_shape(name: &str, size: u32, seed: u64, events: u32) -> Result<Trace, String> {
        let info = find_shape(name)?;
        let spec = WorkloadSpec::new(info.family)?
            .with_size(size)
            .with_seed(seed)
            .with_param("events", events);
        spec.validate()?;
        let mut rng = SmallRng::seed_from_u64(seed ^ SHAPE_SALT);
        let stream = match spec.build()? {
            WorkloadInstance::OrientChurn { graph, .. } => match info.name {
                "diurnal" => gen_diurnal(&graph, events, &mut rng),
                "rack-burst" => gen_rack_burst(&graph, events, &mut rng),
                "hotspot" => gen_hotspot(&graph, events)?,
                other => unreachable!("unhandled orientation shape '{other}'"),
            },
            WorkloadInstance::AssignChurn { base, .. } => match info.name {
                "drain-wave" => gen_drain_wave(&base, size as usize, events, &mut rng),
                "flash-crowd" => gen_flash_crowd(&base, size as usize, events, &mut rng),
                other => unreachable!("unhandled assignment shape '{other}'"),
            },
            _ => unreachable!("shape families are churn families"),
        };
        debug_assert_eq!(stream.len(), events as usize, "{name}: exact event budget");
        Ok(Trace {
            spec,
            source: TraceSource::Shape(info.name.to_string()),
            events: stream,
        })
    }

    /// Regenerates the same recording under a new seed: the spec mix is
    /// re-drawn, a shape is re-generated — same size, same parameters, new
    /// randomness (the `td trace convert --seed` path).
    pub fn reseed(&self, seed: u64) -> Result<Trace, String> {
        match &self.source {
            TraceSource::SpecMix => Trace::from_spec(&self.spec.clone().with_seed(seed)),
            TraceSource::Shape(name) => {
                Trace::from_shape(name, self.spec.size, seed, self.spec.param("events"))
            }
        }
    }

    /// FNV-1a over the canonical event encoding (each line plus `\n`) —
    /// the content identity in the header. Any edit to any event changes
    /// it; two traces with equal fingerprints replay identically.
    pub fn content_fingerprint(&self) -> u64 {
        fnv1a_words(self.events.iter().flat_map(|ev| {
            ev.encode()
                .into_bytes()
                .into_iter()
                .chain(std::iter::once(b'\n'))
                .map(u64::from)
                .collect::<Vec<_>>()
        }))
    }

    /// Serializes the trace as a `td-trace/v1` document.
    pub fn write(&self) -> String {
        let mut s = String::with_capacity(64 + self.events.len() * 12);
        s.push_str(SCHEMA);
        s.push('\n');
        s.push_str(&format!("spec {}\n", self.spec));
        s.push_str(&format!("source {}\n", self.source.label()));
        s.push_str(&format!("events {}\n", self.events.len()));
        s.push_str(&format!(
            "fingerprint {:016x}\n",
            self.content_fingerprint()
        ));
        s.push_str("---\n");
        for ev in &self.events {
            s.push_str(&ev.encode());
            s.push('\n');
        }
        s.push_str("end\n");
        s
    }

    /// Parses a `td-trace/v1` document. Every malformation — wrong schema
    /// line, missing or unknown header keys, malformed or unknown event
    /// lines, truncation, a fingerprint that does not match the content —
    /// is a diagnostic `Err`, never a panic.
    pub fn read(text: &str) -> Result<Trace, String> {
        let mut lines = text.lines().enumerate();
        let (_, first) = lines.next().ok_or_else(|| "empty trace file".to_string())?;
        if first.trim_end() != SCHEMA {
            return Err(format!(
                "schema mismatch: expected '{SCHEMA}', found '{}'",
                first.trim_end()
            ));
        }
        let mut spec: Option<WorkloadSpec> = None;
        let mut source: Option<TraceSource> = None;
        let mut declared: Option<usize> = None;
        let mut fingerprint: Option<u64> = None;
        loop {
            let (i, line) = lines
                .next()
                .ok_or_else(|| "truncated trace: header never reached '---'".to_string())?;
            let line = line.trim_end();
            if line == "---" {
                break;
            }
            let (key, raw) = line
                .split_once(' ')
                .ok_or_else(|| format!("line {}: header expects 'key value'", i + 1))?;
            match key {
                "spec" => {
                    spec =
                        Some(WorkloadSpec::parse(raw).map_err(|e| format!("line {}: {e}", i + 1))?);
                }
                "source" => {
                    source =
                        Some(TraceSource::parse(raw).map_err(|e| format!("line {}: {e}", i + 1))?);
                }
                "events" => {
                    declared = Some(
                        raw.parse()
                            .map_err(|_| format!("line {}: events '{raw}': not a count", i + 1))?,
                    );
                }
                "fingerprint" => {
                    fingerprint = Some(u64::from_str_radix(raw, 16).map_err(|_| {
                        format!("line {}: fingerprint '{raw}': not 16 hex digits", i + 1)
                    })?);
                }
                other => return Err(format!("line {}: unknown header key '{other}'", i + 1)),
            }
        }
        let spec = spec.ok_or_else(|| "header missing 'spec'".to_string())?;
        let declared = declared.ok_or_else(|| "header missing 'events'".to_string())?;
        let fingerprint = fingerprint.ok_or_else(|| "header missing 'fingerprint'".to_string())?;
        let source = source.unwrap_or(TraceSource::SpecMix);
        if !matches!(
            spec.kind(),
            FamilyKind::OrientChurn | FamilyKind::AssignChurn
        ) {
            return Err(format!(
                "spec family '{}' is not a churn family; traces replay only through churn pipelines",
                spec.family
            ));
        }
        if spec.param("events") as usize != declared {
            return Err(format!(
                "header disagrees with itself: spec says events={}, header says events {declared}",
                spec.param("events")
            ));
        }
        if let TraceSource::Shape(name) = &source {
            let info = find_shape(name)?;
            if info.family != spec.family {
                return Err(format!(
                    "shape '{name}' records over family '{}', but the spec names '{}'",
                    info.family, spec.family
                ));
            }
        }
        let mut events = Vec::with_capacity(declared);
        for _ in 0..declared {
            let (i, line) = lines.next().ok_or_else(|| {
                format!(
                    "truncated trace: {declared} events declared, file ends after {}",
                    events.len()
                )
            })?;
            let line = line.trim_end();
            if line == "end" {
                return Err(format!(
                    "truncated trace: {declared} events declared, 'end' after {}",
                    events.len()
                ));
            }
            events.push(ChurnEvent::decode(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        match lines.next() {
            Some((_, l)) if l.trim_end() == "end" => {}
            Some((i, l)) => {
                return Err(format!(
                    "line {}: expected 'end' after {declared} events, found '{}'",
                    i + 1,
                    l.trim_end()
                ))
            }
            None => return Err("truncated trace: missing 'end' sentinel".to_string()),
        }
        if let Some((i, extra)) = lines.find(|(_, l)| !l.trim().is_empty()) {
            return Err(format!(
                "line {}: trailing content after 'end': '{}'",
                i + 1,
                extra.trim_end()
            ));
        }
        let trace = Trace {
            spec,
            source,
            events,
        };
        let actual = trace.content_fingerprint();
        if actual != fingerprint {
            return Err(format!(
                "fingerprint mismatch: header says {fingerprint:016x}, content hashes to {actual:016x}"
            ));
        }
        Ok(trace)
    }

    /// Human-readable summary (`td trace info`): header fields plus an
    /// event-kind histogram.
    pub fn summary_table(&self) -> Table {
        let mut counts: Vec<(&str, u32)> = Vec::new();
        for ev in &self.events {
            let kw = match ev {
                ChurnEvent::EdgeInsert { .. } => "ins",
                ChurnEvent::EdgeDelete { .. } => "del",
                ChurnEvent::EdgeFlip { .. } => "flip",
                ChurnEvent::TokenArrive(_) => "arrive",
                ChurnEvent::TokenDrop(_) => "drop",
                ChurnEvent::CustomerJoin { .. } => "join",
                ChurnEvent::CustomerLeave(_) => "leave",
                ChurnEvent::ServerCapacity { .. } => "cap",
            };
            match counts.iter_mut().find(|(k, _)| *k == kw) {
                Some((_, c)) => *c += 1,
                None => counts.push((kw, 1)),
            }
        }
        let mut t = Table::new(&["field", "value"]);
        let mut row = |k: &str, v: String| t.row(vec![k.to_string(), v]);
        row("schema", SCHEMA.to_string());
        row("spec", self.spec.to_string());
        row("source", self.source.label());
        row("events", self.events.len().to_string());
        row(
            "mix",
            if counts.is_empty() {
                "-".to_string()
            } else {
                counts
                    .iter()
                    .map(|(k, c)| format!("{k}={c}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            },
        );
        row(
            "fingerprint",
            format!("{:016x}", self.content_fingerprint()),
        );
        t
    }
}

// ---------------------------------------------------------------- replay ---

/// What one engine replay produced: repair work plus the final solution
/// fingerprint (same FNV-1a the serve plane reports, so fingerprints from
/// different consumers of one trace are directly diffable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Events applied (== trace length).
    pub events: usize,
    /// Accumulated repair work (stabilization included).
    pub stats: RepairStats,
    /// FNV-1a over the final solution.
    pub solution_fp: u64,
}

/// Replays the trace through the incremental-repair engine for its family,
/// verifying stability after every event. `threads` / `shards` select the
/// executor (sequential, parallel, or sharded) — the outcome is
/// bit-identical across all of them.
pub fn replay_engine(
    trace: &Trace,
    mode: RepairMode,
    threads: usize,
    shards: usize,
) -> Result<ReplayOutcome, String> {
    match trace.spec.build()? {
        WorkloadInstance::OrientChurn { graph, .. } => {
            let (stats, fp) = fuzz::orient_trace_run(&graph, &trace.events, mode, threads, shards)?;
            Ok(ReplayOutcome {
                events: trace.events.len(),
                stats,
                solution_fp: fnv1a_words(fp.iter().map(|&v| v as u64)),
            })
        }
        WorkloadInstance::AssignChurn { base, .. } => {
            let (stats, fp) = fuzz::assign_trace_run(&base, &trace.events, mode, threads, shards)?;
            Ok(ReplayOutcome {
                events: trace.events.len(),
                stats,
                solution_fp: fnv1a_words(fp.iter().map(|&v| v as u64)),
            })
        }
        _ => Err(format!(
            "'{}' is not a churn family; nothing to replay",
            trace.spec.family
        )),
    }
}

/// Replays the trace through the fuzz plane's full differential:
/// incremental vs full recompute, thread × shard executor grid, and the
/// metamorphic relabeling, all over the recorded events.
pub fn replay_differential(trace: &Trace) -> Result<FuzzReport, String> {
    fuzz::check_churn_trace(&trace.spec, &trace.events)
}

/// Streams the trace through a full `td serve` session (daemon + open-loop
/// generator) in place of the spec's generated mix. The effective budget
/// is the trace length; `rate` 0 means unpaced.
pub fn replay_serve(
    trace: &Trace,
    rate: u64,
    threads: usize,
    shards: usize,
) -> Result<ServeReport, String> {
    let mut cfg = ServeConfig::new(trace.spec.family)?;
    cfg.spec = trace.spec.clone();
    cfg.rate = rate;
    cfg.threads = threads;
    cfg.shards = shards;
    cfg.trace = Some(trace.events.clone());
    serve(&cfg)
}

// -------------------------------------------------------- shape generators ---

/// `500 · (1 + sin(π·h/12))` for h = 0..24, precomputed to integers so the
/// diurnal curve is identical on every platform (no runtime floating-point
/// trigonometry in any generator).
const DIURNAL_PERMILLE: [u32; 24] = [
    500, 629, 750, 854, 933, 983, 1000, 983, 933, 854, 750, 629, 500, 371, 250, 146, 67, 17, 0, 17,
    67, 146, 250, 371,
];

/// Mutable live-edge bookkeeping every orientation shape shares: the same
/// validity-by-construction discipline as the spec generators (flips and
/// deletes name live edges, inserts never duplicate).
struct EdgeSet {
    live: Vec<(u32, u32)>,
    present: HashSet<(u32, u32)>,
    n: u32,
}

impl EdgeSet {
    fn of(g: &CsrGraph) -> Self {
        let live: Vec<(u32, u32)> = g.edge_list().map(|(_, u, v)| (u.0, v.0)).collect();
        let present = live.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        EdgeSet {
            live,
            present,
            n: g.num_nodes() as u32,
        }
    }

    /// Tries to insert a fresh random edge (64 draws).
    fn try_insert(&mut self, rng: &mut SmallRng) -> Option<ChurnEvent> {
        for _ in 0..64 {
            let u = rng.gen_range(0..self.n);
            let v = rng.gen_range(0..self.n);
            if u != v && !self.present.contains(&(u.min(v), u.max(v))) {
                self.present.insert((u.min(v), u.max(v)));
                self.live.push((u, v));
                return Some(ChurnEvent::EdgeInsert {
                    u: NodeId(u),
                    v: NodeId(v),
                });
            }
        }
        None
    }

    /// Deletes a random live edge, keeping a floor of `n/2` edges so the
    /// graph never empties out.
    fn try_delete_random(&mut self, rng: &mut SmallRng) -> Option<ChurnEvent> {
        if self.live.len() <= (self.n as usize) / 2 {
            return None;
        }
        let k = rng.gen_range(0..self.live.len());
        Some(self.delete_at(k))
    }

    /// Deletes the specific live edge `{u, v}` (floor-checked).
    fn try_delete(&mut self, u: u32, v: u32) -> Option<ChurnEvent> {
        if self.live.len() <= (self.n as usize) / 2 {
            return None;
        }
        let k = self.live.iter().position(|&(a, b)| (a, b) == (u, v))?;
        Some(self.delete_at(k))
    }

    fn delete_at(&mut self, k: usize) -> ChurnEvent {
        let (u, v) = self.live.swap_remove(k);
        self.present.remove(&(u.min(v), u.max(v)));
        ChurnEvent::EdgeDelete {
            u: NodeId(u),
            v: NodeId(v),
        }
    }

    /// Re-inserts a previously deleted edge, if still absent.
    fn try_reinsert(&mut self, u: u32, v: u32) -> Option<ChurnEvent> {
        if u == v || !self.present.insert((u.min(v), u.max(v))) {
            return None;
        }
        self.live.push((u, v));
        Some(ChurnEvent::EdgeInsert {
            u: NodeId(u),
            v: NodeId(v),
        })
    }

    /// Flips a random live edge (the live set is never empty: deletions
    /// keep an `n/2` floor and every base graph starts with ≥ `n/2` edges).
    fn flip_random(&mut self, rng: &mut SmallRng) -> ChurnEvent {
        let &(u, v) = &self.live[rng.gen_range(0..self.live.len())];
        ChurnEvent::EdgeFlip {
            u: NodeId(u),
            v: NodeId(v),
        }
    }
}

/// Diurnal sine load: `events` are spread over a 24-hour cycle proportional
/// to [`DIURNAL_PERMILLE`]; within an hour of weight `w`, inserts carry
/// weight `w` (load arriving at midday), deletes `1000 − w` (load leaving
/// at night), flips a constant `1000`.
fn gen_diurnal(g: &CsrGraph, events: u32, rng: &mut SmallRng) -> Vec<ChurnEvent> {
    let total_w: u64 = DIURNAL_PERMILLE.iter().map(|&w| w as u64).sum();
    let mut edges = EdgeSet::of(g);
    let mut out = Vec::with_capacity(events as usize);
    let mut cum = 0u64;
    let mut allotted = 0u64;
    for &w in &DIURNAL_PERMILLE {
        cum += w as u64;
        let upto = events as u64 * cum / total_w;
        for _ in allotted..upto {
            let roll = rng.gen_range(0..2000u32);
            let ev = if roll < w {
                edges.try_insert(rng)
            } else if roll < 1000 {
                edges.try_delete_random(rng)
            } else {
                None
            };
            out.push(ev.unwrap_or_else(|| edges.flip_random(rng)));
        }
        allotted = upto;
    }
    out
}

/// Correlated rack failures: nodes partition into contiguous id "racks"; a
/// burst deletes the live edges touching one rack, recovery re-inserts
/// them one per tick, and quiet periods in between are flips.
fn gen_rack_burst(g: &CsrGraph, events: u32, rng: &mut SmallRng) -> Vec<ChurnEvent> {
    let n = g.num_nodes() as u32;
    let rack = (n / 6).max(3);
    let racks = n.div_ceil(rack).max(1);
    let mut edges = EdgeSet::of(g);
    let mut recovery: Vec<(u32, u32)> = Vec::new();
    let mut out = Vec::with_capacity(events as usize);
    while (out.len() as u32) < events {
        // Staggered recovery first: one repaired link per tick.
        if !recovery.is_empty() {
            let (u, v) = recovery.remove(0);
            out.push(
                edges
                    .try_reinsert(u, v)
                    .unwrap_or_else(|| edges.flip_random(rng)),
            );
            continue;
        }
        // Quiet period: a few flips.
        for _ in 0..rng.gen_range(2..6u32) {
            if (out.len() as u32) >= events {
                return out;
            }
            out.push(edges.flip_random(rng));
        }
        if (out.len() as u32) >= events {
            return out;
        }
        // The burst: fail every live edge touching one rack (floor-capped).
        let r = rng.gen_range(0..racks);
        let (lo, hi) = (r * rack, ((r + 1) * rack).min(n));
        let hit: Vec<(u32, u32)> = edges
            .live
            .iter()
            .copied()
            .filter(|&(u, v)| (lo..hi).contains(&u) || (lo..hi).contains(&v))
            .collect();
        for (u, v) in hit {
            if (out.len() as u32) >= events {
                return out;
            }
            if let Some(ev) = edges.try_delete(u, v) {
                out.push(ev);
                recovery.push((u, v));
            }
        }
        if recovery.is_empty() && (out.len() as u32) < events {
            // Rack had no deletable edges (floor reached): burn one flip so
            // the loop always makes progress.
            out.push(edges.flip_random(rng));
        }
    }
    out
}

/// A random join with 2–3 distinct candidate servers (the same invariant
/// the spec generator keeps: ≥ 2 candidates, so one drained server never
/// strands a customer).
fn random_join(ns: usize, rng: &mut SmallRng) -> ChurnEvent {
    let want = 2.min(ns) + rng.gen_range(0..=1usize).min(ns.saturating_sub(2));
    let mut servers: Vec<u32> = Vec::with_capacity(want);
    while servers.len() < want {
        let s = rng.gen_range(0..ns as u32);
        if !servers.contains(&s) {
            servers.push(s);
        }
    }
    ChurnEvent::CustomerJoin { servers }
}

/// Customer-population bookkeeping for the assignment shapes: leaves name
/// alive customers and only fire while the population exceeds `ns`.
struct Population {
    alive: Vec<u32>,
    next_id: u32,
    ns: usize,
}

impl Population {
    fn of(base: &AssignmentInstance, ns: usize) -> Self {
        Population {
            alive: (0..base.num_customers() as u32).collect(),
            next_id: base.num_customers() as u32,
            ns,
        }
    }

    fn join(&mut self, rng: &mut SmallRng) -> ChurnEvent {
        self.alive.push(self.next_id);
        self.next_id += 1;
        random_join(self.ns, rng)
    }

    fn try_leave(&mut self, rng: &mut SmallRng) -> Option<ChurnEvent> {
        if self.alive.len() <= self.ns {
            return None;
        }
        let k = rng.gen_range(0..self.alive.len());
        Some(ChurnEvent::CustomerLeave(self.alive.swap_remove(k)))
    }
}

/// Cascading drain wave: servers are drained and restored one after the
/// other in id order (wrapping), with a burst of customer churn while each
/// is down. At most one server is ever drained — the invariant every
/// assignment trace keeps.
fn gen_drain_wave(
    base: &AssignmentInstance,
    ns: usize,
    events: u32,
    rng: &mut SmallRng,
) -> Vec<ChurnEvent> {
    let mut pop = Population::of(base, ns);
    let mut out = Vec::with_capacity(events as usize);
    let mut s = 0u32;
    while (out.len() as u32) < events {
        out.push(ChurnEvent::ServerCapacity {
            server: s,
            capacity: 0,
        });
        for _ in 0..rng.gen_range(1..4u32) {
            if (out.len() as u32) >= events {
                break;
            }
            let ev = if rng.gen_range(0..3u32) == 0 {
                pop.try_leave(rng)
            } else {
                None
            };
            out.push(ev.unwrap_or_else(|| pop.join(rng)));
        }
        if (out.len() as u32) < events {
            out.push(ChurnEvent::ServerCapacity {
                server: s,
                capacity: 1,
            });
        }
        s = (s + 1) % ns as u32;
    }
    out
}

/// Flash crowd with decay: the join probability starts near certainty and
/// decays linearly to a leave-dominated tail, so the population surges and
/// then drains back toward baseline.
fn gen_flash_crowd(
    base: &AssignmentInstance,
    ns: usize,
    events: u32,
    rng: &mut SmallRng,
) -> Vec<ChurnEvent> {
    let mut pop = Population::of(base, ns);
    let mut out = Vec::with_capacity(events as usize);
    for i in 0..events {
        let p_join = 950u32.saturating_sub(850 * i / events.max(1));
        let ev = if rng.gen_range(0..1000u32) < p_join {
            None
        } else {
            pop.try_leave(rng)
        };
        out.push(ev.unwrap_or_else(|| pop.join(rng)));
    }
    out
}

/// Adversarial hotspot-chaser: a live incremental-repair engine runs
/// *during generation*; each event flips an edge onto the currently
/// heaviest node (ties to the lowest id), so the recorded stream always
/// attacks wherever the repair protocol just balanced the load to. Fully
/// deterministic — the event choice ignores the seed (the base graph is
/// still seeded).
fn gen_hotspot(g: &CsrGraph, events: u32) -> Result<Vec<ChurnEvent>, String> {
    let mut eng = OrientChurnEngine::new(
        g.clone(),
        Orientation::toward_larger(g),
        RepairMode::Incremental,
    );
    eng.stabilize();
    eng.verify()
        .map_err(|e| format!("hotspot: initial stabilization: {e:?}"))?;
    let mut order: Vec<NodeId> = g.nodes().collect();
    let mut out = Vec::with_capacity(events as usize);
    for _ in 0..events {
        order.sort_by_key(|&v| (std::cmp::Reverse(eng.orientation().load(v)), v.0));
        let mut pick = None;
        'hunt: for &v in &order {
            for u in g.neighbor_ids(v) {
                let e = g.edge_between(v, u).expect("neighbor implies edge");
                if eng.orientation().head(e) != Some(v) {
                    pick = Some(ChurnEvent::EdgeFlip { u: v, v: u });
                    break 'hunt;
                }
            }
        }
        let ev = pick.ok_or_else(|| "hotspot: graph has no edges to flip".to_string())?;
        eng.apply(&ev).map_err(|e| format!("hotspot: {e}"))?;
        out.push(ev);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_trace_is_bit_identical_to_the_generator_path() {
        let spec = WorkloadSpec::parse("churn-orient:size=32:seed=9:events=24").unwrap();
        let t = Trace::from_spec(&spec).unwrap();
        let WorkloadInstance::OrientChurn { trace, .. } = spec.build().unwrap() else {
            panic!("churn family");
        };
        assert_eq!(t.events, trace, "recording captures the generator's mix");
        assert_eq!(t.spec, spec);
        assert_eq!(t.source, TraceSource::SpecMix);
    }

    #[test]
    fn write_read_roundtrip_preserves_everything() {
        for (mk, label) in [
            (
                Trace::from_spec(
                    &WorkloadSpec::parse("churn-assign:size=5:seed=3:events=30").unwrap(),
                ),
                "spec mix",
            ),
            (Trace::from_shape("diurnal", 24, 11, 40), "shape"),
        ] {
            let t = mk.unwrap_or_else(|e| panic!("{label}: {e}"));
            let text = t.write();
            assert!(text.starts_with("td-trace/v1\n"), "{label}");
            assert!(text.ends_with("end\n"), "{label}");
            let back = Trace::read(&text).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(back, t, "{label}");
        }
    }

    #[test]
    fn every_shape_generates_its_exact_budget_and_replays_clean() {
        for s in SHAPES {
            let t = Trace::from_shape(s.name, s.default_size, 7, 48)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(t.events.len(), 48, "{}", s.name);
            assert_eq!(t.spec.family, s.family, "{}", s.name);
            // Engine replay verifies stability after every event — an
            // invalid event stream fails here.
            let seq = replay_engine(&t, RepairMode::Incremental, 1, 1)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(seq.events, 48, "{}", s.name);
        }
    }

    #[test]
    fn shape_traces_are_deterministic_and_reseedable() {
        let a = Trace::from_shape("flash-crowd", 6, 21, 60).unwrap();
        let b = Trace::from_shape("flash-crowd", 6, 21, 60).unwrap();
        assert_eq!(a, b);
        let c = a.reseed(22).unwrap();
        assert_eq!(c.events.len(), 60);
        assert_ne!(
            a.content_fingerprint(),
            c.content_fingerprint(),
            "new seed, new stream"
        );
        let again = c.reseed(21).unwrap();
        assert_eq!(again, a, "reseeding back recovers the original");
    }

    #[test]
    fn replay_is_bit_identical_across_engines_executors_and_serve() {
        let t = Trace::from_shape("rack-burst", 32, 5, 40).unwrap();
        let seq = replay_engine(&t, RepairMode::Incremental, 1, 1).unwrap();
        for (threads, shards) in [(2, 1), (2, 2), (4, 4)] {
            let par = replay_engine(&t, RepairMode::Incremental, threads, shards).unwrap();
            assert_eq!(par, seq, "threads {threads} x shards {shards}");
        }
        let rec = replay_engine(&t, RepairMode::FullRecompute, 1, 1).unwrap();
        assert_eq!(rec.solution_fp, seq.solution_fp, "recompute agrees");
        // The serve daemon consumes the same stream and lands on the same
        // solution fingerprint.
        let report = replay_serve(&t, 0, 1, 1).unwrap();
        assert_eq!(report.events as usize, seq.events);
        assert_eq!(report.fingerprint, seq.solution_fp);
        // And the fuzz differential accepts the recorded stream wholesale.
        let fuzzed = replay_differential(&t).unwrap();
        assert!(
            fuzzed.compared > 0,
            "differential compared executor grid points"
        );
    }

    #[test]
    fn malformed_documents_are_diagnostics_not_panics() {
        let good = Trace::from_spec(
            &WorkloadSpec::parse("churn-orient:size=32:seed=4:events=12").unwrap(),
        )
        .unwrap()
        .write();

        // Wrong schema line.
        let e = Trace::read(&good.replace("td-trace/v1", "td-trace/v9")).unwrap_err();
        assert!(e.contains("schema mismatch"), "{e}");
        // Truncated: file ends mid-events.
        let cut: String = good.lines().take(9).map(|l| format!("{l}\n")).collect();
        let e = Trace::read(&cut).unwrap_err();
        assert!(e.contains("truncated"), "{e}");
        // Truncated: no 'end' sentinel.
        let e = Trace::read(good.trim_end_matches("end\n")).unwrap_err();
        assert!(e.contains("end"), "{e}");
        // Unknown event keyword (a future schema's variant).
        let tampered = good.replacen("flip ", "teleport ", 1);
        if tampered != good {
            let e = Trace::read(&tampered).unwrap_err();
            assert!(e.contains("teleport"), "{e}");
        }
        // Fingerprint mismatch after content tampering.
        let mut lines: Vec<String> = good.lines().map(str::to_string).collect();
        let evline = lines
            .iter()
            .position(|l| l.starts_with("flip") || l.starts_with("ins") || l.starts_with("del"))
            .expect("an event line");
        lines[evline] = "flip 0 1".to_string();
        let e = Trace::read(&(lines.join("\n") + "\n"));
        assert!(e.is_err(), "tampered content must be rejected");
        // Header fingerprint edited directly.
        let forged: String = good
            .lines()
            .map(|l| {
                if l.starts_with("fingerprint ") {
                    "fingerprint deadbeefdeadbeef\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let e = Trace::read(&forged).unwrap_err();
        assert!(e.contains("fingerprint mismatch"), "{e}");
        // Non-churn family in the header.
        let e = Trace::read("td-trace/v1\nspec torus:size=4:seed=1\nevents 0\nfingerprint cbf29ce484222325\n---\nend\n")
            .unwrap_err();
        assert!(e.contains("churn"), "{e}");
    }
}
