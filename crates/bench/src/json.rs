//! A minimal JSON reader for the harness's own reports.
//!
//! The workspace is hermetic (no serde), so every report plane hand-rolls
//! its writer. That was fine while the documents were write-only artifacts;
//! the [`crate::exp`] cache reads them back — to splice cached perf points
//! into a regenerated benchmark file and to render plots and tables from
//! cached results — and the round-trip tests pin the writers' headers. This
//! module is the matching reader: a small recursive-descent parser over the
//! subset of JSON our writers emit (and, defensively, standard escapes and
//! signed/float numbers), with unsigned integers kept exact rather than
//! routed through `f64`.

/// A parsed JSON value. Integer-looking numbers that fit in `u64` parse as
/// [`Json::UInt`] so counters and fingerprints survive exactly; everything
/// else numeric falls back to [`Json::Num`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits in 64 bits, kept exact.
    UInt(u64),
    /// Any other number (negative, fractional, exponent).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (our writers rely on field order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match, `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing non-whitespace is an error, as is
/// anything structurally malformed; the message carries a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, ch: u8) -> Result<(), String> {
        if self.peek() == Some(ch) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", ch as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| format!("bad codepoint {hex:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// Extracts the raw text of the array value of `key` from `doc` — the
/// verbatim `[...]` substring, escapes and formatting untouched. This is
/// how the exp cache splices stored report fragments into a regenerated
/// document without reformatting them. Only the first occurrence of
/// `"key":` outside strings is considered.
pub fn extract_array(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let bytes = doc.as_bytes();
    // Find the needle outside of string context by tracking quotes.
    let mut in_str = false;
    let mut prev = 0u8;
    let mut at = None;
    for i in 0..bytes.len() {
        let b = bytes[i];
        if in_str {
            if b == b'"' && prev != b'\\' {
                in_str = false;
            }
        } else if doc[i..].starts_with(&needle) {
            at = Some(i + needle.len());
            break;
        } else if b == b'"' {
            in_str = true;
        }
        prev = b;
    }
    let mut i = at?;
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'[') {
        return None;
    }
    let start = i;
    let mut depth = 0i64;
    let mut in_str = false;
    let mut prev = 0u8;
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            if b == b'"' && prev != b'\\' {
                in_str = false;
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(doc[start..=i].to_string());
                    }
                }
                _ => {}
            }
        }
        prev = b;
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_integers_exactly() {
        let doc = parse(r#"{"fp":18446744073709551615,"neg":-3,"pi":3.25}"#).unwrap();
        assert_eq!(doc.get("fp").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(doc.get("neg").unwrap().as_f64(), Some(-3.0));
        assert_eq!(doc.get("pi").unwrap().as_f64(), Some(3.25));
        assert_eq!(doc.get("fp").unwrap().as_f64(), Some(u64::MAX as f64));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,[2,3],{"b":null,"c":true}],"s":"x\"y\n"}"#).unwrap();
        let arr = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_arr().unwrap()[1].as_u64(), Some(3));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
        assert_eq!(arr[2].get("c").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x\"y\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn extract_array_is_verbatim() {
        let doc = "{\"points\":[\n{\"x\":1,\"t\":\"a]b\"},\n{\"x\":[2,3]}\n],\"z\":1}";
        let got = extract_array(doc, "points").unwrap();
        assert_eq!(got, "[\n{\"x\":1,\"t\":\"a]b\"},\n{\"x\":[2,3]}\n]");
        assert!(extract_array(doc, "absent").is_none());
        // A key mentioned inside a string value must not match.
        let tricky = "{\"s\":\"\\\"points\\\":[9]\",\"points\":[1]}";
        assert_eq!(extract_array(tricky, "points").unwrap(), "[1]");
    }
}
