//! The **Scenario registry**: named, seeded, sized workloads behind one
//! interface, so every consumer — the `repro` experiment binary, the
//! criterion benches, and the `td bench` CLI subcommand — runs workloads the
//! same way instead of growing its own ad-hoc generators.
//!
//! A [`Scenario`] bundles instance construction *and* the paper-faithful
//! solver for it, verifies the output, and reports a uniform
//! [`ScenarioReport`] (size, seed, instance shape, rounds, messages, wall
//! time, scenario-specific notes). The registry spans all three problem
//! families:
//!
//! * **games** — layered random games, the contention-comb and waterfall
//!   adversaries, and a deterministic top-heavy *rotor sweep* in the spirit
//!   of quasirandom load balancing (Friedrich et al.): a circulant layered
//!   graph drained by the proposal protocol, no randomness anywhere;
//! * **orientations** — the Θ(Δ⁴) fully distributed protocol on random
//!   regular graphs, and the Section 1.1 cascade adversary that makes the
//!   arbitrary-start baseline propagate repairs across the whole path;
//! * **assignments** — uniform customer/server instances, and a Zipf-skewed
//!   *server farm* in the spirit of token-based dispatching (Comte,
//!   "Dynamic Load Balancing with Tokens"), solved 2-bounded.
//!
//! Each scenario interprets its `size` knob in one documented dimension
//! (Δ, k, width, …) so sweeps stay one-dimensional and comparable.

use crate::workloads;
use std::time::{Duration, Instant};
use td_core::TokenGame;
use td_graph::GraphBuilder;
use td_local::{RunSummary, Simulator, Summarize};

/// Which problem family a scenario exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Token dropping games (Section 4).
    Game,
    /// Stable orientations (Section 5).
    Orientation,
    /// Stable assignments / semi-matchings (Section 7).
    Assignment,
}

impl ScenarioKind {
    /// Human-readable family label.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::Game => "game",
            ScenarioKind::Orientation => "orientation",
            ScenarioKind::Assignment => "assignment",
        }
    }
}

/// Uniform result of one scenario run. Every number a consumer prints comes
/// from here; scenario-specific extras ride in `notes`.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Registry name of the scenario.
    pub scenario: &'static str,
    /// The size knob the run used.
    pub size: u32,
    /// The seed the run used (deterministic scenarios ignore it).
    pub seed: u64,
    /// Nodes of the underlying network.
    pub nodes: usize,
    /// Edges of the underlying network.
    pub edges: usize,
    /// Communication rounds (game rounds where a note says so).
    pub rounds: u64,
    /// Messages sent (0 for centralized/lockstep drivers, see notes).
    pub messages: u64,
    /// Wall-clock time of solve + verify.
    pub wall: Duration,
    /// Scenario-specific key/value extras (cost, phases, bounds, …).
    pub notes: Vec<(&'static str, String)>,
}

impl ScenarioReport {
    fn from_summary(
        scenario: &'static str,
        size: u32,
        seed: u64,
        nodes: usize,
        edges: usize,
        s: RunSummary,
        wall: Duration,
    ) -> Self {
        ScenarioReport {
            scenario,
            size,
            seed,
            nodes,
            edges,
            rounds: s.rounds as u64,
            messages: s.messages,
            wall,
            notes: Vec::new(),
        }
    }

    fn note(mut self, key: &'static str, value: impl ToString) -> Self {
        self.notes.push((key, value.to_string()));
        self
    }

    /// A deterministic textual snapshot of the report — everything except
    /// wall-clock time, one `key: value` line each. This is the format of
    /// the golden files under `tests/golden/`; any drift in instance
    /// shape, rounds, messages, or notes shows up as a readable line diff.
    pub fn golden(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("scenario: {}\n", self.scenario));
        s.push_str(&format!("size: {}\n", self.size));
        s.push_str(&format!("seed: {}\n", self.seed));
        s.push_str(&format!("nodes: {}\n", self.nodes));
        s.push_str(&format!("edges: {}\n", self.edges));
        s.push_str(&format!("rounds: {}\n", self.rounds));
        s.push_str(&format!("messages: {}\n", self.messages));
        for (k, v) in &self.notes {
            s.push_str(&format!("note {k}: {v}\n"));
        }
        s
    }
}

/// A named, sized, seeded workload plus its paper-faithful solver.
///
/// Implementations must verify their own output (stability, rules 1–3,
/// k-boundedness, …) before reporting, so a scenario run doubles as an
/// end-to-end correctness check.
///
/// ```
/// use td_bench::scenario;
/// use td_local::Simulator;
///
/// let sc = scenario::find("rotor-sweep").expect("registered");
/// let rep = sc.run(4, 42, &Simulator::sequential()); // verifies internally
/// assert_eq!(rep.scenario, "rotor-sweep");
/// assert!(rep.rounds > 0);
/// // The golden snapshot under tests/golden/ is exactly this rendering.
/// assert!(rep.golden().starts_with("scenario: rotor-sweep\n"));
/// ```
pub trait Scenario: Sync {
    /// Registry name (`td bench <name>`).
    fn name(&self) -> &'static str;
    /// Problem family.
    fn kind(&self) -> ScenarioKind;
    /// One-line description, including what `size` means.
    fn description(&self) -> &'static str;
    /// The size used when the caller does not specify one.
    fn default_size(&self) -> u32;
    /// Builds the instance, solves it on `sim`, verifies, reports.
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport;
}

// ---------------------------------------------------------------- games ---

/// Layered random token dropping solved by the LOCAL proposal protocol
/// (Theorem 4.1). `size` = down-degree Δ.
struct LayeredGame;

impl Scenario for LayeredGame {
    fn name(&self) -> &'static str {
        "layered-game"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Game
    }
    fn description(&self) -> &'static str {
        "random layered game, proposal protocol (Thm 4.1); size = down-degree Δ"
    }
    fn default_size(&self) -> u32 {
        6
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        let game = workloads::layered_game(size as usize, 4, seed);
        let t0 = Instant::now();
        let res = td_core::proposal::run_on_simulator(&game, sim);
        td_core::verify_solution(&game, &res.solution).expect("rules 1-3");
        td_core::verify_dynamics(&game, &res.log).expect("dynamics replay");
        let wall = t0.elapsed();
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            game.num_nodes(),
            game.graph().num_edges(),
            res.summary(),
            wall,
        )
        .note("tokens", game.token_count())
        .note("moves", res.log.len())
        .note("bound 2·L·Δ²", 2 * 4 * (size as u64) * (size as u64))
    }
}

/// The contention-comb adversary: Θ(k) serialization floor. `size` = k.
struct ContentionComb;

impl Scenario for ContentionComb {
    fn name(&self) -> &'static str {
        "contention-comb"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Game
    }
    fn description(&self) -> &'static str {
        "adversarial comb: k tokens contend for one sink chain; size = k"
    }
    fn default_size(&self) -> u32 {
        16
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        let game = TokenGame::contention_comb(size as usize);
        let t0 = Instant::now();
        let res = td_core::proposal::run_on_simulator(&game, sim);
        td_core::verify_solution(&game, &res.solution).expect("rules 1-3");
        let wall = t0.elapsed();
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            game.num_nodes(),
            game.graph().num_edges(),
            res.summary(),
            wall,
        )
        .note("serialization floor k", size)
        .note("moves", res.log.len())
    }
}

/// The waterfall adversary: tokens funnel through every layer. `size` = k
/// (and the level count).
struct Waterfall;

impl Scenario for Waterfall {
    fn name(&self) -> &'static str {
        "waterfall"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Game
    }
    fn description(&self) -> &'static str {
        "adversarial waterfall: k tokens funnel through k levels; size = k"
    }
    fn default_size(&self) -> u32 {
        8
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        let k = size as usize;
        let game = TokenGame::waterfall(k, k);
        let t0 = Instant::now();
        let res = td_core::proposal::run_on_simulator(&game, sim);
        td_core::verify_solution(&game, &res.solution).expect("rules 1-3");
        let wall = t0.elapsed();
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            game.num_nodes(),
            game.graph().num_edges(),
            res.summary(),
            wall,
        )
        .note("floor k + L", 2 * size)
        .note("moves", res.log.len())
    }
}

/// Deterministic top-heavy drain in the spirit of *Quasirandom Load
/// Balancing*: a circulant layered graph (node `i` of a level wires to
/// ports `i, i+1, i+2 (mod w)` below — a fixed rotor-like stride pattern,
/// no randomness), with every node in the top half holding a token. The
/// proposal protocol sweeps the surplus down. `size` = level width w.
struct RotorSweep;

/// The rotor-sweep instance at level width `w` (the same construction the
/// `rotor-sweep` scenario runs) — exposed for experiment E16 and the
/// sharded criterion bench, which need the raw [`TokenGame`] to reach the
/// executor's sharding statistics.
pub fn rotor_sweep_game(w: usize) -> TokenGame {
    RotorSweep::build(w.max(2))
}

impl RotorSweep {
    fn build(w: usize) -> TokenGame {
        const LEVELS: usize = 6;
        const STRIDES: usize = 3;
        let n = w * LEVELS;
        let mut b = GraphBuilder::new(n);
        let id = |level: usize, i: usize| (level * w + i) as u32;
        for level in 1..LEVELS {
            for i in 0..w {
                for s in 0..STRIDES.min(w) {
                    b.add_edge(
                        td_graph::NodeId(id(level, i)),
                        td_graph::NodeId(id(level - 1, (i + s) % w)),
                    )
                    .expect("circulant wiring is simple");
                }
            }
        }
        let g = b.build().expect("valid circulant layering");
        let levels: Vec<u32> = (0..n).map(|v| (v / w) as u32).collect();
        let tokens: Vec<bool> = (0..n).map(|v| v / w >= LEVELS / 2).collect();
        TokenGame::new(g, levels, tokens).expect("valid game")
    }
}

impl Scenario for RotorSweep {
    fn name(&self) -> &'static str {
        "rotor-sweep"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Game
    }
    fn description(&self) -> &'static str {
        "deterministic quasirandom-style sweep: circulant layers, top-heavy tokens; size = width"
    }
    fn default_size(&self) -> u32 {
        12
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        let game = Self::build((size as usize).max(2));
        let t0 = Instant::now();
        let res = td_core::proposal::run_on_simulator(&game, sim);
        td_core::verify_solution(&game, &res.solution).expect("rules 1-3");
        td_core::verify_dynamics(&game, &res.log).expect("dynamics replay");
        let wall = t0.elapsed();
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            game.num_nodes(),
            game.graph().num_edges(),
            res.summary(),
            wall,
        )
        .note("deterministic", "seed ignored")
        .note("tokens", game.token_count())
        .note("moves", res.log.len())
    }
}

// --------------------------------------------------------- orientations ---

/// The fully distributed Θ(Δ⁴) stable orientation (Theorem 5.1) on a random
/// Δ-regular graph. `size` = Δ.
struct RegularOrientation;

impl Scenario for RegularOrientation {
    fn name(&self) -> &'static str {
        "regular-orientation"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Orientation
    }
    fn description(&self) -> &'static str {
        "distributed stable orientation (Thm 5.1) on a random Δ-regular graph; size = Δ"
    }
    fn default_size(&self) -> u32 {
        4
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        let g = workloads::regular_graph(size as usize, 8, seed);
        let t0 = Instant::now();
        let res = td_orient::protocol::run_distributed(&g, sim);
        res.orientation.verify_stable(&g).expect("stable output");
        let wall = t0.elapsed();
        let max_load = g
            .nodes()
            .map(|v| res.orientation.load(v))
            .max()
            .unwrap_or(0);
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            g.num_nodes(),
            g.num_edges(),
            res.summary(),
            wall,
        )
        .note("budget Θ(Δ⁴)", td_orient::protocol::total_rounds(size))
        .note("max load", max_load)
    }
}

/// The Section 1.1 cascade adversary: a path with extra leaves on one end,
/// started from the worst orientation; the arbitrary-start baseline must
/// propagate repairs across the entire path. `size` = path length.
struct CascadeOrientation;

impl Scenario for CascadeOrientation {
    fn name(&self) -> &'static str {
        "cascade-orientation"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Orientation
    }
    fn description(&self) -> &'static str {
        "Section 1.1 cascade: baseline repair propagates along the whole path; size = path length"
    }
    fn default_size(&self) -> u32 {
        64
    }
    fn run(&self, size: u32, seed: u64, _sim: &Simulator) -> ScenarioReport {
        let n = (size as usize).max(2);
        let (g, init) = workloads::cascade_path(n, 8);
        let t0 = Instant::now();
        let res = td_orient::baseline::run(&g, init, seed, 10_000_000);
        res.orientation.verify_stable(&g).expect("stable output");
        let wall = t0.elapsed();
        ScenarioReport {
            scenario: self.name(),
            size,
            seed,
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            rounds: res.comm_rounds,
            messages: 0,
            wall,
            notes: Vec::new(),
        }
        .note("messages", "not counted by the baseline driver")
        .note("flips", res.flips)
        .note("path length", n)
    }
}

/// The Θ(Δ⁴) distributed protocol on a side×side torus — the canonical
/// grid/torus workload of the quasirandom load-balancing literature
/// (Friedrich et al.), deterministic and exactly 4-regular. `size` = side.
struct TorusOrientation;

impl Scenario for TorusOrientation {
    fn name(&self) -> &'static str {
        "torus-orientation"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Orientation
    }
    fn description(&self) -> &'static str {
        "distributed stable orientation on a side×side torus (4-regular, seed ignored); size = side"
    }
    fn default_size(&self) -> u32 {
        8
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        let side = (size as usize).max(3);
        let g = td_graph::gen::classic::torus(side, side);
        let t0 = Instant::now();
        let res = td_orient::protocol::run_distributed(&g, sim);
        res.orientation.verify_stable(&g).expect("stable output");
        let wall = t0.elapsed();
        let max_load = g
            .nodes()
            .map(|v| res.orientation.load(v))
            .max()
            .unwrap_or(0);
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            g.num_nodes(),
            g.num_edges(),
            res.summary(),
            wall,
        )
        .note("deterministic", "seed ignored")
        .note("budget Θ(Δ⁴)", td_orient::protocol::total_rounds(4))
        .note("max load", max_load)
    }
}

/// The Θ(Δ⁴) distributed protocol on the `dim`-dimensional hypercube —
/// exactly `dim`-regular, the classic symmetric interconnect topology.
/// `size` = dimension.
struct HypercubeOrientation;

impl Scenario for HypercubeOrientation {
    fn name(&self) -> &'static str {
        "hypercube-orientation"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Orientation
    }
    fn description(&self) -> &'static str {
        "distributed stable orientation on the dim-dimensional hypercube (seed ignored); size = dim"
    }
    fn default_size(&self) -> u32 {
        5
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        let dim = (size as usize).clamp(1, 10);
        let g = td_graph::gen::classic::hypercube(dim);
        let t0 = Instant::now();
        let res = td_orient::protocol::run_distributed(&g, sim);
        res.orientation.verify_stable(&g).expect("stable output");
        let wall = t0.elapsed();
        let max_load = g
            .nodes()
            .map(|v| res.orientation.load(v))
            .max()
            .unwrap_or(0);
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            g.num_nodes(),
            g.num_edges(),
            res.summary(),
            wall,
        )
        .note("deterministic", "seed ignored")
        .note(
            "budget Θ(Δ⁴)",
            td_orient::protocol::total_rounds(dim as u32),
        )
        .note("max load", max_load)
    }
}

// ----------------------------------------------------------- assignments ---

/// Uniform random customers over servers, solved by the distributed stable
/// assignment protocol (Theorem 7.3). `size` = number of servers.
struct UniformAssignment;

impl Scenario for UniformAssignment {
    fn name(&self) -> &'static str {
        "uniform-assignment"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Assignment
    }
    fn description(&self) -> &'static str {
        "distributed stable assignment (Thm 7.3), uniform instance; size = #servers"
    }
    fn default_size(&self) -> u32 {
        12
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        let ns = (size as usize).max(2);
        let inst = workloads::uniform_assignment(3 * ns, ns, seed);
        let t0 = Instant::now();
        let res = td_assign::protocol::run_distributed_assignment(&inst, None, sim);
        res.assignment.verify_stable(&inst).expect("stable output");
        let wall = t0.elapsed();
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            inst.num_customers() + inst.num_servers(),
            (0..inst.num_customers())
                .map(|c| inst.servers_of(c).len())
                .sum(),
            res.summary(),
            wall,
        )
        .note("cost Σ load²⁺", res.assignment.cost())
        .note("max load", res.assignment.max_load())
    }
}

/// A Zipf-skewed server farm in the spirit of token-based dispatching
/// (Comte): popular servers attract most customers; the 2-bounded relaxed
/// protocol (Theorem 7.5) rebalances with its O(C·S²) budget. `size` =
/// number of servers.
struct ServerFarm;

impl Scenario for ServerFarm {
    fn name(&self) -> &'static str {
        "server-farm"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Assignment
    }
    fn description(&self) -> &'static str {
        "Zipf-skewed server farm, 2-bounded distributed protocol (Thm 7.5); size = #servers"
    }
    fn default_size(&self) -> u32 {
        16
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        let ns = (size as usize).max(2);
        let inst = workloads::skewed_assignment(4 * ns, ns, 1.2, seed);
        let t0 = Instant::now();
        let res = td_assign::protocol::run_distributed_assignment(&inst, Some(2), sim);
        res.assignment
            .verify_k_bounded(&inst, 2)
            .expect("2-bounded output");
        let wall = t0.elapsed();
        let naive = td_assign::Assignment::first_choice(&inst);
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            inst.num_customers() + inst.num_servers(),
            (0..inst.num_customers())
                .map(|c| inst.servers_of(c).len())
                .sum(),
            res.summary(),
            wall,
        )
        .note("cost Σ load²⁺", res.assignment.cost())
        .note("naive first-choice cost", naive.cost())
        .note("max load", res.assignment.max_load())
    }
}

/// A clustered Zipf server farm (the `zipf-cluster` workload family): each
/// customer cluster concentrates on its own hot server block, solved by the
/// 2-bounded relaxed protocol (Theorem 7.5). `size` = number of servers.
struct ClusteredFarm;

impl Scenario for ClusteredFarm {
    fn name(&self) -> &'static str {
        "clustered-farm"
    }
    fn kind(&self) -> ScenarioKind {
        ScenarioKind::Assignment
    }
    fn description(&self) -> &'static str {
        "clustered Zipf server farm (multi-hotspot), 2-bounded protocol (Thm 7.5); size = #servers"
    }
    fn default_size(&self) -> u32 {
        16
    }
    fn run(&self, size: u32, seed: u64, sim: &Simulator) -> ScenarioReport {
        use rand::SeedableRng;
        let ns = (size as usize).max(2);
        let clusters = (ns / 4).max(1);
        let nc = 3 * ns;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let g = td_graph::gen::random::clustered_zipf_bipartite(
            nc,
            ns,
            clusters,
            1..=3.min(ns),
            1.2,
            &mut rng,
        );
        let inst = td_assign::AssignmentInstance::from_bipartite_graph(&g, nc);
        let t0 = Instant::now();
        let res = td_assign::protocol::run_distributed_assignment(&inst, Some(2), sim);
        res.assignment
            .verify_k_bounded(&inst, 2)
            .expect("2-bounded output");
        let wall = t0.elapsed();
        let naive = td_assign::Assignment::first_choice(&inst);
        ScenarioReport::from_summary(
            self.name(),
            size,
            seed,
            inst.num_customers() + inst.num_servers(),
            (0..inst.num_customers())
                .map(|c| inst.servers_of(c).len())
                .sum(),
            res.summary(),
            wall,
        )
        .note("clusters", clusters)
        .note("cost Σ load²⁺", res.assignment.cost())
        .note("naive first-choice cost", naive.cost())
        .note("max load", res.assignment.max_load())
    }
}

// -------------------------------------------------------------- registry ---

static REGISTRY: &[&dyn Scenario] = &[
    &LayeredGame,
    &ContentionComb,
    &Waterfall,
    &RotorSweep,
    &RegularOrientation,
    &CascadeOrientation,
    &TorusOrientation,
    &HypercubeOrientation,
    &UniformAssignment,
    &ServerFarm,
    &ClusteredFarm,
];

/// Every registered scenario, games first, then orientations, assignments.
pub fn registry() -> &'static [&'static dyn Scenario] {
    REGISTRY
}

/// Looks a scenario up by its registry name.
pub fn find(name: &str) -> Option<&'static dyn Scenario> {
    REGISTRY.iter().copied().find(|s| s.name() == name)
}

/// Renders the registry as an aligned listing (used by `td bench` and the
/// docs).
pub fn listing() -> String {
    let mut t = crate::Table::new(&["name", "kind", "default size", "description"]);
    for s in registry() {
        t.row(vec![
            s.name().to_string(),
            s.kind().label().to_string(),
            s.default_size().to_string(),
            s.description().to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_spans_all_kinds() {
        assert!(registry().len() >= 6, "need at least 6 scenarios");
        for kind in [
            ScenarioKind::Game,
            ScenarioKind::Orientation,
            ScenarioKind::Assignment,
        ] {
            assert!(
                registry().iter().any(|s| s.kind() == kind),
                "no scenario of kind {kind:?}"
            );
        }
    }

    #[test]
    fn names_unique_and_findable() {
        let mut names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate scenario names");
        for n in names {
            assert!(find(n).is_some());
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn every_scenario_runs_and_verifies_small() {
        let sim = Simulator::sequential();
        for s in registry() {
            // Small sizes keep this test fast; run() panics on any
            // verification failure.
            let size = match s.kind() {
                ScenarioKind::Game => 4,
                ScenarioKind::Orientation => {
                    if s.name() == "cascade-orientation" {
                        16
                    } else {
                        3
                    }
                }
                ScenarioKind::Assignment => 6,
            };
            let rep = s.run(size, 42, &sim);
            assert_eq!(rep.scenario, s.name());
            assert!(rep.nodes > 0, "{}: empty instance", s.name());
            assert!(rep.rounds > 0, "{}: zero rounds", s.name());
        }
    }

    #[test]
    fn deterministic_scenarios_ignore_seed() {
        let sim = Simulator::sequential();
        let a = RotorSweep.run(8, 1, &sim);
        let b = RotorSweep.run(8, 2, &sim);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn reports_are_executor_independent() {
        let s = find("layered-game").unwrap();
        let a = s.run(4, 7, &Simulator::sequential());
        let b = s.run(4, 7, &Simulator::parallel(3));
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn listing_mentions_every_scenario() {
        let l = listing();
        for s in registry() {
            assert!(l.contains(s.name()), "listing missing {}", s.name());
        }
    }
}
