//! The **`td serve` plane**: a long-running load-balancing daemon plus the
//! open-loop load generator that drives it in-process.
//!
//! The paper treats token dropping as a one-shot computation; this module
//! runs it as a *service*. A daemon thread owns a live churn engine
//! ([`OrientChurnEngine`] or [`AssignChurnEngine`]) over a workload-family
//! instance, pulls [`ChurnEvent`]s from a bounded request channel, applies
//! incremental repair per event, and answers load queries in the same
//! stream. The generator emits a seeded, fixed-budget event mix on an
//! interval tick schedule (`deadline_i = start + i/rate`), *open-loop*:
//! emission times do not depend on service times, so queueing delay is
//! measured rather than masked. When the channel fills, the generator
//! counts the backpressure event and then blocks — events are never
//! dropped, which keeps the final state deterministic under a fixed seed.
//!
//! Repair latency is measured from an event's **scheduled** emission time
//! to repair completion (coordinated-omission-free): if the repair plane
//! falls behind the offered rate, queueing delay compounds and the tail
//! percentiles explode, which is exactly the saturation signal a capacity
//! planner wants. The report pairs `sustained_eps` (throughput actually
//! achieved over the wall clock) with `saturation_eps` (events/sec of pure
//! repair work, `events / Σ apply time`) — the offered load level above
//! which the repair plane falls behind and the queue grows without bound.
//!
//! Determinism contract: under a fixed spec/seed, the event sequence, the
//! tick schedule, the per-event repair traces, and the final-state
//! [`ServeReport::fingerprint`] are bit-identical across runs and thread
//! counts. Wall-clock figures (latency percentiles, eps) are measurements
//! and vary.

use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use td_assign::repair::AssignChurnEngine;
use td_local::{ChurnEvent, ExecPerf, RepairMode, RepairStats};
use td_orient::repair::OrientChurnEngine;
use td_orient::Orientation;

use crate::spec::{FamilyKind, WorkloadInstance, WorkloadSpec};
use crate::Table;

/// Version tag of the JSON document [`write_json`] emits.
pub const SCHEMA: &str = "td-serve/v1";

// ------------------------------------------------------------- histogram ---

/// Exact latency recorder: keeps every sample and reports nearest-rank
/// percentiles, so `p50/p99/p999` are actual observed values (no bucketing
/// error), at 8 bytes per event.
///
/// Sorting happens lazily, at most once per batch of percentile queries:
/// the first query after a `record` sorts in place and subsequent queries
/// reuse the order, so summarizing a report costs one sort instead of one
/// clone-and-sort per percentile.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: Duration) {
        self.samples_ns.push(d.as_nanos() as u64);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// The exact nearest-rank percentile, in permille (`500` = p50,
    /// `990` = p99, `999` = p99.9, `1000` = max). Returns 0 when empty.
    pub fn percentile_ns(&mut self, permille: u32) -> u64 {
        assert!(permille <= 1000, "permille percentile expected");
        if self.samples_ns.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
        nearest_rank(&self.samples_ns, permille)
    }

    /// Mean sample, in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let sum: u128 = self.samples_ns.iter().map(|&v| v as u128).sum();
        (sum / self.samples_ns.len() as u128) as u64
    }
}

/// The exact nearest-rank percentile of an already-sorted sample vector,
/// in permille: the smallest sample with at least `permille/1000` of the
/// distribution at or below it. Returns 0 when empty. This is the single
/// rank formula — [`LatencyHistogram::percentile_ns`] and every external
/// consumer (tests included) must go through it so the two paths cannot
/// drift.
pub fn nearest_rank(sorted_ns: &[u64], permille: u32) -> u64 {
    assert!(permille <= 1000, "permille percentile expected");
    if sorted_ns.is_empty() {
        return 0;
    }
    debug_assert!(sorted_ns.windows(2).all(|w| w[0] <= w[1]));
    let n = sorted_ns.len() as u64;
    let rank = ((permille as u64 * n).div_ceil(1000)).max(1);
    sorted_ns[(rank - 1) as usize]
}

/// FNV-1a over a word stream — the solution-fingerprint hash every serve /
/// replay consumer shares, so fingerprints printed by different consumers
/// of one trace are directly diffable.
pub(crate) fn fnv1a_words(words: impl IntoIterator<Item = u64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for v in words {
        h ^= v;
        h = h.wrapping_mul(PRIME);
    }
    h
}

// ------------------------------------------------------------ the engine ---

/// Either churn engine behind one service interface.
enum ServeEngine {
    Orient(Box<OrientChurnEngine>),
    Assign(Box<AssignChurnEngine>),
}

impl ServeEngine {
    fn apply(&mut self, ev: &ChurnEvent) -> Result<RepairStats, String> {
        match self {
            ServeEngine::Orient(e) => e.apply(ev).map_err(|er| er.to_string()),
            ServeEngine::Assign(e) => e.apply(ev).map_err(|er| er.to_string()),
        }
    }

    fn verify(&self) -> Result<(), String> {
        match self {
            ServeEngine::Orient(e) => e.verify().map_err(|er| format!("{er:?}")),
            ServeEngine::Assign(e) => e.verify().map_err(|er| format!("{er:?}")),
        }
    }

    /// FNV-1a over the current solution: orientation heads per edge, or
    /// `server + 1` per customer slot (0 = unassigned / departed).
    fn fingerprint(&self) -> u64 {
        match self {
            ServeEngine::Orient(e) => fnv1a_words(
                e.graph()
                    .edges()
                    .map(|edge| e.orientation().head(edge).expect("complete orientation").0 as u64),
            ),
            ServeEngine::Assign(e) => fnv1a_words(
                e.assignment_vector()
                    .iter()
                    .map(|a| a.map_or(0, |s| s as u64 + 1)),
            ),
        }
    }

    /// Heaviest server / node load right now (the query answer).
    fn max_load(&self) -> u32 {
        match self {
            ServeEngine::Orient(e) => {
                let g = e.graph();
                g.nodes()
                    .map(|v| e.orientation().load(v))
                    .max()
                    .unwrap_or(0)
            }
            ServeEngine::Assign(e) => e.server_loads().into_iter().max().unwrap_or(0),
        }
    }

    fn nodes(&self) -> usize {
        match self {
            ServeEngine::Orient(e) => e.graph().num_nodes(),
            ServeEngine::Assign(e) => e.num_alive(),
        }
    }

    fn exec_perf(&self) -> ExecPerf {
        match self {
            ServeEngine::Orient(e) => e.exec_perf(),
            ServeEngine::Assign(e) => e.exec_perf(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            ServeEngine::Orient(_) => "orient",
            ServeEngine::Assign(_) => "assign",
        }
    }
}

// --------------------------------------------------------------- request ---

/// What the generator puts on the daemon's request channel.
enum ServeRequest {
    /// A churn event plus its scheduled emission instant (latency epoch).
    Event { ev: ChurnEvent, emitted: Instant },
    /// A current-load query; the daemon answers over the reply lane.
    Query { reply: mpsc::Sender<LoadSnapshot> },
}

/// Answer to a load query, taken between repairs (always a stable state).
#[derive(Clone, Copy, Debug)]
pub struct LoadSnapshot {
    /// Heaviest server (assignment) / node (orientation) load.
    pub max_load: u32,
    /// Live nodes (graph nodes, or alive customers).
    pub nodes: usize,
}

/// What the daemon thread hands back when it drains out and exits.
struct DaemonOutcome {
    engine: ServeEngine,
    hist: LatencyHistogram,
    repair: RepairStats,
    busy: Duration,
    events: u32,
    queries: u64,
    error: Option<String>,
}

// ---------------------------------------------------------------- config ---

/// Configuration of one serve run (daemon + generator, in-process).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The workload family instance to serve; must be a churn family
    /// (`small-world`, `power-law`, `churn-orient`, `churn-assign`). The
    /// spec's `events` knob is overwritten with `budget`.
    pub spec: WorkloadSpec,
    /// Offered load in events/sec; 0 = unpaced (emit as fast as possible).
    pub rate: u64,
    /// Total events to emit (the run ends when the budget is exhausted).
    pub budget: u32,
    /// Repair worker threads inside the engine.
    pub threads: usize,
    /// Engine shard count (>1 = sharded message plane).
    pub shards: usize,
    /// Request channel capacity; a full channel is the backpressure signal.
    pub queue: usize,
    /// Interleave a load query after every `query_every` events (0 = never).
    pub query_every: u32,
    /// Test hook: lowered stamp-renormalization horizon (see
    /// [`td_local::ChurnSim::set_stamp_horizon`]); caps single-run round
    /// budgets to half the horizon so headroom always exists.
    pub stamp_horizon: Option<u32>,
    /// Recorded event stream to serve instead of the spec's generated mix
    /// (the `td trace replay --consumer serve` path). When set, the
    /// effective budget is the trace length and `budget` is ignored; the
    /// spec still names the base instance (graph family / size / seed).
    pub trace: Option<Vec<ChurnEvent>>,
}

impl ServeConfig {
    /// A serve run over `family` at its default size, seed 0, unpaced, with
    /// a 256-event budget.
    pub fn new(family: &str) -> Result<Self, String> {
        let spec = WorkloadSpec::new(family)?;
        match spec.info().kind {
            FamilyKind::OrientChurn | FamilyKind::AssignChurn => {}
            _ => {
                return Err(format!(
                    "family '{family}' is not a churn family; serve needs one of: {}",
                    churn_families().join(", ")
                ))
            }
        }
        Ok(ServeConfig {
            spec,
            rate: 0,
            budget: 256,
            threads: 1,
            shards: 1,
            queue: 1024,
            query_every: 64,
            stamp_horizon: None,
            trace: None,
        })
    }

    /// The CI smoke configuration: small instance, low rate, tiny budget.
    pub fn quick() -> Self {
        let mut cfg = ServeConfig::new("churn-orient").expect("registered churn family");
        cfg.spec = cfg.spec.with_size(48).with_seed(7);
        cfg.rate = 5_000;
        cfg.budget = 64;
        cfg
    }
}

/// Names of the families `serve` accepts.
pub fn churn_families() -> Vec<&'static str> {
    crate::spec::FAMILIES
        .iter()
        .filter(|f| matches!(f.kind, FamilyKind::OrientChurn | FamilyKind::AssignChurn))
        .map(|f| f.name)
        .collect()
}

/// The scheduled emission offset of event `i` at `rate` events/sec (the
/// open-loop tick schedule; `rate == 0` means unpaced, offset 0). The
/// nanosecond count saturates at `u64::MAX` (~584 years) instead of
/// silently truncating for extreme `i/rate` combinations.
pub fn tick_offset(rate: u64, i: u64) -> Duration {
    if rate == 0 {
        Duration::ZERO
    } else {
        let ns = i as u128 * 1_000_000_000 / rate as u128;
        Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }
}

/// True if the open-loop schedule of `budget` events at `rate` events/sec
/// would run past the representable nanosecond range — i.e. the last tick
/// saturates. The CLI rejects such `--rate`/`--budget` pairs up front
/// (exit 2) instead of silently emitting a clamped schedule (the budget is
/// taken as `u64` so the *requested* pair is judged, before any narrowing).
pub fn schedule_overflows(rate: u64, budget: u64) -> bool {
    if rate == 0 || budget == 0 {
        return false;
    }
    let last = (budget as u128 - 1) * 1_000_000_000 / rate as u128;
    last > u64::MAX as u128
}

// ---------------------------------------------------------------- report ---

/// Latency percentiles of one serve run, nanoseconds, nearest-rank exact.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Samples behind the percentiles (== events applied).
    pub count: u64,
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Worst observed.
    pub max_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
}

impl LatencySummary {
    fn from_hist(h: &mut LatencyHistogram) -> Self {
        LatencySummary {
            count: h.len() as u64,
            p50_ns: h.percentile_ns(500),
            p99_ns: h.percentile_ns(990),
            p999_ns: h.percentile_ns(999),
            max_ns: h.percentile_ns(1000),
            mean_ns: h.mean_ns(),
        }
    }
}

/// Everything one serve run measured; serialized by [`write_json`].
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Canonical spec string of the instance served.
    pub spec: String,
    /// Which engine ran: `"orient"` or `"assign"`.
    pub engine: &'static str,
    /// Family size knob.
    pub size: u32,
    /// Workload seed.
    pub seed: u64,
    /// Offered rate (events/sec; 0 = unpaced).
    pub rate: u64,
    /// Event budget of the run.
    pub budget: u32,
    /// Engine threads.
    pub threads: usize,
    /// Engine shards.
    pub shards: usize,
    /// Request channel capacity.
    pub queue: usize,
    /// Live nodes at the end of the run.
    pub nodes: usize,
    /// Events actually applied (== budget on a clean run).
    pub events: u32,
    /// Load queries answered in-stream.
    pub queries: u64,
    /// Emissions that found the request channel full and had to block.
    pub backpressure: u64,
    /// Worst generator lag behind the tick schedule.
    pub max_lag_ns: u64,
    /// First emission to daemon exit.
    pub wall_ns: u64,
    /// Time the daemon spent inside `apply` (repair work proper).
    pub busy_ns: u64,
    /// Repair work accumulated over every event.
    pub repair: RepairStats,
    /// Engine lifetime work counters ([`ExecPerf`]) for the run.
    pub perf: ExecPerf,
    /// Repair latency, scheduled-emission → repair-complete.
    pub latency: LatencySummary,
    /// Heaviest load at the end of the run.
    pub max_load: u32,
    /// FNV-1a fingerprint of the final solution (determinism witness).
    pub fingerprint: u64,
}

impl ServeReport {
    /// The cache-stable canonical serialization of this report: the
    /// deterministic subset as flat integer metrics — instance shape,
    /// event totals, repair work, and the final-solution witness.
    /// Wall-clock, latency, and backpressure are load-dependent and
    /// deliberately excluded.
    pub fn canonical_metrics(&self) -> Vec<(String, u64)> {
        vec![
            ("nodes".into(), self.nodes as u64),
            ("events".into(), self.events as u64),
            ("queries".into(), self.queries),
            ("repair_rounds".into(), self.repair.rounds as u64),
            ("repair_messages".into(), self.repair.messages),
            ("repair_node_steps".into(), self.repair.node_steps),
            ("max_load".into(), self.max_load as u64),
            ("fingerprint".into(), self.fingerprint),
        ]
    }

    /// Throughput actually sustained over the wall clock, events/sec.
    pub fn sustained_eps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events as f64 * 1e9 / self.wall_ns as f64
    }

    /// Capacity of the repair plane: events/sec of pure repair work
    /// (`events / Σ apply time`). Offering more than this makes the queue
    /// grow without bound — the load level at which the plane falls behind.
    ///
    /// Zero accumulated busy time is handled deliberately rather than by
    /// `0/0`: with no events the capacity is unmeasured (0.0), while events
    /// that took no measurable repair time mean the plane is unsaturable at
    /// this clock resolution (`f64::INFINITY`) — e.g. an all-query run or
    /// `--budget 0`.
    pub fn saturation_eps(&self) -> f64 {
        if self.events == 0 {
            return 0.0;
        }
        if self.busy_ns == 0 {
            return f64::INFINITY;
        }
        self.events as f64 * 1e9 / self.busy_ns as f64
    }

    /// True if the run could not keep up with the offered rate (only
    /// meaningful for paced runs that applied at least one event): the
    /// offered load exceeded capacity, or emission had to block on a full
    /// queue. A run with no events has nothing to fall behind on, even
    /// though its measured capacity is 0.
    pub fn fell_behind(&self) -> bool {
        self.rate > 0
            && self.events > 0
            && (self.rate as f64 > self.saturation_eps() || self.backpressure > 0)
    }

    /// Human-readable summary table.
    pub fn summary_table(&self) -> Table {
        let mut t = Table::new(&["metric", "value"]);
        let mut row = |k: &str, v: String| t.row(vec![k.to_string(), v]);
        row("spec", self.spec.clone());
        row("engine", self.engine.to_string());
        row(
            "threads/shards",
            format!("{}/{}", self.threads, self.shards),
        );
        row(
            "offered rate",
            if self.rate == 0 {
                "unpaced".into()
            } else {
                format!("{} ev/s", self.rate)
            },
        );
        row("events", format!("{}/{}", self.events, self.budget));
        row("sustained", format!("{:.1} ev/s", self.sustained_eps()));
        row("saturation", format!("{:.1} ev/s", self.saturation_eps()));
        row("fell behind", self.fell_behind().to_string());
        row("backpressure", self.backpressure.to_string());
        row(
            "p50 latency",
            format!("{:.3} ms", self.latency.p50_ns as f64 / 1e6),
        );
        row(
            "p99 latency",
            format!("{:.3} ms", self.latency.p99_ns as f64 / 1e6),
        );
        row(
            "p999 latency",
            format!("{:.3} ms", self.latency.p999_ns as f64 / 1e6),
        );
        row("max load", self.max_load.to_string());
        row("rounds", self.repair.rounds.to_string());
        row("messages", self.repair.messages.to_string());
        row("fingerprint", format!("{:016x}", self.fingerprint));
        t
    }
}

// ------------------------------------------------------------ the daemon ---

fn spawn_daemon(
    mut engine: ServeEngine,
    rx: mpsc::Receiver<ServeRequest>,
) -> thread::JoinHandle<DaemonOutcome> {
    thread::Builder::new()
        .name("td-serve".into())
        .spawn(move || {
            let mut hist = LatencyHistogram::new();
            let mut repair = RepairStats::accumulator();
            let mut busy = Duration::ZERO;
            let mut events = 0u32;
            let mut queries = 0u64;
            let mut error = None;
            // Drains until every sender is dropped — the generator closing
            // the channel *is* the shutdown request, and the daemon always
            // finishes whatever was already enqueued.
            while let Ok(req) = rx.recv() {
                match req {
                    ServeRequest::Event { ev, emitted } => {
                        let t0 = Instant::now();
                        match engine.apply(&ev) {
                            Ok(stats) => {
                                busy += t0.elapsed();
                                repair.absorb(stats);
                                events += 1;
                                hist.record(emitted.elapsed());
                            }
                            Err(e) => {
                                error.get_or_insert(format!("event {events}: {e}"));
                            }
                        }
                    }
                    ServeRequest::Query { reply } => {
                        queries += 1;
                        let _ = reply.send(LoadSnapshot {
                            max_load: engine.max_load(),
                            nodes: engine.nodes(),
                        });
                    }
                }
            }
            DaemonOutcome {
                engine,
                hist,
                repair,
                busy,
                events,
                queries,
                error,
            }
        })
        .expect("spawn serve daemon")
}

// --------------------------------------------------------- the generator ---

/// Runs one serve session to completion: builds the instance, stabilizes
/// it, spawns the daemon, streams the budgeted open-loop event mix through
/// it, joins the daemon (clean shutdown — no worker outlives this call),
/// verifies the final state, and returns the report.
pub fn serve(cfg: &ServeConfig) -> Result<ServeReport, String> {
    let budget = match &cfg.trace {
        Some(t) => u32::try_from(t.len()).map_err(|_| "trace too long".to_string())?,
        None => cfg.budget,
    };
    let spec = cfg.spec.clone().with_param("events", budget);
    let (mut engine, trace) = match spec.build()? {
        WorkloadInstance::OrientChurn { graph, trace } => {
            let mut eng = OrientChurnEngine::new(
                graph.clone(),
                Orientation::toward_larger(&graph),
                RepairMode::Incremental,
            )
            .with_threads(cfg.threads)
            .with_shards(cfg.shards);
            if let Some(h) = cfg.stamp_horizon {
                eng = eng.with_max_rounds(h / 2).with_stamp_horizon(h);
            }
            (ServeEngine::Orient(Box::new(eng)), trace)
        }
        WorkloadInstance::AssignChurn { base, trace } => {
            let mut eng = AssignChurnEngine::new(&base, RepairMode::Incremental)
                .with_threads(cfg.threads)
                .with_shards(cfg.shards);
            if let Some(h) = cfg.stamp_horizon {
                eng = eng.with_max_rounds(h / 2).with_stamp_horizon(h);
            }
            (ServeEngine::Assign(Box::new(eng)), trace)
        }
        _ => {
            return Err(format!(
                "family '{}' is not a churn family; serve needs one of: {}",
                spec.family,
                churn_families().join(", ")
            ))
        }
    };
    // A recorded trace replaces the generated mix; the base instance (built
    // above — churn families draw the graph before the mix) is unchanged.
    let trace = match &cfg.trace {
        Some(t) => t.clone(),
        None => trace,
    };
    // Reach the first stable state before opening the doors.
    match &mut engine {
        ServeEngine::Orient(e) => {
            e.stabilize();
        }
        ServeEngine::Assign(e) => {
            e.stabilize();
        }
    }
    engine
        .verify()
        .map_err(|e| format!("initial stabilization: {e}"))?;

    let (tx, rx) = mpsc::sync_channel::<ServeRequest>(cfg.queue.max(1));
    let (reply_tx, reply_rx) = mpsc::channel::<LoadSnapshot>();
    let daemon = spawn_daemon(engine, rx);

    let start = Instant::now();
    let mut backpressure = 0u64;
    let mut max_lag = Duration::ZERO;
    let mut queries_sent = 0u64;
    let send = |req: ServeRequest, backpressure: &mut u64| -> Result<(), String> {
        match tx.try_send(req) {
            Ok(()) => Ok(()),
            Err(mpsc::TrySendError::Full(req)) => {
                *backpressure += 1;
                tx.send(req).map_err(|_| "serve daemon hung up".to_string())
            }
            Err(mpsc::TrySendError::Disconnected(_)) => Err("serve daemon hung up".to_string()),
        }
    };
    let mut stream_error = None;
    for (i, ev) in trace.into_iter().enumerate() {
        let deadline = start + tick_offset(cfg.rate, i as u64);
        let now = Instant::now();
        if now < deadline {
            thread::sleep(deadline - now);
        } else {
            max_lag = max_lag.max(now - deadline);
        }
        // The latency epoch is the *scheduled* tick, not the actual send:
        // generator lag and queueing delay both count against the run.
        let emitted = if cfg.rate == 0 {
            Instant::now()
        } else {
            deadline
        };
        if let Err(e) = send(ServeRequest::Event { ev, emitted }, &mut backpressure) {
            stream_error = Some(e);
            break;
        }
        if cfg.query_every > 0 && (i as u32 + 1).is_multiple_of(cfg.query_every) {
            queries_sent += 1;
            if let Err(e) = send(
                ServeRequest::Query {
                    reply: reply_tx.clone(),
                },
                &mut backpressure,
            ) {
                stream_error = Some(e);
                break;
            }
        }
    }
    // Dropping the sender is the shutdown signal; join for a clean exit.
    drop(tx);
    let mut outcome = daemon.join().map_err(|_| "serve daemon panicked")?;
    let wall = start.elapsed();
    if let Some(e) = outcome.error {
        return Err(format!("repair failed: {e}"));
    }
    if let Some(e) = stream_error {
        return Err(format!("event stream broke: {e}"));
    }
    drop(reply_tx);
    let snapshots: Vec<LoadSnapshot> = reply_rx.try_iter().collect();
    assert_eq!(
        snapshots.len() as u64,
        queries_sent,
        "every query answered before shutdown"
    );
    assert_eq!(outcome.queries, queries_sent);
    outcome
        .engine
        .verify()
        .map_err(|e| format!("final state unstable: {e}"))?;

    Ok(ServeReport {
        spec: spec.to_string(),
        engine: outcome.engine.kind(),
        size: spec.size,
        seed: spec.seed,
        rate: cfg.rate,
        budget,
        threads: cfg.threads,
        shards: cfg.shards,
        queue: cfg.queue,
        nodes: outcome.engine.nodes(),
        events: outcome.events,
        queries: outcome.queries,
        backpressure,
        max_lag_ns: max_lag.as_nanos() as u64,
        wall_ns: wall.as_nanos() as u64,
        busy_ns: outcome.busy.as_nanos() as u64,
        repair: outcome.repair,
        perf: outcome.engine.exec_perf(),
        latency: LatencySummary::from_hist(&mut outcome.hist),
        max_load: outcome.engine.max_load(),
        fingerprint: outcome.engine.fingerprint(),
    })
}

// ------------------------------------------------------------------ JSON ---

fn push_kv_u64(s: &mut String, key: &str, v: u64, trailing: bool) {
    s.push_str(&format!("\"{key}\":{v}{}", if trailing { "," } else { "" }));
}

/// Serializes a report as the versioned `td-serve/v1` JSON document. The
/// writer is hand-rolled (the workspace is hermetic: no serde), emits only
/// integers, booleans, fixed-precision fractions, and strings of known-safe
/// characters, and is covered by a shape test.
pub fn write_json(r: &ServeReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\n\"schema\":\"{SCHEMA}\",\n\"spec\":\"{}\",\n\"engine\":\"{}\",\n",
        r.spec, r.engine
    ));
    s.push_str(&format!("\"size\":{},\"seed\":{},", r.size, r.seed));
    push_kv_u64(&mut s, "rate", r.rate, true);
    push_kv_u64(&mut s, "budget", r.budget as u64, true);
    push_kv_u64(&mut s, "threads", r.threads as u64, true);
    push_kv_u64(&mut s, "shards", r.shards as u64, true);
    push_kv_u64(&mut s, "queue", r.queue as u64, true);
    s.push('\n');
    push_kv_u64(&mut s, "nodes", r.nodes as u64, true);
    push_kv_u64(&mut s, "events", r.events as u64, true);
    push_kv_u64(&mut s, "queries", r.queries, true);
    push_kv_u64(&mut s, "backpressure", r.backpressure, true);
    push_kv_u64(&mut s, "max_lag_ns", r.max_lag_ns, true);
    push_kv_u64(&mut s, "wall_ns", r.wall_ns, true);
    push_kv_u64(&mut s, "busy_ns", r.busy_ns, true);
    s.push('\n');
    s.push_str(&format!(
        "\"sustained_eps\":{:.1},\"saturation_eps\":{:.1},\"fell_behind\":{},\n",
        r.sustained_eps(),
        r.saturation_eps(),
        r.fell_behind()
    ));
    s.push_str("\"repair\":{");
    push_kv_u64(&mut s, "rounds", r.repair.rounds as u64, true);
    push_kv_u64(&mut s, "messages", r.repair.messages, true);
    push_kv_u64(&mut s, "node_steps", r.repair.node_steps, false);
    s.push_str("},\n\"perf\":{");
    push_kv_u64(&mut s, "node_rounds", r.perf.node_rounds, true);
    push_kv_u64(&mut s, "halted_scans", r.perf.halted_scans, true);
    push_kv_u64(&mut s, "sparse_skips", r.perf.sparse_skips, true);
    push_kv_u64(&mut s, "local_messages", r.perf.local_messages, true);
    push_kv_u64(&mut s, "boundary_messages", r.perf.boundary_messages, true);
    push_kv_u64(&mut s, "stamp_scans", r.perf.stamp_scans, false);
    s.push_str("},\n\"latency_ns\":{");
    push_kv_u64(&mut s, "count", r.latency.count, true);
    push_kv_u64(&mut s, "p50", r.latency.p50_ns, true);
    push_kv_u64(&mut s, "p99", r.latency.p99_ns, true);
    push_kv_u64(&mut s, "p999", r.latency.p999_ns, true);
    push_kv_u64(&mut s, "max", r.latency.max_ns, true);
    push_kv_u64(&mut s, "mean", r.latency.mean_ns, false);
    s.push_str("},\n");
    push_kv_u64(&mut s, "max_load", r.max_load as u64, true);
    push_kv_u64(&mut s, "fingerprint", r.fingerprint, false);
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 ns, worst-case order for a naive implementation.
        for v in (1..=1000u64).rev() {
            h.record(Duration::from_nanos(v));
        }
        assert_eq!(h.len(), 1000);
        assert_eq!(h.percentile_ns(500), 500);
        assert_eq!(h.percentile_ns(990), 990);
        assert_eq!(h.percentile_ns(999), 999);
        assert_eq!(h.percentile_ns(1000), 1000);
        assert_eq!(h.mean_ns(), 500); // (1+1000)/2 = 500.5, integer floor
                                      // Small sample: nearest rank, never interpolated.
        let mut s = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            s.record(Duration::from_nanos(v));
        }
        assert_eq!(s.percentile_ns(500), 20);
        assert_eq!(s.percentile_ns(990), 30);
        assert_eq!(s.percentile_ns(999), 30);
        // Empty histogram answers 0 rather than panicking.
        assert_eq!(LatencyHistogram::new().percentile_ns(999), 0);
    }

    #[test]
    fn lazy_sort_matches_per_call_sort_reference() {
        // The histogram now sorts once per batch of queries; the reference
        // below clones and sorts per call the way the old implementation
        // did. Percentiles must be unchanged, including across interleaved
        // record/query sequences that invalidate the sorted order.
        let mut h = LatencyHistogram::new();
        let mut vals: Vec<u64> = Vec::new();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        // The reference clones and sorts per call, then asks the one shared
        // rank formula — the histogram path and this path can only differ
        // in their sort bookkeeping, never in the rank arithmetic.
        let reference = |vals: &[u64], permille: u32| -> u64 {
            let mut sorted = vals.to_vec();
            sorted.sort_unstable();
            nearest_rank(&sorted, permille)
        };
        for round in 0..4 {
            for _ in 0..337 {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let v = x >> 40;
                vals.push(v);
                h.record(Duration::from_nanos(v));
            }
            for p in [0, 1, 250, 500, 900, 990, 999, 1000] {
                assert_eq!(
                    h.percentile_ns(p),
                    reference(&vals, p),
                    "round {round} p{p}"
                );
            }
            assert_eq!(h.mean_ns(), {
                let sum: u128 = vals.iter().map(|&v| v as u128).sum();
                (sum / vals.len() as u128) as u64
            });
        }
    }

    #[test]
    fn tick_schedule_is_deterministic_and_exact() {
        assert_eq!(tick_offset(0, 999), Duration::ZERO);
        assert_eq!(tick_offset(1000, 0), Duration::ZERO);
        assert_eq!(tick_offset(1000, 1), Duration::from_millis(1));
        assert_eq!(tick_offset(1000, 250), Duration::from_millis(250));
        assert_eq!(tick_offset(4, 3), Duration::from_millis(750));
        // Integer division truncates identically on every run.
        assert_eq!(tick_offset(3, 1), Duration::from_nanos(333_333_333));
    }

    #[test]
    fn tick_offset_saturates_instead_of_truncating() {
        // i/rate combinations whose nanosecond count exceeds u64 used to
        // wrap through the silent `as u64` cast; they must pin to the max.
        assert_eq!(tick_offset(1, u64::MAX), Duration::from_nanos(u64::MAX));
        let wrap_point = u64::MAX / 1_000_000_000 + 1;
        assert_eq!(
            tick_offset(1, wrap_point),
            Duration::from_nanos(u64::MAX),
            "first overflowing tick saturates"
        );
        assert_eq!(
            tick_offset(1, wrap_point - 1),
            Duration::from_nanos((wrap_point - 1) * 1_000_000_000),
            "last exact tick is unchanged"
        );
        // Well inside the range nothing changes.
        assert_eq!(tick_offset(1_000_000, 1), Duration::from_nanos(1_000));
    }

    #[test]
    fn schedule_overflow_detection_brackets_the_boundary() {
        assert!(!schedule_overflows(0, u64::MAX), "unpaced never overflows");
        assert!(!schedule_overflows(1, 0), "empty budget never overflows");
        assert!(!schedule_overflows(1_000, 1_000_000_000));
        // At 1 event/sec the last tick of budget b is (b-1)·1e9 ns; u64
        // nanoseconds hold ~584 years ≈ 18.4e9 events.
        let limit = u64::MAX / 1_000_000_000;
        assert!(!schedule_overflows(1, limit + 1), "last tick exactly fits");
        assert!(schedule_overflows(1, limit + 2), "one past the horizon");
        assert!(schedule_overflows(1, u64::MAX));
        // Every u32-range budget is schedulable at any nonzero rate.
        assert!(!schedule_overflows(1, u32::MAX as u64));
    }

    fn report_shell(events: u32, busy_ns: u64, rate: u64, backpressure: u64) -> ServeReport {
        ServeReport {
            spec: "small-world:size=8".into(),
            engine: "orient",
            size: 8,
            seed: 1,
            rate,
            budget: events,
            threads: 1,
            shards: 1,
            queue: 16,
            nodes: 8,
            events,
            queries: 0,
            backpressure,
            max_lag_ns: 0,
            wall_ns: 1,
            busy_ns,
            repair: RepairStats::accumulator(),
            perf: ExecPerf::default(),
            latency: LatencySummary::default(),
            max_load: 0,
            fingerprint: 0,
        }
    }

    #[test]
    fn saturation_is_well_defined_at_zero_busy_time() {
        // No events: capacity unmeasured, nothing fell behind.
        let idle = report_shell(0, 0, 1_000, 0);
        assert_eq!(idle.saturation_eps(), 0.0);
        assert!(!idle.fell_behind(), "an empty run cannot fall behind");
        // Events with zero measurable repair time: unsaturable, and an
        // offered rate can never exceed infinite capacity.
        let instant = report_shell(10, 0, u64::MAX, 0);
        assert_eq!(instant.saturation_eps(), f64::INFINITY);
        assert!(!instant.fell_behind());
        // ... unless emission actually blocked on the queue.
        let blocked = report_shell(10, 0, 1_000, 3);
        assert!(blocked.fell_behind());
        // The ordinary path is untouched.
        let normal = report_shell(10, 1_000_000_000, 5, 0);
        assert_eq!(normal.saturation_eps(), 10.0);
        assert!(!normal.fell_behind());
        assert!(report_shell(10, 1_000_000_000, 11, 0).fell_behind());
    }

    #[test]
    fn nearest_rank_is_the_single_percentile_implementation() {
        // Pin the two paths — histogram vs direct — at p50/p99/p999 over
        // an awkward length (not a divisor of 1000).
        let mut h = LatencyHistogram::new();
        let mut vals: Vec<u64> = (0..237).map(|i| (i * 7919) % 1000).collect();
        for &v in &vals {
            h.record(Duration::from_nanos(v));
        }
        vals.sort_unstable();
        for p in [500, 990, 999] {
            assert_eq!(h.percentile_ns(p), nearest_rank(&vals, p), "p{p}");
        }
        assert_eq!(nearest_rank(&[], 999), 0);
    }

    #[test]
    fn serve_is_deterministic_under_fixed_seed() {
        let mut cfg = ServeConfig::new("churn-orient").unwrap();
        cfg.spec = cfg.spec.with_size(48).with_seed(11);
        cfg.budget = 48;
        cfg.query_every = 16;
        let a = serve(&cfg).expect("serve run");
        let b = serve(&cfg).expect("serve run");
        assert_eq!(a.events, 48);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.repair, b.repair);
        assert_eq!(a.perf, b.perf);
        assert_eq!(a.queries, b.queries);
        // Threads change scheduling, never results.
        let mut par = cfg.clone();
        par.threads = 4;
        par.shards = 4;
        let c = serve(&par).expect("serve run");
        assert_eq!(a.fingerprint, c.fingerprint);
        assert_eq!(a.repair, c.repair);
    }

    #[test]
    fn budget_exhaustion_is_a_clean_shutdown() {
        let mut cfg = ServeConfig::new("churn-assign").unwrap();
        cfg.spec = cfg.spec.with_size(8).with_seed(3);
        cfg.budget = 40;
        cfg.query_every = 8;
        cfg.queue = 4; // force backpressure paths too
                       // serve() joins the daemon before returning: a report in hand
                       // proves no worker outlived the run.
        let r = serve(&cfg).expect("serve run");
        assert_eq!(r.events, 40, "full budget applied");
        assert_eq!(r.queries, 5, "every query answered before shutdown");
        assert_eq!(r.latency.count, 40);
        assert!(r.latency.p50_ns <= r.latency.p99_ns);
        assert!(r.latency.p99_ns <= r.latency.p999_ns);
        assert!(r.latency.p999_ns <= r.latency.max_ns);
        assert!(r.sustained_eps() > 0.0);
        assert!(r.saturation_eps() > 0.0);
    }

    #[test]
    fn serve_rejects_non_churn_families() {
        assert!(ServeConfig::new("rotor").is_err());
        assert!(ServeConfig::new("no-such-family").is_err());
        assert!(churn_families().contains(&"churn-assign"));
    }

    #[test]
    fn serve_survives_the_stamp_horizon() {
        // Flip-only trace: the engine never rebuilds its sim, so the round
        // counter climbs monotonically — the exact profile that panicked at
        // the pre-fix assert. A lowered horizon crosses the wrap point
        // dozens of times within one budgeted run.
        let mut cfg = ServeConfig::new("small-world").unwrap();
        cfg.spec = cfg
            .spec
            .with_size(32)
            .with_seed(5)
            .with_param("flip_w", 1)
            .with_param("ins_w", 0)
            .with_param("del_w", 0);
        cfg.budget = 200;
        cfg.stamp_horizon = Some(256);
        let wrapped = serve(&cfg).expect("serve across renormalizations");
        assert_eq!(wrapped.events, 200);
        // Bit-identical to the same run with the default horizon.
        cfg.stamp_horizon = None;
        let plain = serve(&cfg).expect("serve without renormalization");
        assert_eq!(wrapped.fingerprint, plain.fingerprint);
        assert_eq!(wrapped.repair, plain.repair);
    }

    #[test]
    fn json_is_schema_versioned_and_well_shaped() {
        let mut cfg = ServeConfig::quick();
        cfg.budget = 24;
        cfg.rate = 0;
        let r = serve(&cfg).expect("quick serve");
        let json = write_json(&r);
        assert!(json.contains(SCHEMA));
        assert!(json.contains("\"sustained_eps\""));
        assert!(json.contains("\"p999\""));
        assert!(json.contains("\"fingerprint\""));
        assert!(json_shape_ok(&json), "malformed JSON:\n{json}");
    }

    /// A tiny structural validator: balanced braces/brackets outside
    /// strings, no trailing commas before closers. Not a full parser, but
    /// enough to keep the hand-rolled writer honest.
    fn json_shape_ok(s: &str) -> bool {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut prev = ' ';
        for ch in s.chars() {
            if in_str {
                if ch == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match ch {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        if prev == ',' {
                            return false;
                        }
                        depth -= 1;
                        if depth < 0 {
                            return false;
                        }
                    }
                    _ => {}
                }
            }
            if !ch.is_whitespace() {
                prev = ch;
            }
        }
        depth == 0 && !in_str
    }
}
