//! The protocol-comparison harness behind `td compare`.
//!
//! Runs every registered balancer ([`td_balance::registry`]) over the same
//! instances — the generator families of the [`crate::spec`] registry
//! and/or recorded [`crate::trace`] corpus files — on an executor grid
//! (sequential, parallel, sharded), checks bit-identity across the grid
//! and each protocol's own verifier, and reports convergence rounds, total
//! messages, tokens moved, and final discrepancy per (instance, protocol)
//! pair. Reports render as an aligned table, as golden-snapshot lines, or
//! as schema-versioned [`SCHEMA`] JSON.
//!
//! Every family maps to a balancing instance by projecting its
//! communication graph — orientation and churn families directly, game
//! families through the game graph, assignment families through the
//! customer/server bipartite graph — and seeding a skewed token vector on
//! it ([`BalanceInstance::seeded`]). Churn-orient families and traces also
//! replay their event scripts (edge inserts/deletes as live topology
//! changes, flips as liveness pokes, token events as load perturbations).
//! Assignment-churn scripts (`join`/`leave`/`cap`) have no meaning for
//! node loads and are reported as unsupported.

use crate::spec::{WorkloadInstance, WorkloadSpec, FAMILIES};
use crate::trace::Trace;
use td_balance::{registry, BalanceInstance, BalanceRun, BalancingProtocol, ExecPoint};
use td_graph::{CsrGraph, GraphBuilder, NodeId};
use td_local::churn::ChurnEvent;

/// Schema tag of the JSON document [`write_json`] emits.
pub const SCHEMA: &str = "td-compare/v1";

/// Configuration of one comparison sweep.
#[derive(Clone, Debug)]
pub struct CompareConfig {
    /// Size override for every family (`None` = each family's default).
    pub size: Option<u32>,
    /// Instance seed (graph generation and token placement).
    pub seed: u64,
    /// Protocol names to run (must resolve via [`td_balance::find`]).
    pub protocols: Vec<String>,
    /// Worker threads of the parallel grid points.
    pub threads: usize,
    /// Shards of the sharded grid point.
    pub shards: usize,
    /// Cap on replayed churn events per instance (`None` = all).
    pub max_events: Option<usize>,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            size: None,
            seed: 42,
            protocols: registry().iter().map(|p| p.name().to_string()).collect(),
            threads: 4,
            shards: 3,
            max_events: None,
        }
    }
}

impl CompareConfig {
    /// The executor grid the sweep checks bit-identity over: sequential,
    /// parallel unsharded, parallel sharded (deduplicated if the
    /// configured points coincide).
    pub fn grid(&self) -> Vec<ExecPoint> {
        let mut points = vec![ExecPoint::sequential()];
        for p in [
            ExecPoint {
                threads: self.threads,
                shards: 1,
            },
            ExecPoint {
                threads: self.threads,
                shards: self.shards,
            },
        ] {
            if !points.contains(&p) {
                points.push(p);
            }
        }
        points
    }

    /// Resolves the configured protocol names against the registry.
    pub fn resolve_protocols(&self) -> Result<Vec<&'static dyn BalancingProtocol>, String> {
        let known = || {
            registry()
                .iter()
                .map(|p| p.name())
                .collect::<Vec<_>>()
                .join(", ")
        };
        self.protocols
            .iter()
            .map(|name| {
                td_balance::find(name)
                    .ok_or_else(|| format!("unknown protocol '{name}' (known: {})", known()))
            })
            .collect()
    }
}

/// One (instance, protocol) measurement of the comparison sweep.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Instance label: a family name or a trace label.
    pub instance: String,
    /// Protocol name.
    pub protocol: &'static str,
    /// Nodes of the balancing graph.
    pub nodes: usize,
    /// Edges of the balancing graph (initial).
    pub edges: usize,
    /// Churn events replayed after the initial stabilization.
    pub events: u32,
    /// The measured run (identical on every grid point, by construction).
    pub run: BalanceRun,
}

impl CompareRow {
    /// The cache-stable canonical serialization of this row: its
    /// protocol-prefixed deterministic outcomes as flat integer metrics
    /// (bit-identical across the executor grid by construction, so no
    /// grid point appears in the name). What the experiment cache stores.
    pub fn canonical_metrics(&self) -> Vec<(String, u64)> {
        let p = self.protocol;
        vec![
            (format!("{p}/rounds"), self.run.rounds),
            (format!("{p}/messages"), self.run.messages),
            (format!("{p}/moves"), self.run.moves),
            (format!("{p}/discrepancy"), self.run.discrepancy as u64),
            (format!("{p}/max_gap"), self.run.max_gap as u64),
            (format!("{p}/fingerprint"), self.run.fingerprint),
        ]
    }
}

/// The full result of a comparison sweep.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// The sweep configuration.
    pub config: CompareConfig,
    /// One row per (instance, protocol), instance-major in sweep order.
    pub rows: Vec<CompareRow>,
    /// Instances the sweep had to skip, with reasons (e.g. assignment
    /// churn scripts, which no balancer can replay).
    pub skipped: Vec<(String, String)>,
}

/// Projects a built workload onto the common balancing problem: the
/// communication graph plus the churn events a balancer can replay.
pub fn balance_workload(spec: &WorkloadSpec) -> Result<(CsrGraph, Vec<ChurnEvent>), String> {
    Ok(match spec.build()? {
        WorkloadInstance::Orientation(g) => (g, Vec::new()),
        WorkloadInstance::Game(game) => (game.graph().clone(), Vec::new()),
        WorkloadInstance::Assignment { inst, .. } => (bipartite_graph(&inst)?, Vec::new()),
        WorkloadInstance::OrientChurn { graph, trace } => (graph, trace),
        WorkloadInstance::AssignChurn { base, .. } => {
            // The base instance balances fine; the join/leave/cap script
            // does not apply to node loads and is dropped by projection.
            (bipartite_graph(&base)?, Vec::new())
        }
    })
}

/// The customer/server bipartite graph of an assignment instance:
/// customers are nodes `0..C`, servers `C..C+S`, one edge per distinct
/// (customer, server) adjacency.
fn bipartite_graph(inst: &td_assign::AssignmentInstance) -> Result<CsrGraph, String> {
    let c = inst.num_customers();
    let s = inst.num_servers();
    let mut b = GraphBuilder::new(c + s);
    for cust in 0..c {
        let mut last = None;
        for &srv in inst.servers_of(cust) {
            // servers_of is sorted; skip duplicate adjacencies.
            if last == Some(srv) {
                continue;
            }
            last = Some(srv);
            b.add_edge(NodeId::from(cust), NodeId::from(c + srv as usize))
                .map_err(|e| format!("bipartite projection: {e:?}"))?;
        }
    }
    b.build()
        .map_err(|e| format!("bipartite projection: {e:?}"))
}

/// Runs every configured protocol on one instance over the executor grid,
/// checking bit-identity across the grid. Returns one row per protocol.
fn run_instance(
    label: &str,
    graph: CsrGraph,
    events: &[ChurnEvent],
    cfg: &CompareConfig,
) -> Result<Vec<CompareRow>, String> {
    let inst = BalanceInstance::seeded(graph, cfg.seed);
    let nodes = inst.graph.num_nodes();
    let edges = inst.graph.num_edges();
    let grid = cfg.grid();
    let mut rows = Vec::new();
    for proto in cfg.resolve_protocols()? {
        let base = proto
            .run(&inst, cfg.seed, grid[0], events)
            .map_err(|e| format!("{label}: {e}"))?;
        for &point in &grid[1..] {
            let run = proto
                .run(&inst, cfg.seed, point, events)
                .map_err(|e| format!("{label}: {e}"))?;
            if run != base {
                return Err(format!(
                    "{label}: {} diverged between {:?} and {point:?} \
                     (fingerprints {:016x} vs {:016x})",
                    proto.name(),
                    grid[0],
                    base.fingerprint,
                    run.fingerprint
                ));
            }
        }
        rows.push(CompareRow {
            instance: label.to_string(),
            protocol: proto.name(),
            nodes,
            edges,
            events: base.events_applied,
            run: base,
        });
    }
    Ok(rows)
}

/// Sweeps the named generator families (every registry family if `families`
/// is empty).
pub fn compare_families(cfg: &CompareConfig, families: &[String]) -> Result<CompareReport, String> {
    let names: Vec<String> = if families.is_empty() {
        FAMILIES.iter().map(|f| f.name.to_string()).collect()
    } else {
        families.to_vec()
    };
    let mut report = CompareReport {
        config: cfg.clone(),
        rows: Vec::new(),
        skipped: Vec::new(),
    };
    for name in &names {
        let mut spec = WorkloadSpec::new(name)?.with_seed(cfg.seed);
        if let Some(size) = cfg.size {
            spec = spec.with_size(size);
        }
        spec.validate()?;
        let (graph, mut events) = balance_workload(&spec)?;
        if let Some(cap) = cfg.max_events {
            events.truncate(cap);
        }
        report.rows.extend(run_instance(name, graph, &events, cfg)?);
    }
    Ok(report)
}

/// Adds a recorded trace file (already read into `trace`) to a sweep:
/// the trace's spec supplies the initial graph, the recorded events
/// replay on it. Inapplicable scripts land in `skipped`.
pub fn compare_trace(report: &mut CompareReport, label: &str, trace: &Trace) -> Result<(), String> {
    let cfg = report.config.clone();
    let (graph, _) = balance_workload(&trace.spec)?;
    let mut events: Vec<ChurnEvent> = trace.events.clone();
    if let Some(cap) = cfg.max_events {
        events.truncate(cap);
    }
    if events.iter().any(|e| {
        matches!(
            e,
            ChurnEvent::CustomerJoin { .. }
                | ChurnEvent::CustomerLeave(_)
                | ChurnEvent::ServerCapacity { .. }
        )
    }) {
        report.skipped.push((
            label.to_string(),
            "assignment churn script (join/leave/cap) — not a node-load workload".to_string(),
        ));
        return Ok(());
    }
    report
        .rows
        .extend(run_instance(label, graph, &events, &cfg)?);
    Ok(())
}

impl CompareReport {
    /// Renders the sweep as an aligned table.
    pub fn table(&self) -> crate::Table {
        let mut t = crate::Table::new(&[
            "instance",
            "protocol",
            "n",
            "m",
            "events",
            "rounds",
            "messages",
            "moves",
            "disc0",
            "disc",
            "gap",
            "fingerprint",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.instance.clone(),
                r.protocol.to_string(),
                r.nodes.to_string(),
                r.edges.to_string(),
                r.events.to_string(),
                r.run.rounds.to_string(),
                r.run.messages.to_string(),
                r.run.moves.to_string(),
                r.run.initial_discrepancy.to_string(),
                r.run.discrepancy.to_string(),
                r.run.max_gap.to_string(),
                format!("{:016x}", r.run.fingerprint),
            ]);
        }
        t
    }

    /// Renders the sweep as golden-snapshot lines (stable, line-diffable).
    pub fn golden(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{}/{}: n={} m={} events={} rounds={} messages={} moves={} \
                 disc0={} disc={} gap={} fp={:016x}\n",
                r.instance,
                r.protocol,
                r.nodes,
                r.edges,
                r.events,
                r.run.rounds,
                r.run.messages,
                r.run.moves,
                r.run.initial_discrepancy,
                r.run.discrepancy,
                r.run.max_gap,
                r.run.fingerprint
            ));
        }
        for (label, why) in &self.skipped {
            out.push_str(&format!("{label}: skipped ({why})\n"));
        }
        out
    }
}

/// Serializes a report as the versioned [`SCHEMA`] JSON document. The
/// writer is hand-rolled (the workspace is hermetic: no serde) and emits
/// only integers and strings of known-safe characters.
pub fn write_json(r: &CompareReport) -> String {
    let mut s = String::new();
    s.push_str(&format!("{{\n\"schema\":\"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "\"seed\":{},\"threads\":{},\"shards\":{},",
        r.config.seed, r.config.threads, r.config.shards
    ));
    // Schema-additive header fields: the resolved executor grid, the size
    // override, and the event cap — everything a cache needs to key a
    // report faithfully.
    let execs: Vec<String> = r
        .config
        .grid()
        .iter()
        .map(|p| format!("\"{}x{}\"", p.threads, p.shards))
        .collect();
    s.push_str(&format!("\"executors\":[{}],", execs.join(",")));
    match r.config.size {
        Some(size) => s.push_str(&format!("\"size\":{size},")),
        None => s.push_str("\"size\":null,"),
    }
    match r.config.max_events {
        Some(cap) => s.push_str(&format!("\"max_events\":{cap},\n")),
        None => s.push_str("\"max_events\":null,\n"),
    }
    s.push_str("\"rows\":[\n");
    for (i, row) in r.rows.iter().enumerate() {
        s.push_str(&format!(
            "{{\"instance\":\"{}\",\"protocol\":\"{}\",\"nodes\":{},\"edges\":{},\
             \"events\":{},\"rounds\":{},\"messages\":{},\"moves\":{},\
             \"initial_discrepancy\":{},\"discrepancy\":{},\"max_gap\":{},\
             \"fingerprint\":\"{:016x}\"}}{}\n",
            row.instance,
            row.protocol,
            row.nodes,
            row.edges,
            row.events,
            row.run.rounds,
            row.run.messages,
            row.run.moves,
            row.run.initial_discrepancy,
            row.run.discrepancy,
            row.run.max_gap,
            row.run.fingerprint,
            if i + 1 < r.rows.len() { "," } else { "" }
        ));
    }
    s.push_str("],\n\"skipped\":[");
    for (i, (label, why)) in r.skipped.iter().enumerate() {
        s.push_str(&format!(
            "{{\"instance\":\"{label}\",\"reason\":\"{why}\"}}{}",
            if i + 1 < r.skipped.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> CompareConfig {
        CompareConfig {
            size: Some(12),
            seed: 7,
            threads: 2,
            shards: 2,
            ..CompareConfig::default()
        }
    }

    #[test]
    fn every_family_projects_to_a_balance_workload() {
        for f in FAMILIES {
            let spec = WorkloadSpec::new(f.name).unwrap();
            let (g, _) = balance_workload(&spec)
                .unwrap_or_else(|e| panic!("{}: projection failed: {e}", f.name));
            assert!(g.num_nodes() > 0, "{}: empty projection", f.name);
        }
    }

    #[test]
    fn sweep_covers_families_times_protocols() {
        let cfg = tiny_cfg();
        let fams: Vec<String> = ["grid", "layered", "uniform-assign"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let report = compare_families(&cfg, &fams).unwrap();
        assert_eq!(report.rows.len(), 3 * 3);
        for r in &report.rows {
            assert!(
                r.run.max_gap <= 1,
                "{}/{} unbalanced",
                r.instance,
                r.protocol
            );
        }
        let json = write_json(&report);
        assert!(json.contains("\"schema\":\"td-compare/v1\""));
        assert!(json.contains("\"fingerprint\":\""));
        let table = report.table().render();
        assert!(table.contains("token-drop") && table.contains("rotor-router"));
    }

    #[test]
    fn churn_family_replays_events() {
        let cfg = CompareConfig {
            size: Some(16),
            seed: 3,
            threads: 2,
            shards: 2,
            max_events: Some(6),
            ..CompareConfig::default()
        };
        let fams = vec!["churn-orient".to_string()];
        let report = compare_families(&cfg, &fams).unwrap();
        assert!(report.rows.iter().all(|r| r.events > 0));
    }

    #[test]
    fn json_report_round_trips_with_header_fields() {
        // The header now records the resolved executor grid, size
        // override, and event cap (schema-additive); pin by parsing the
        // document back with the in-tree JSON reader.
        let cfg = CompareConfig {
            max_events: Some(6),
            ..tiny_cfg()
        };
        let report = compare_families(&cfg, &["grid".to_string()]).unwrap();
        let doc = write_json(&report);
        let parsed = crate::json::parse(&doc).unwrap();
        assert_eq!(parsed.get("schema").and_then(|v| v.as_str()), Some(SCHEMA));
        assert_eq!(parsed.get("size").and_then(|v| v.as_u64()), Some(12));
        assert_eq!(parsed.get("max_events").and_then(|v| v.as_u64()), Some(6));
        let execs: Vec<&str> = parsed
            .get("executors")
            .and_then(|e| e.as_arr())
            .expect("executors array")
            .iter()
            .filter_map(|e| e.as_str())
            .collect();
        assert_eq!(execs, vec!["1x1", "2x1", "2x2"]);
        let rows = parsed.get("rows").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(rows.len(), report.rows.len());
        for (j, row) in rows.iter().zip(&report.rows) {
            assert_eq!(
                j.get("protocol").and_then(|v| v.as_str()),
                Some(row.protocol)
            );
            assert_eq!(
                j.get("rounds").and_then(|v| v.as_u64()),
                Some(row.run.rounds)
            );
            assert_eq!(
                j.get("messages").and_then(|v| v.as_u64()),
                Some(row.run.messages)
            );
        }
        // And the canonical metrics agree with the serialized row.
        let m = report.rows[0].canonical_metrics();
        let key = format!("{}/rounds", report.rows[0].protocol);
        assert!(m.contains(&(key, report.rows[0].run.rounds)));
    }

    #[test]
    fn unknown_protocol_is_a_clean_error() {
        let cfg = CompareConfig {
            protocols: vec!["no-such".into()],
            ..tiny_cfg()
        };
        let err = compare_families(&cfg, &["grid".to_string()]).unwrap_err();
        assert!(err.contains("unknown protocol"), "{err}");
    }
}
