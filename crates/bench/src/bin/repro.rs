//! `repro` — regenerates every experiment table in EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p td-bench --bin repro -- [e1|e2|...|e18|stress|scenarios|all]`
//!
//! Each experiment prints a table of *measured* quantities (rounds, phases,
//! ratios) next to the paper's bound, so the shape claims — who wins, by
//! what factor, where growth rates sit — can be read off directly.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;
use td_assign::bounded::solve_2_bounded;
use td_assign::phases::solve_stable_assignment;
use td_assign::semi_matching::{approximation_ratio, optimal_semi_matching};
use td_bench::workloads::*;
use td_bench::{fit_power_law, mean, scenario, Table};
use td_core::{greedy, lockstep, matching, proposal, three_level};
use td_local::Simulator;
use td_orient::baseline;
use td_orient::lower_bound::{
    check_regular_indegree_lb, check_tree_indegree_bound, stabilization_probe,
};
use td_orient::orientation::Orientation;
use td_orient::phases::{run_phases_capped, solve_stable_orientation, PhaseConfig, ProposalTie};
use td_orient::sequential;

const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = arg == "all";
    let run = |id: &str| all || arg == id;
    if run("e1") {
        e1();
    }
    if run("e2") {
        e2();
    }
    if run("e3") {
        e3();
    }
    if run("e4") {
        e4();
    }
    if run("e5") {
        e5();
    }
    if run("e6") {
        e6();
    }
    if run("e7") {
        e7();
    }
    if run("e8") {
        e8();
    }
    if run("e9") {
        e9();
    }
    if run("e12") {
        e12();
    }
    if run("stress") {
        stress();
    }
    if run("scenarios") {
        scenarios();
    }
    if run("e14") {
        e14();
    }
    if run("e13") {
        e13();
    }
    if run("e15") {
        e15();
    }
    if run("e16") {
        e16();
    }
    if run("e17") {
        e17();
    }
    if run("e18") {
        e18();
    }
}

fn banner(id: &str, claim: &str) {
    println!("\n## {id} — {claim}\n");
}

/// E1 — Theorem 4.1: proposal algorithm solves token dropping in O(L·Δ²).
fn e1() {
    banner("E1", "Theorem 4.1: token dropping in O(L·Δ²) rounds");
    // Sweep Δ at fixed L.
    let levels = 4;
    let mut t = Table::new(&[
        "Δ",
        "L",
        "rounds(mean)",
        "rounds(max)",
        "bound L·Δ²",
        "comm rounds(protocol)",
    ]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &d in &[2usize, 4, 8, 16, 24] {
        let mut rounds = Vec::new();
        let mut comm = Vec::new();
        for &seed in &SEEDS {
            let game = layered_game(d, levels, seed);
            let res = lockstep::run(&game);
            td_core::verify_solution(&game, &res.solution).unwrap();
            rounds.push(res.rounds as f64);
            if d <= 8 {
                let p = proposal::run_on_simulator(&game, &Simulator::sequential());
                comm.push(p.comm_rounds as f64);
            }
        }
        let bound = (levels * d * d) as f64;
        xs.push(d as f64);
        ys.push(mean(&rounds));
        t.row(vec![
            d.to_string(),
            levels.to_string(),
            format!("{:.1}", mean(&rounds)),
            format!("{:.0}", td_bench::max(&rounds)),
            format!("{bound:.0}"),
            if comm.is_empty() {
                "-".into()
            } else {
                format!("{:.1}", mean(&comm))
            },
        ]);
    }
    t.print();
    println!(
        "fitted exponent rounds ~ Δ^b at fixed L: b = {:.2}  (paper bound: ≤ 2)",
        fit_power_law(&xs, &ys)
    );

    // Sweep L at fixed Δ.
    let d = 4usize;
    let mut t = Table::new(&["L", "Δ", "rounds(mean)", "rounds(max)", "bound L·Δ²"]);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &levels in &[2usize, 4, 8, 16, 32] {
        let mut rounds = Vec::new();
        for &seed in &SEEDS {
            let game = layered_game(d, levels, seed);
            let res = lockstep::run(&game);
            rounds.push(res.rounds as f64);
        }
        xs.push(levels as f64);
        ys.push(mean(&rounds));
        t.row(vec![
            levels.to_string(),
            d.to_string(),
            format!("{:.1}", mean(&rounds)),
            format!("{:.0}", td_bench::max(&rounds)),
            format!("{:.0}", (levels * d * d) as f64),
        ]);
    }
    t.print();
    println!(
        "fitted exponent rounds ~ L^b at fixed Δ: b = {:.2}  (paper bound: ≤ 1)",
        fit_power_law(&xs, &ys)
    );
}

/// E2 — Theorem 4.7: 3-level games in O(Δ) vs the general algorithm.
fn e2() {
    banner(
        "E2",
        "Theorem 4.7: 3-level games in O(Δ) rounds (vs general O(Δ²))",
    );
    let mut t = Table::new(&["Δ", "3-level rounds", "general rounds", "bound 3Δ"]);
    let (mut xs, mut ys3, mut ysg) = (Vec::new(), Vec::new(), Vec::new());
    for &d in &[2usize, 4, 8, 16, 32, 48] {
        let mut r3 = Vec::new();
        let mut rg = Vec::new();
        for &seed in &SEEDS {
            let game = three_level_game(d, seed);
            let a = three_level::run_lockstep(&game);
            td_core::verify_solution(&game, &a.solution).unwrap();
            let b = lockstep::run(&game);
            r3.push(a.rounds as f64);
            rg.push(b.rounds as f64);
        }
        xs.push(d as f64);
        ys3.push(mean(&r3));
        ysg.push(mean(&rg));
        t.row(vec![
            d.to_string(),
            format!("{:.1}", mean(&r3)),
            format!("{:.1}", mean(&rg)),
            (3 * d).to_string(),
        ]);
    }
    t.print();
    println!(
        "fitted exponents: 3-level b = {:.2} (≤ 1), general b = {:.2}",
        fit_power_law(&xs, &ys3),
        fit_power_law(&xs, &ysg)
    );
}

/// E3 — Theorem 4.6: maximal matching via height-2 token dropping.
fn e3() {
    banner(
        "E3",
        "Theorem 4.6: maximal matching = height-2 token dropping",
    );
    let mut t = Table::new(&["Δ", "n(per side)", "rounds", "matched", "maximal?"]);
    for &d in &[2usize, 4, 8, 16, 32] {
        let g = matching_graph(20 * d, d, 7 + d as u64);
        let nc = 20 * d;
        let side: Vec<u8> = (0..g.num_nodes())
            .map(|v| if v < nc { 1 } else { 0 })
            .collect();
        let (m, rounds) = matching::maximal_matching_via_token_dropping(&g, &side);
        let ok = matching::is_maximal_matching(&g, &m);
        assert!(ok);
        t.row(vec![
            g.max_degree().to_string(),
            nc.to_string(),
            rounds.to_string(),
            m.len().to_string(),
            ok.to_string(),
        ]);
    }
    t.print();
    println!("(the matching LB of [BBH+19] therefore applies to the game: Ω(Δ + log n/log log n))");
}

/// E4 — Theorem 5.1 / Lemma 5.5: stable orientation, ours vs baselines.
fn e4() {
    banner(
        "E4",
        "Theorem 5.1: stable orientation — phase algorithm vs arbitrary-start baseline",
    );
    let mut t = Table::new(&[
        "Δ",
        "n",
        "ours phases",
        "bound 2Δ",
        "ours comm",
        "baseline comm",
        "seq flips",
    ]);
    let (mut xs, mut ours_r, mut base_r) = (Vec::new(), Vec::new(), Vec::new());
    for &d in &[3usize, 4, 6, 8, 12, 16, 24] {
        let mut phases = Vec::new();
        let mut comm = Vec::new();
        let mut bl = Vec::new();
        let mut flips = Vec::new();
        let mut n = 0;
        for &seed in &SEEDS {
            let g = regular_graph(d, 12, seed);
            n = g.num_nodes();
            let res = solve_stable_orientation(&g, PhaseConfig::default());
            res.orientation.verify_stable(&g).unwrap();
            phases.push(res.phases as f64);
            comm.push(res.comm_rounds as f64);
            let b = baseline::run(&g, Orientation::toward_larger(&g), seed, 10_000_000);
            bl.push(b.comm_rounds as f64);
            let s = sequential::run(&g, Orientation::toward_larger(&g));
            flips.push(s.flips as f64);
        }
        xs.push(d as f64);
        ours_r.push(mean(&comm));
        base_r.push(mean(&bl));
        t.row(vec![
            d.to_string(),
            n.to_string(),
            format!("{:.1}", mean(&phases)),
            (2 * d).to_string(),
            format!("{:.0}", mean(&comm)),
            format!("{:.0}", mean(&bl)),
            format!("{:.0}", mean(&flips)),
        ]);
    }
    t.print();
    println!(
        "fitted comm-round exponents vs Δ: ours b = {:.2}, baseline b = {:.2}",
        fit_power_law(&xs, &ours_r),
        fit_power_law(&xs, &base_r)
    );
    println!("(baseline rounds also grow with n at fixed Δ — propagation chains; ours do not)");

    // n-independence check for ours at fixed Δ.
    let mut t = Table::new(&["Δ", "n", "ours comm", "baseline comm"]);
    for &factor in &[6usize, 12, 24, 48] {
        let d = 6;
        let mut comm = Vec::new();
        let mut bl = Vec::new();
        let mut n = 0;
        for &seed in &SEEDS[..3] {
            let g = regular_graph(d, factor, seed);
            n = g.num_nodes();
            comm.push(solve_stable_orientation(&g, PhaseConfig::default()).comm_rounds as f64);
            bl.push(
                baseline::run(&g, Orientation::toward_larger(&g), seed, 10_000_000).comm_rounds
                    as f64,
            );
        }
        t.row(vec![
            d.to_string(),
            n.to_string(),
            format!("{:.0}", mean(&comm)),
            format!("{:.0}", mean(&bl)),
        ]);
    }
    t.print();

    // Quantify Section 1.2's "arbitrary orientation creates a large amount
    // of unhappiness": repair work done by the baseline (flips) vs by our
    // algorithm (token moves inside the per-phase games). Our careful
    // insertion keeps at most one unit of excess per node, so total repair
    // work stays near the number of edges, while the baseline's flip count
    // tracks the initial Σ load² excess.
    println!("\nrepair work comparison (random Δ-regular, arbitrary start for baseline):");
    let mut t = Table::new(&[
        "Δ",
        "m",
        "baseline unhappy@start",
        "baseline flips",
        "ours TD moves",
    ]);
    for &d in &[4usize, 8, 16, 32] {
        let mut unhappy0 = Vec::new();
        let mut flips = Vec::new();
        let mut moves = Vec::new();
        let mut m = 0usize;
        for &seed in &SEEDS[..3] {
            let g = regular_graph(d, 12, seed);
            m = g.num_edges();
            let init = Orientation::random(&g, &mut SmallRng::seed_from_u64(seed));
            unhappy0.push(init.unhappy_edges(&g).count() as f64);
            let b = baseline::run(&g, init, seed, 10_000_000);
            flips.push(b.flips as f64);
            let ours = solve_stable_orientation(&g, PhaseConfig::default());
            moves.push(ours.stats.iter().map(|s| s.td_moves as u64).sum::<u64>() as f64);
        }
        t.row(vec![
            d.to_string(),
            m.to_string(),
            format!("{:.0}", mean(&unhappy0)),
            format!("{:.0}", mean(&flips)),
            format!("{:.0}", mean(&moves)),
        ]);
    }
    t.print();
    println!("(ours never repairs more than ~one excess unit per node per phase)");
}

/// E5 — Theorem 6.3 certificates and the stabilization probe.
fn e5() {
    banner("E5", "Section 6: Ω(Δ) lower-bound certificates");
    let mut t = Table::new(&[
        "family",
        "Δ",
        "n",
        "Lemma",
        "certificate",
        "max stab. phase",
    ]);
    for &d in &[3usize, 4, 5, 6] {
        // Perfect d-ary trees (depth capped to keep n manageable).
        let depth = match d {
            3 => 6,
            4 => 5,
            5 => 4,
            _ => 4,
        };
        let (g, _) = td_graph::gen::structured::perfect_dary_tree(d, depth, 500_000);
        let res = solve_stable_orientation(&g, PhaseConfig::default());
        check_tree_indegree_bound(&g, &res.orientation).unwrap();
        let probe = stabilization_probe(&g);
        t.row(vec![
            format!("{d}-ary tree depth {depth}"),
            d.to_string(),
            g.num_nodes().to_string(),
            "6.1".into(),
            "indeg ≤ h+1 ✓".into(),
            probe.max_stabilization.to_string(),
        ]);
        // High-girth regular graphs.
        let mut rng = SmallRng::seed_from_u64(99 + d as u64);
        if let Some(g) = td_graph::gen::structured::high_girth_regular(30 * d, d, 5, &mut rng, 100)
        {
            let res = solve_stable_orientation(&g, PhaseConfig::default());
            let (ok, max_in) = check_regular_indegree_lb(&g, &res.orientation, d);
            assert!(ok);
            let probe = stabilization_probe(&g);
            t.row(vec![
                format!("{d}-regular girth ≥ 5"),
                d.to_string(),
                g.num_nodes().to_string(),
                "6.2".into(),
                format!("max indeg {max_in} ≥ ⌈Δ/2⌉ ✓"),
                probe.max_stabilization.to_string(),
            ]);
        }
    }
    t.print();
    println!("(both certificates hold on every instance; stabilization grows with Δ)");
}

/// E6 — Theorems 7.1/7.3: stable assignment over a (C, S) grid.
fn e6() {
    banner(
        "E6",
        "Theorem 7.3: stable assignment in O(C·S⁴), O(C·S) phases",
    );
    let mut t = Table::new(&[
        "C",
        "S(max)",
        "customers",
        "phases",
        "bound 2CS",
        "comm rounds",
        "max td rounds/phase",
    ]);
    for &c in &[2usize, 3, 5] {
        for &s_avg in &[4usize, 8, 16] {
            let ns = 24;
            let mut phases = Vec::new();
            let mut comm = Vec::new();
            let mut tdmax = Vec::new();
            let mut s_seen = 0usize;
            let mut nc = 0usize;
            for &seed in &SEEDS[..3] {
                let inst = assignment_instance(c, s_avg, ns, seed);
                nc = inst.num_customers();
                s_seen = s_seen.max(inst.max_server_degree());
                let res = solve_stable_assignment(&inst);
                res.assignment.verify_stable(&inst).unwrap();
                phases.push(res.phases as f64);
                comm.push(res.comm_rounds as f64);
                tdmax.push(res.stats.iter().map(|s| s.td_rounds).max().unwrap_or(0) as f64);
            }
            t.row(vec![
                c.to_string(),
                s_seen.to_string(),
                nc.to_string(),
                format!("{:.1}", mean(&phases)),
                (2 * c * s_seen).to_string(),
                format!("{:.0}", mean(&comm)),
                format!("{:.0}", td_bench::max(&tdmax)),
            ]);
        }
    }
    t.print();
}

/// E7 — Theorem 7.5: 2-bounded vs exact stable assignment.
fn e7() {
    banner(
        "E7",
        "Theorem 7.5: 2-bounded in O(C·S²) — per-phase TD rounds vs exact",
    );
    let mut t = Table::new(&[
        "S(max)",
        "exact max td/phase",
        "bounded max td/phase",
        "exact comm",
        "bounded comm",
    ]);
    let (mut xs, mut ex_td, mut bd_td) = (Vec::new(), Vec::new(), Vec::new());
    for &s_avg in &[4usize, 8, 16, 32] {
        let ns = 24;
        let c = 3;
        let mut ex = Vec::new();
        let mut bd = Vec::new();
        let mut exc = Vec::new();
        let mut bdc = Vec::new();
        let mut s_seen = 0usize;
        for &seed in &SEEDS[..3] {
            let inst = assignment_instance(c, s_avg, ns, seed);
            s_seen = s_seen.max(inst.max_server_degree());
            let e = solve_stable_assignment(&inst);
            let b = solve_2_bounded(&inst);
            e.assignment.verify_stable(&inst).unwrap();
            b.assignment.verify_k_bounded(&inst, 2).unwrap();
            ex.push(e.stats.iter().map(|s| s.td_rounds).max().unwrap_or(0) as f64);
            bd.push(b.stats.iter().map(|s| s.td_rounds).max().unwrap_or(0) as f64);
            exc.push(e.comm_rounds as f64);
            bdc.push(b.comm_rounds as f64);
        }
        xs.push(s_seen as f64);
        ex_td.push(mean(&ex));
        bd_td.push(mean(&bd));
        t.row(vec![
            s_seen.to_string(),
            format!("{:.1}", mean(&ex)),
            format!("{:.1}", mean(&bd)),
            format!("{:.0}", mean(&exc)),
            format!("{:.0}", mean(&bdc)),
        ]);
    }
    t.print();
    println!(
        "fitted per-phase TD exponents vs S: exact b = {:.2}, bounded b = {:.2} (theory: 2 vs 1)",
        fit_power_law(&xs, &ex_td),
        fit_power_law(&xs, &bd_td)
    );
}

/// E8 — stable assignment 2-approximates the optimal semi-matching.
fn e8() {
    banner(
        "E8",
        "[CHSW12]: stable assignment is a 2-approx of optimal semi-matching",
    );
    let mut t = Table::new(&["workload", "cost(stable)", "cost(opt)", "ratio", "≤ 2?"]);
    let mut worst: f64 = 1.0;
    for (label, skew) in [
        ("uniform", None),
        ("zipf α=1.0", Some(1.0)),
        ("zipf α=1.4", Some(1.4)),
    ] {
        for &seed in &SEEDS {
            let inst = match skew {
                None => uniform_assignment(300, 30, seed),
                Some(a) => skewed_assignment(300, 30, a, seed),
            };
            let stable = solve_stable_assignment(&inst);
            stable.assignment.verify_stable(&inst).unwrap();
            let opt = optimal_semi_matching(&inst);
            let ratio = approximation_ratio(&stable.assignment, &opt.assignment);
            worst = worst.max(ratio);
            if seed == SEEDS[0] {
                t.row(vec![
                    label.to_string(),
                    stable.assignment.cost().to_string(),
                    opt.assignment.cost().to_string(),
                    format!("{ratio:.4}"),
                    (ratio <= 2.0).to_string(),
                ]);
            }
            assert!(ratio <= 2.0);
        }
    }
    t.print();
    println!("worst ratio over all seeds/workloads: {worst:.4} (guarantee: 2.0)");
}

/// E9 — Theorem 7.4: maximal matching from a 2-bounded stable assignment.
fn e9() {
    banner(
        "E9",
        "Theorem 7.4: maximal matching from 2-bounded stable assignment (+1 round)",
    );
    let mut t = Table::new(&[
        "Δ",
        "n(per side)",
        "phases",
        "comm rounds",
        "matched",
        "maximal?",
    ]);
    for &d in &[2usize, 4, 8, 16] {
        let nc = 15 * d;
        let g = matching_graph(nc, d, 31 + d as u64);
        let red = td_assign::matching_reduction::maximal_matching_via_2_bounded(&g, nc);
        let ok = matching::is_maximal_matching(&g, &red.matching);
        assert!(ok);
        t.row(vec![
            g.max_degree().to_string(),
            nc.to_string(),
            red.phases.to_string(),
            red.comm_rounds.to_string(),
            red.matching.len().to_string(),
            ok.to_string(),
        ]);
    }
    t.print();
}

/// stress — adversarial token dropping instances: rounds meet the Ω(Δ)
/// serialization floor (contention comb) and funnel through every layer
/// (waterfall), unlike the easy random instances of E1.
fn stress() {
    banner(
        "STRESS",
        "adversarial games: contention comb (Θ(Δ) floor) and waterfall",
    );
    let mut t = Table::new(&["Δ = k", "comb rounds", "floor k", "protocol comm rounds"]);
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for &k in &[2usize, 4, 8, 16, 32, 64] {
        let game = td_core::TokenGame::contention_comb(k);
        let res = lockstep::run(&game);
        td_core::verify_solution(&game, &res.solution).unwrap();
        // The protocol-side measurement goes through the scenario registry —
        // the same entry `td bench contention-comb` runs.
        let comm = if k <= 16 {
            scenario::find("contention-comb")
                .expect("registered scenario")
                .run(k as u32, 0, &Simulator::sequential())
                .rounds
                .to_string()
        } else {
            "-".into()
        };
        xs.push(k as f64);
        ys.push(res.rounds as f64);
        t.row(vec![
            k.to_string(),
            res.rounds.to_string(),
            k.to_string(),
            comm,
        ]);
    }
    t.print();
    println!(
        "fitted exponent rounds ~ Δ^b: b = {:.2} (serialization makes the Ω(Δ) floor tight)",
        fit_power_law(&xs, &ys)
    );

    let mut t = Table::new(&["k", "levels L", "waterfall rounds", "k + L floor"]);
    for &(k, l) in &[(4usize, 4usize), (8, 4), (8, 8), (16, 8)] {
        let game = td_core::TokenGame::waterfall(k, l);
        let res = lockstep::run(&game);
        td_core::verify_solution(&game, &res.solution).unwrap();
        t.row(vec![
            k.to_string(),
            l.to_string(),
            res.rounds.to_string(),
            (k + l).to_string(),
        ]);
    }
    t.print();
}

/// SCENARIOS — every entry of the td-bench scenario registry, run through
/// the same `Scenario::run` interface the `td bench` CLI and the criterion
/// benches use. Each run self-verifies (stability, rules 1–3, boundedness).
fn scenarios() {
    banner(
        "SCENARIOS",
        "the scenario registry end-to-end (same entries as `td bench`)",
    );
    let sim = Simulator::sequential();
    let mut t = Table::new(&[
        "scenario", "kind", "size", "seed", "nodes", "edges", "rounds", "messages", "notes",
    ]);
    for s in scenario::registry() {
        let rep = s.run(s.default_size(), SEEDS[0], &sim);
        let notes: Vec<String> = rep.notes.iter().map(|(k, v)| format!("{k}: {v}")).collect();
        t.row(vec![
            rep.scenario.to_string(),
            s.kind().label().to_string(),
            rep.size.to_string(),
            rep.seed.to_string(),
            rep.nodes.to_string(),
            rep.edges.to_string(),
            rep.rounds.to_string(),
            rep.messages.to_string(),
            notes.join("; "),
        ]);
    }
    t.print();
    println!("(every row verified its own output; see also `td bench <name> --size N`)");
}

/// E12 — ablation: careful proposals (paper) vs load-blind proposals.
fn e12() {
    banner(
        "E12",
        "Ablation: 'careful orientation' (Sec 1.2) — load-aware proposals vs load-blind",
    );
    let mut t = Table::new(&[
        "Δ",
        "careful: violations",
        "careful: stable?",
        "blind: violations",
        "blind: stable?",
        "blind: repair flips",
    ]);
    for &d in &[4usize, 8, 16] {
        let mut v_careful = 0u32;
        let mut v_blind = 0u32;
        let mut stable_careful = true;
        let mut stable_blind = true;
        let mut repair = Vec::new();
        for &seed in &SEEDS {
            let g = regular_graph(d, 12, seed);
            let a = solve_stable_orientation(&g, PhaseConfig::default());
            v_careful += a.invariant_violations;
            stable_careful &= a.orientation.verify_stable(&g).is_ok();
            let b = solve_stable_orientation(
                &g,
                PhaseConfig {
                    proposal_tie: ProposalTie::IgnoreLoads,
                },
            );
            v_blind += b.invariant_violations;
            let ok = b.orientation.verify_stable(&g).is_ok();
            stable_blind &= ok;
            if !ok {
                let fixed = sequential::run(&g, b.orientation);
                repair.push(fixed.flips as f64);
            }
        }
        t.row(vec![
            d.to_string(),
            v_careful.to_string(),
            stable_careful.to_string(),
            v_blind.to_string(),
            stable_blind.to_string(),
            if repair.is_empty() {
                "0".into()
            } else {
                format!("{:.0}", mean(&repair))
            },
        ]);
    }
    t.print();
    println!("(the paper's min-load proposal rule is load-bearing: Lemma 5.4 fails without it)");

    // Second ablation: snapshot convergence — how many phases until the
    // partial orientation stops changing (careful policy).
    let g = regular_graph(8, 12, 77);
    let full = solve_stable_orientation(&g, PhaseConfig::default());
    let mut changed_at = 0;
    let mut prev = Orientation::unoriented(&g);
    for p in 1..=full.phases {
        let snap = run_phases_capped(&g, PhaseConfig::default(), p).orientation;
        if snap != prev {
            changed_at = p;
        }
        prev = snap;
    }
    println!(
        "phase trajectory on Δ=8 instance: last change at phase {changed_at} of {}",
        full.phases
    );
}

/// E14 — the fully distributed orientation protocol: explicit Θ(Δ⁴) rounds.
fn e14() {
    banner(
        "E14",
        "Theorem 5.1 end-to-end: distributed protocol with known-Δ phase budgets",
    );
    let mut t = Table::new(&[
        "Δ",
        "n",
        "comm rounds (budget)",
        "Δ⁴",
        "messages",
        "matches lockstep?",
    ]);
    for &d in &[2usize, 3, 4, 5] {
        let g = regular_graph(d, 8, 7);
        let dist = td_orient::protocol::run_distributed(&g, &Simulator::sequential());
        dist.orientation.verify_stable(&g).unwrap();
        let lock = solve_stable_orientation(&g, PhaseConfig::default());
        let same = dist.orientation == lock.orientation;
        assert!(same);
        t.row(vec![
            d.to_string(),
            g.num_nodes().to_string(),
            dist.comm_rounds.to_string(),
            (d as u64).pow(4).to_string(),
            dist.messages.to_string(),
            same.to_string(),
        ]);
    }
    t.print();
    println!("(phase synchronization uses the known-Δ budget, so rounds are the bound itself:");
    println!(" (2Δ+2)·(3 + 2·(2Δ³+2Δ+8)) — the explicit constant behind O(Δ⁴))");
}

/// E13 — simulator scaling: wall-clock vs threads (round counts identical).
fn e13() {
    banner(
        "E13",
        "HPC substrate: parallel executor scaling (outputs identical)",
    );
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    // A large flat game so per-round work dominates scheduling overhead.
    let mut rng = SmallRng::seed_from_u64(1234);
    let game = td_core::TokenGame::random(&[120_000, 120_000, 120_000, 120_000], 6, 0.5, &mut rng);
    println!(
        "instance: n = {}, m = {}, Δ = {}, tokens = {} (host cores: {cores})",
        game.num_nodes(),
        game.graph().num_edges(),
        game.max_degree(),
        game.token_count()
    );
    let mut t = Table::new(&[
        "executor",
        "comm rounds",
        "messages",
        "wall time (ms)",
        "speedup",
    ]);
    let t0 = Instant::now();
    let seq = proposal::run_on_simulator(&game, &Simulator::sequential());
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    t.row(vec![
        "sequential".into(),
        seq.comm_rounds.to_string(),
        seq.messages.to_string(),
        format!("{seq_ms:.0}"),
        "1.00".into(),
    ]);
    let mut threads_list = vec![2usize];
    if cores > 2 {
        threads_list.push(cores.min(8));
    }
    for threads in threads_list {
        let t0 = Instant::now();
        let par = proposal::run_on_simulator(&game, &Simulator::parallel(threads));
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(par.log, seq.log, "executor changed the output!");
        assert_eq!(par.comm_rounds, seq.comm_rounds);
        t.row(vec![
            format!("parallel({threads})"),
            par.comm_rounds.to_string(),
            par.messages.to_string(),
            format!("{ms:.0}"),
            format!("{:.2}", seq_ms / ms),
        ]);
    }
    t.print();
    println!("(rounds and outputs are bit-identical across executors; only wall time varies)");

    // The lockstep fast path on the same instance, for context.
    let t0 = Instant::now();
    let lock = lockstep::run(&game);
    let lock_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let _ = greedy::run(&game);
    let greedy_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "lockstep engine: {} game rounds in {lock_ms:.0} ms; centralized greedy: {greedy_ms:.0} ms",
        lock.rounds
    );

    // The proposal protocol is memory-bound (scattered mailbox writes), so
    // shared-bus cores gain little. A compute-heavy protocol shows the
    // executor's scaling when node computation dominates.
    println!("\ncompute-heavy protocol (hash-mixing gossip, same executor machinery):");
    let mut rng = SmallRng::seed_from_u64(4321);
    let g = td_graph::gen::random::gnm(20_000, 60_000, &mut rng);
    let inputs = vec![(); g.num_nodes()];
    let mut t = Table::new(&["executor", "rounds", "wall time (ms)", "speedup"]);
    let t0 = Instant::now();
    let seq = Simulator::sequential().run::<HeavyGossip>(&g, &inputs);
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    t.row(vec![
        "sequential".into(),
        seq.rounds.to_string(),
        format!("{seq_ms:.0}"),
        "1.00".into(),
    ]);
    {
        let threads = 2usize;
        let t0 = Instant::now();
        let par = Simulator::parallel(threads).run::<HeavyGossip>(&g, &inputs);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(par.outputs, seq.outputs);
        t.row(vec![
            format!("parallel({threads})"),
            par.rounds.to_string(),
            format!("{ms:.0}"),
            format!("{:.2}", seq_ms / ms),
        ]);
    }
    t.print();
}

/// A deterministic compute-heavy protocol: every round each node mixes its
/// state with incoming digests through a few thousand xorshift steps, then
/// broadcasts. Used only to measure executor scaling under CPU-bound load.
struct HeavyGossip {
    state: u64,
}

impl td_local::Protocol for HeavyGossip {
    type Input = ();
    type Message = u64;
    type Output = u64;

    fn init(node: td_local::NodeInit<'_, ()>) -> Self {
        HeavyGossip {
            state: 0x9E3779B97F4A7C15u64.wrapping_mul(node.id.0 as u64 + 1),
        }
    }

    fn round(
        &mut self,
        ctx: &td_local::RoundCtx,
        inbox: &td_local::Inbox<'_, u64>,
        outbox: &mut td_local::Outbox<'_, '_, u64>,
    ) -> td_local::Status {
        let mut acc = self.state;
        for (_, &m) in inbox.iter() {
            acc ^= m;
        }
        // ~4k xorshift* steps of "local computation".
        for _ in 0..4096 {
            acc ^= acc << 13;
            acc ^= acc >> 7;
            acc ^= acc << 17;
        }
        self.state = acc;
        outbox.broadcast(acc);
        if ctx.round >= 14 {
            td_local::Status::Halt
        } else {
            td_local::Status::Continue
        }
    }

    fn finish(self) -> u64 {
        self.state
    }
}

/// E15 — dynamic churn: incremental repair of a stable solution is
/// O(Δ)-local per update, while recomputing from scratch pays Θ(n) — the
/// Section 1.1 motivation, measured. For every churn scenario the instance
/// size sweeps upward with a fixed trace length; "repair" columns are the
/// incremental engine, "recompute" columns rebuild a fresh all-dirty engine
/// after each event (the arbitrary-start cascade regime).
fn e15() {
    banner(
        "E15",
        "churn: incremental repair is O(Δ)-local per update; recompute pays Θ(n)",
    );
    use td_bench::churn::churn_registry;
    use td_local::churn::RepairMode;
    const EVENTS: u32 = 24;
    for sc in churn_registry() {
        println!("### {} — {}\n", sc.name(), sc.description());
        let sizes: &[u32] = match sc.kind() {
            td_bench::ScenarioKind::Orientation => &[64, 128, 256, 512, 1024],
            _ => &[8, 16, 32, 64],
        };
        let mut t = Table::new(&[
            "size",
            "n",
            "repair steps/evt",
            "repair msgs/evt",
            "repair rounds/evt",
            "recompute steps/evt",
            "recompute msgs/evt",
            "ratio (steps)",
        ]);
        let mut xs = Vec::new();
        let mut rep_steps = Vec::new();
        let mut rec_steps = Vec::new();
        for &size in sizes {
            let rep = sc.run(size, EVENTS, SEEDS[0], 1, RepairMode::Incremental, true);
            let rec = rep.recompute.expect("measured");
            let e = EVENTS as f64;
            let (a, b) = (rep.repair.node_steps as f64 / e, rec.node_steps as f64 / e);
            xs.push(rep.nodes as f64);
            rep_steps.push(a.max(1e-9));
            rec_steps.push(b.max(1e-9));
            t.row(vec![
                size.to_string(),
                rep.nodes.to_string(),
                format!("{a:.1}"),
                format!("{:.1}", rep.repair.messages as f64 / e),
                format!("{:.1}", rep.repair.rounds as f64 / e),
                format!("{b:.1}"),
                format!("{:.1}", rec.messages as f64 / e),
                format!("{:.1}x", b / a.max(1e-9)),
            ]);
        }
        t.print();
        let brep = fit_power_law(&xs, &rep_steps);
        let brec = fit_power_law(&xs, &rec_steps);
        println!(
            "growth of per-event work vs n: repair n^{brep:.2} (≈ flat), recompute n^{brec:.2} (≈ linear)\n"
        );
    }
    println!("(every event verified stability before the next one was applied;");
    println!(" the differential suite proves repair == full-recompute bit-for-bit)");
}

/// E16 — the sharded executor: shard-count sweep on the rotor sweep
/// (locality-friendly, quiesces level by level) plus the server farm
/// (the bad-locality control). Outputs stay bit-identical at every grid
/// point; only the partition cut, the skipped shard-rounds, and wall time
/// change.
fn e16() {
    banner(
        "E16",
        "sharded executor: BFS-grown shards, batched boundary delivery, quiesced-shard skips",
    );
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let threads = cores.clamp(2, 8);
    const WIDTH: usize = 2_000; // 6 levels -> n = 12_000
    let game = scenario::rotor_sweep_game(WIDTH);
    let m = game.graph().num_edges();
    println!(
        "rotor-sweep: n = {}, m = {m}, threads = {threads} (host cores: {cores})",
        game.num_nodes()
    );
    let t0 = Instant::now();
    let seq = proposal::run_on_simulator(&game, &Simulator::sequential());
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let par = proposal::run_on_simulator(&game, &Simulator::parallel(threads));
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(par.log, seq.log, "parallel executor changed the output!");
    let mut t = Table::new(&[
        "executor",
        "shards",
        "cut edges",
        "cut %",
        "rounds",
        "messages",
        "skipped shard-rounds",
        "wall (ms)",
        "vs parallel",
    ]);
    t.row(vec![
        "sequential".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        seq.comm_rounds.to_string(),
        seq.messages.to_string(),
        "-".into(),
        format!("{seq_ms:.1}"),
        format!("{:.2}x", par_ms / seq_ms),
    ]);
    t.row(vec![
        format!("parallel({threads})"),
        "-".into(),
        "-".into(),
        "-".into(),
        par.comm_rounds.to_string(),
        par.messages.to_string(),
        "-".into(),
        format!("{par_ms:.1}"),
        "1.00x".into(),
    ]);
    for shards in [2usize, 4, 8, 16, 32] {
        let t0 = Instant::now();
        let sh = proposal::run_on_simulator(&game, &Simulator::sharded(shards, threads));
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(sh.log, seq.log, "sharded executor changed the output!");
        assert_eq!(sh.comm_rounds, seq.comm_rounds);
        assert_eq!(sh.messages, seq.messages);
        let stats = sh.sharding.expect("sharded stats");
        t.row(vec![
            format!("sharded({shards})"),
            shards.to_string(),
            stats.cut_edges.to_string(),
            format!("{:.1}", 100.0 * stats.cut_edges as f64 / m as f64),
            sh.comm_rounds.to_string(),
            sh.messages.to_string(),
            stats.shard_rounds_skipped.to_string(),
            format!("{ms:.1}"),
            format!("{:.2}x", par_ms / ms),
        ]);
    }
    t.print();
    println!("(rounds/messages identical everywhere — sharding is a pure performance knob;");
    println!(" the rotor sweep drains top-down, so drained level bands skip their rounds)");

    // The control: the Zipf server farm's bipartite hot-server network has
    // no locality for any partition to find — the same sweep through the
    // registry interface documents the overhead floor.
    println!("\nserver-farm control (size 16, bad locality — tiny network, huge round count):");
    let sc = scenario::find("server-farm").expect("registered");
    let mut t = Table::new(&["executor", "rounds", "messages", "wall (ms)"]);
    for (label, sim) in [
        ("sequential".to_string(), Simulator::sequential()),
        (format!("parallel({threads})"), Simulator::parallel(threads)),
        (
            format!("sharded(8, {threads})"),
            Simulator::sharded(8, threads),
        ),
    ] {
        let rep = sc.run(16, 42, &sim);
        t.row(vec![
            label,
            rep.rounds.to_string(),
            rep.messages.to_string(),
            format!("{:.1}", rep.wall.as_secs_f64() * 1e3),
        ]);
    }
    t.print();
    println!("(per-round work there is tiny, so epoch + boundary overhead dominates — shard");
    println!(" when regions are big enough to amortize; see EXPERIMENTS.md)");
}

/// E17 — round/message scaling across the generated workload families of
/// the parametric `WorkloadSpec` suite: rounds are set by Δ alone (flat in
/// n at fixed Δ — the LOCAL-model promise), messages track instance size.
fn e17() {
    banner(
        "E17",
        "generated families: rounds flat in n at fixed Δ, messages scale with size",
    );
    use td_bench::spec::{WorkloadInstance, WorkloadSpec};
    let sim = Simulator::sequential();
    // (family, size sweep) — `size` means what the family says it means
    // (nodes, side, dim, width, servers); see `td fuzz`'s listing.
    let plans: &[(&str, &[u32])] = &[
        ("regular", &[24, 48, 96]),
        ("grid", &[5, 8, 12]),
        ("torus", &[4, 6, 9]),
        ("hypercube", &[3, 4, 5, 6]),
        ("layered", &[6, 12, 24]),
        ("rotor", &[8, 16, 32, 64]),
        ("zipf-cluster", &[6, 10, 14]),
    ];
    let mut rows = Table::new(&["spec", "n", "m", "Δ", "rounds", "messages", "verified"]);
    let mut fits = Table::new(&["family", "rounds ~ n^b", "messages ~ n^b"]);
    for (fam, sizes) in plans {
        let mut ns: Vec<f64> = Vec::new();
        let mut rounds: Vec<f64> = Vec::new();
        let mut msgs: Vec<f64> = Vec::new();
        for &size in *sizes {
            let spec = WorkloadSpec::new(fam)
                .expect("registered family")
                .with_size(size)
                .with_seed(42);
            let (n, m, delta, r, msg) = match spec.build().expect("plan specs are valid") {
                WorkloadInstance::Game(game) => {
                    let res = proposal::run_on_simulator(&game, &sim);
                    td_core::verify_solution(&game, &res.solution).expect("rules 1-3");
                    (
                        game.num_nodes(),
                        game.graph().num_edges(),
                        game.max_degree(),
                        res.comm_rounds as u64,
                        res.messages,
                    )
                }
                WorkloadInstance::Orientation(g) => {
                    let res = td_orient::protocol::run_distributed(&g, &sim);
                    res.orientation.verify_stable(&g).expect("stable");
                    (
                        g.num_nodes(),
                        g.num_edges(),
                        g.max_degree(),
                        res.comm_rounds as u64,
                        res.messages,
                    )
                }
                WorkloadInstance::Assignment { inst, bound } => {
                    let res = td_assign::protocol::run_distributed_assignment(&inst, bound, &sim);
                    match bound {
                        Some(k) => res.assignment.verify_k_bounded(&inst, k).expect("bounded"),
                        None => res.assignment.verify_stable(&inst).expect("stable"),
                    }
                    let m = (0..inst.num_customers())
                        .map(|c| inst.servers_of(c).len())
                        .sum();
                    (
                        inst.num_customers() + inst.num_servers(),
                        m,
                        inst.max_customer_degree(),
                        res.comm_rounds as u64,
                        res.messages,
                    )
                }
                _ => unreachable!("e17 sweeps one-shot families only"),
            };
            rows.row(vec![
                spec.to_string(),
                n.to_string(),
                m.to_string(),
                delta.to_string(),
                r.to_string(),
                msg.to_string(),
                "ok".into(),
            ]);
            ns.push(n as f64);
            rounds.push(r as f64);
            msgs.push(msg as f64);
        }
        fits.row(vec![
            fam.to_string(),
            format!("{:.2}", fit_power_law(&ns, &rounds)),
            format!("{:.2}", fit_power_law(&ns, &msgs)),
        ]);
    }
    rows.print();
    println!();
    fits.print();
    println!("(fixed-Δ families — torus, hypercube at fixed dim, rotor — hold rounds flat");
    println!(" while n grows: the Θ(Δ⁴) / O(L·Δ²) budgets are n-independent, so messages");
    println!(" grow like the instance itself. every row re-verified its output.)");
}

/// E18 — the node-granular sparse scheduler: wall-clock win on quiescing
/// workloads, with the fitted active-fraction curve.
fn e18() {
    banner(
        "E18",
        "sparse scheduling: quiescing workloads skip cold regions at per-node resolution",
    );
    use td_bench::perf::{self, SweepConfig};
    // The drain-wave (rolling-restart analogue: a fixed frontier works
    // while the drained majority idles) and the rotor sweep (its tail
    // quiesces level by level), each on the dense sequential executor vs
    // sharded(1,1) — the sparse scheduler with parallelism and
    // partitioning stripped away, so the delta is scheduling alone.
    let mut t = Table::new(&[
        "scenario",
        "n",
        "rounds",
        "active%",
        "halted scans (dense)",
        "seq ms",
        "sparse ms",
        "speedup",
    ]);
    let mut curves = Table::new(&["scenario", "n", "active(round) ~ r^b", "tail active"]);
    for name in ["drain-wave", "rotor"] {
        let cfg = SweepConfig {
            scenario: Some(name.into()),
            ..SweepConfig::default()
        };
        let rep = perf::run_sweep(&cfg).expect("perf sweep runs clean");
        let sizes: Vec<u32> = {
            let mut s: Vec<u32> = rep.points.iter().map(|p| p.size).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        for size in sizes {
            let by = |ex: &str| {
                rep.points
                    .iter()
                    .find(|p| p.size == size && p.executor == ex)
                    .expect("grid point measured")
            };
            let seq = by("sequential");
            let sparse = by("sharded(1,1)");
            assert_eq!(seq.rounds, sparse.rounds, "bit-identical contract");
            assert_eq!(seq.messages, sparse.messages, "bit-identical contract");
            assert_eq!(seq.counters.halted_scans, sparse.counters.sparse_skips);
            t.row(vec![
                name.to_string(),
                seq.nodes.to_string(),
                seq.rounds.to_string(),
                format!("{:.1}", 100.0 * seq.active_fraction()),
                seq.counters.halted_scans.to_string(),
                format!("{:.3}", seq.wall_ns as f64 / 1e6),
                format!("{:.3}", sparse.wall_ns as f64 / 1e6),
                format!("{:.2}x", seq.wall_ns as f64 / sparse.wall_ns as f64),
            ]);
            // Fit the active-fraction decay active(round) ~ a·round^b on
            // the traced curve (rounds shifted by 1 for the log fit).
            let xs: Vec<f64> = seq.curve.rounds.iter().map(|&r| (r + 1) as f64).collect();
            let ys: Vec<f64> = seq.curve.active.iter().map(|&a| a as f64).collect();
            let b = fit_power_law(&xs, &ys);
            let tail = *seq.curve.active.last().unwrap_or(&0);
            curves.row(vec![
                name.to_string(),
                seq.nodes.to_string(),
                format!("b = {b:.2}"),
                tail.to_string(),
            ]);
        }
        if let Some(x) = rep.sparse_speedup(name) {
            println!("{name}: sparse speedup at largest size = {x:.2}x");
        }
    }
    println!();
    t.print();
    println!();
    curves.print();
    println!("(halted scans = node-rounds a dense scan wastes on quiesced residents; the");
    println!(" sparse scheduler skips exactly those (sparse_skips == halted_scans, asserted");
    println!(" above) while outputs/rounds/messages stay bit-identical. the drain wave");
    println!(" collapses to its fixed frontier after round 0, so the dense scan wastes");
    println!(" ~n per round and the speedup grows with n — >2x at 131k nodes, well past");
    println!(" the 20% target. the rotor is the documented control: ~50% of its nodes");
    println!(" stay active to the end, so scheduling alone roughly breaks even there.");
    println!(" full counters land in BENCH_10.json via `td perf`.)");
}
