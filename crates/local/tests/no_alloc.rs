//! Proof of the zero-allocation hot loop: after warm-up (arena + state
//! setup), `Simulator::run` performs **no per-round message-buffer
//! allocations** — the flat message arena is reused across rounds, delivery
//! is a buffer-parity flip, and nothing in the round loop touches the
//! allocator. We verify this with a counting global allocator: for a
//! protocol whose own code never allocates, the total allocation count of a
//! run must be *independent of the number of rounds*.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use td_local::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Simulator, Status};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// The counter is process-global, so the two tests must not overlap — the
/// harness runs tests on parallel threads by default.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Gossip until the horizon given as the node input. Neither `round` nor
/// the message type allocates, so every allocation of a run happens in the
/// simulator's setup/teardown.
struct Gossip {
    horizon: u32,
    acc: u64,
}

impl Protocol for Gossip {
    type Input = u32;
    type Message = u64;
    type Output = u64;

    fn init(node: NodeInit<'_, u32>) -> Self {
        Gossip {
            horizon: *node.input,
            acc: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(node.id.0 as u64 + 1),
        }
    }

    fn round(
        &mut self,
        ctx: &RoundCtx,
        inbox: &Inbox<'_, u64>,
        outbox: &mut Outbox<'_, '_, u64>,
    ) -> Status {
        for (_, &m) in inbox.iter() {
            self.acc ^= m.rotate_left(7);
        }
        outbox.broadcast(self.acc);
        if ctx.round >= self.horizon {
            Status::Halt
        } else {
            Status::Continue
        }
    }

    fn finish(self) -> u64 {
        self.acc
    }
}

fn allocs_during(sim: &Simulator, g: &td_graph::CsrGraph, horizon: u32) -> u64 {
    let inputs = vec![horizon; g.num_nodes()];
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = sim.run::<Gossip>(g, &inputs);
    let after = ALLOCS.load(Ordering::Relaxed);
    // The halting round itself is counted, hence horizon + 1.
    assert_eq!(out.rounds, horizon + 1);
    after - before
}

fn ring(n: usize) -> td_graph::CsrGraph {
    let mut b = td_graph::GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(
            td_graph::NodeId::from(i),
            td_graph::NodeId::from((i + 1) % n),
        )
        .unwrap();
    }
    b.build().unwrap()
}

#[test]
fn sequential_allocations_are_round_count_independent() {
    let _guard = SERIAL.lock().unwrap();
    let g = ring(64);
    let sim = Simulator::sequential();
    // Warm-up: fault in allocator/runtime one-time lazy paths.
    allocs_during(&sim, &g, 4);
    let short = allocs_during(&sim, &g, 8);
    let long = allocs_during(&sim, &g, 256);
    assert_eq!(
        short, long,
        "round loop allocated: {short} allocs for 8 rounds vs {long} for 256"
    );
}

#[test]
fn parallel_allocations_are_round_count_independent() {
    let _guard = SERIAL.lock().unwrap();
    let g = ring(64);
    let sim = Simulator::parallel(4);
    allocs_during(&sim, &g, 4);
    let short = allocs_during(&sim, &g, 8);
    let long = allocs_during(&sim, &g, 256);
    assert_eq!(
        short, long,
        "round loop allocated: {short} allocs for 8 rounds vs {long} for 256"
    );
}
