//! Double-buffered, stamp-validated mailboxes.
//!
//! One mailbox slot exists per *directed* edge slot of the CSR graph (the
//! slot of `(receiver, port)`), so a node's inbox is a contiguous slice. Two
//! buffers alternate between "read" (messages sent last round) and "write"
//! (messages being sent this round); a slot's content is valid only if its
//! stamp equals the round it was written for, which avoids an O(m) clear at
//! every round — crucial when round counts reach Θ(Δ⁴) on small graphs.

use crate::disjoint::DisjointSlots;

/// One mailbox slot: the round the message is addressed to, plus the payload.
/// `stamp == u32::MAX` means "never written".
pub struct MsgSlot<M> {
    pub(crate) stamp: u32,
    pub(crate) msg: Option<M>,
}

impl<M> MsgSlot<M> {
    fn empty() -> Self {
        MsgSlot {
            stamp: u32::MAX,
            msg: None,
        }
    }
}

/// The pair of buffers. `buf[round % 2]` is the buffer *read* in `round`
/// (i.e. written during `round - 1`).
pub struct Mailbox<M> {
    pub(crate) bufs: [DisjointSlots<MsgSlot<M>>; 2],
}

impl<M: Send> Mailbox<M> {
    /// A mailbox with `slots` slots per buffer (one per directed edge slot).
    pub fn new(slots: usize) -> Self {
        Mailbox {
            bufs: [
                DisjointSlots::new_with(slots, |_| MsgSlot::empty()),
                DisjointSlots::new_with(slots, |_| MsgSlot::empty()),
            ],
        }
    }

    /// The buffer read during `round`.
    #[inline(always)]
    pub(crate) fn read_buf(&self, round: u32) -> &DisjointSlots<MsgSlot<M>> {
        &self.bufs[(round % 2) as usize]
    }

    /// The buffer written during `round` (read during `round + 1`).
    #[inline(always)]
    pub(crate) fn write_buf(&self, round: u32) -> &DisjointSlots<MsgSlot<M>> {
        &self.bufs[((round + 1) % 2) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_alternate() {
        let mb: Mailbox<u8> = Mailbox::new(3);
        let r0_read = mb.read_buf(0) as *const _;
        let r0_write = mb.write_buf(0) as *const _;
        let r1_read = mb.read_buf(1) as *const _;
        assert_ne!(r0_read, r0_write);
        assert_eq!(r0_write, r1_read);
    }

    #[test]
    fn stamps_start_invalid() {
        let mut mb: Mailbox<u8> = Mailbox::new(2);
        for slot in mb.bufs[0].as_mut_slice() {
            assert_eq!(slot.stamp, u32::MAX);
            assert!(slot.msg.is_none());
        }
    }
}
