//! The node-side programming interface of the LOCAL simulator.

use crate::arena::{ArenaReader, ArenaWriter};
use crate::churn::WakeSet;
use crate::shard::{PinnedRoute, ShardRoute};
use td_graph::{CsrGraph, NodeId, Port};

/// The shard-routing view an [`Outbox`] carries, when any: the churn
/// executor's barrier-phase batched route, or the pinned-worker engine's
/// direct/staged route. `None` in the outbox means the unsharded executors
/// (sequential, single-shard fast path): every send is a direct arena write.
pub(crate) enum RouteRef<'a, M> {
    /// Churn executor: cross-shard sends append to S×S batch queues,
    /// flushed in a barrier-separated deliver phase.
    Batched(&'a ShardRoute<'a, M>),
    /// Pinned-worker engine: same-worker sends write arenas directly,
    /// cross-worker sends stage for the SPSC boundary rings.
    Pinned(&'a PinnedRoute<'a, M>),
}

/// Everything a node is allowed to see when it boots, matching the paper's
/// Section 3: "initially, the only information that a node u has are the
/// identifiers of its neighbors" — plus its problem-specific local input
/// (token/level/role), which is part of the problem instance.
pub struct NodeInit<'a, I> {
    /// This node's globally unique identifier.
    pub id: NodeId,
    /// Identifiers of the neighbors, indexed by port (`neighbor_ids[p]` sits
    /// at the other end of port `p`).
    pub neighbor_ids: &'a [u32],
    /// The node's local share of the problem input.
    pub input: &'a I,
}

impl<'a, I> NodeInit<'a, I> {
    /// Degree of this node (number of ports).
    pub fn degree(&self) -> usize {
        self.neighbor_ids.len()
    }
}

/// Per-round context.
pub struct RoundCtx {
    /// The current round number, starting from 0. The inbox of round `r`
    /// holds the messages sent in round `r - 1` (so it is empty in round 0).
    pub round: u32,
}

/// Whether a node keeps participating after this round.
///
/// Under [`crate::Simulator`], `Halt` is final: the node's output is
/// decided and it never runs again. Under the churn executor
/// ([`crate::churn::ChurnSim`]), `Halt` means *quiesce*: the node parks,
/// and a later incoming message wakes it for another round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Keep running next round.
    Continue,
    /// Local output is decided; the node stops (its outgoing messages from
    /// *this* round are still delivered).
    Halt,
}

/// A node's view of the messages received this round: one optional message
/// per port, backed by the node's contiguous run of arena slots.
pub struct Inbox<'a, M> {
    pub(crate) reader: ArenaReader<'a, M>,
    pub(crate) base: usize,
    pub(crate) degree: usize,
}

impl<'a, M> Inbox<'a, M> {
    /// The message received on `port`, if any.
    #[inline]
    pub fn get(&self, port: Port) -> Option<&'a M> {
        debug_assert!(port.idx() < self.degree);
        // SAFETY: the read buffer is not written during the read phase
        // (double buffering + barrier separation).
        unsafe { self.reader.get(self.base + port.idx()) }
    }

    /// Iterates over `(port, message)` pairs for all ports that received
    /// one, by a single pass over the node's contiguous slot row.
    pub fn iter(&self) -> impl Iterator<Item = (Port, &'a M)> + '_ {
        // SAFETY: as for `get`.
        let row = unsafe { self.reader.row(self.base, self.degree) };
        let want = self.reader.stamp();
        row.iter().enumerate().filter_map(move |(p, s)| {
            if s.stamp == want {
                Some((Port::from(p), &s.msg))
            } else {
                None
            }
        })
    }

    /// Number of ports (== the node's degree).
    pub fn num_ports(&self) -> usize {
        self.degree
    }

    /// Number of messages received this round.
    pub fn count(&self) -> usize {
        self.iter().count()
    }

    /// True if no message arrived this round.
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }
}

/// A node's sending interface for the current round.
///
/// Sending writes the payload in place into the *write* buffer slot owned by
/// the receiving endpoint and publishes its stamp; the disjointness argument
/// is in [`crate::disjoint`].
pub struct Outbox<'a, 'g, M> {
    pub(crate) writer: ArenaWriter<'a, M>,
    pub(crate) graph: &'g CsrGraph,
    pub(crate) node: NodeId,
    pub(crate) sent: u64,
    /// Of `sent`, how many crossed a shard boundary (batched delivery).
    pub(crate) boundary_sent: u64,
    /// Wake side-channel of the churn executor: sending schedules the
    /// receiver for the delivery round. `None` under the one-shot
    /// [`crate::Simulator`].
    pub(crate) wake: Option<&'a WakeSet>,
    /// Shard routing of the sharded executors: intra-shard sends write the
    /// local arena directly, cross-shard sends are batched (churn) or
    /// staged for the SPSC boundary rings (pinned-worker engine). `None`
    /// under the unsharded executors.
    pub(crate) route: Option<RouteRef<'a, M>>,
}

impl<M: Clone + Default + Send> Outbox<'_, '_, M> {
    /// Sends `msg` over `port`; it arrives at the neighbor next round.
    /// Sending twice on the same port in one round overwrites (one message
    /// per edge per round, as in the LOCAL model).
    #[inline]
    pub fn send(&mut self, port: Port, msg: M) {
        let slot = self.graph.slot(self.node, port);
        let mirror = self.graph.mirror_slot(slot);
        match &self.route {
            // SAFETY: slot `mirror` belongs to (neighbor, its port); the
            // only writer of that slot in this round is this node, which is
            // stepped by exactly one thread.
            None => unsafe {
                self.writer.write(mirror, msg);
            },
            Some(RouteRef::Batched(route)) => {
                if route.deliver(mirror, &self.writer, msg) {
                    self.boundary_sent += 1;
                }
            }
            Some(RouteRef::Pinned(route)) => {
                if route.deliver(mirror, &self.writer, msg) {
                    self.boundary_sent += 1;
                }
            }
        }
        if let Some(wake) = self.wake {
            wake.mark(self.graph.neighbor_at(self.node, port));
        }
        self.sent += 1;
    }

    /// Sends a clone of `msg` over every port.
    pub fn broadcast(&mut self, msg: M) {
        for p in 0..self.graph.degree(self.node) {
            self.send(Port::from(p), msg.clone());
        }
    }

    /// Number of ports available (== the node's degree).
    pub fn num_ports(&self) -> usize {
        self.graph.degree(self.node)
    }
}

/// A distributed algorithm in the LOCAL model, written from the perspective
/// of a single node.
///
/// The executor creates one `Protocol` value per node via [`Protocol::init`],
/// calls [`Protocol::round`] once per synchronous round until the node halts,
/// then collects local outputs via [`Protocol::finish`].
pub trait Protocol: Sized + Send {
    /// Per-node problem input (e.g. "holds a token", "level 3").
    type Input: Sync;
    /// Message type exchanged between neighbors. `Default` seeds the
    /// flat message arena (slot validity is tracked by stamps, so the
    /// default value is never observed as a delivered message).
    type Message: Clone + Send + Default;
    /// Per-node output (e.g. "final orientation of my incident edges").
    type Output: Send;

    /// Boots the node. LOCAL: only local information is available.
    fn init(node: NodeInit<'_, Self::Input>) -> Self;

    /// Executes one synchronous round: read `inbox` (messages sent by
    /// neighbors in the previous round), update local state, write `outbox`.
    fn round(
        &mut self,
        ctx: &RoundCtx,
        inbox: &Inbox<'_, Self::Message>,
        outbox: &mut Outbox<'_, '_, Self::Message>,
    ) -> Status;

    /// Consumes the node state and emits the local output after halting.
    fn finish(self) -> Self::Output;
}
