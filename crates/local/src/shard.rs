//! The sharded message plane and the **pinned-worker, barrier-free**
//! sharded executor.
//!
//! The retired strided executor spread every node over every worker and
//! paid a global barrier per round; a fully halted region still cost a
//! scan, and on round-dominated workloads the barriers cost more than the
//! compute they fenced. The LOCAL model never needed any of that: a node
//! stepping round `r + 1` must only have *its neighbors'* round-`r`
//! messages — synchronization is a neighborhood property, not a global one.
//! This module exploits exactly that:
//!
//! * **Threads own shards long-term.** The graph is cut into locality-aware
//!   shards ([`td_graph::Partition::bfs_grown`]); each of the `T` pinned
//!   workers owns a fixed contiguous block of the BFS order for the whole
//!   run. A node is stepped by one worker, forever — state, arena and
//!   active list stay in one cache hierarchy.
//! * **Per-shard arenas are owned by their worker.** Each shard's
//!   double-buffered [`MessageArena`] is *moved into* its owner worker at
//!   spawn; no other thread ever writes it. Cross-worker messages travel as
//!   `(slot, payload)` batches and are written into the destination arena
//!   by the *destination's own* worker.
//! * **Per-(src,dst) SPSC boundary queues** (`spsc::BatchRing`):
//!   one ring per directed cross-worker shard pair with cut edges. A
//!   shard's round-`r` boundary traffic toward one destination is one
//!   batch — one `Vec` swap and one release store, never a per-message
//!   atomic. Same-worker cross-shard sends skip the queues entirely and
//!   write the sibling arena directly (same thread, provably no race).
//! * **Round-stamped epoch protocol instead of barriers.** Shard `s`
//!   publishes a `progress[s]` word: `r + 1` after finishing round `r`
//!   (release store), or `RETIRED` once all residents halted. A worker may
//!   advance a shard to round `r` as soon as every *neighboring* shard's
//!   progress is `>= r` (acquire load) — all round-`r-1` batches are then
//!   guaranteed delivered, because producers push before they publish.
//!   Distant shards drift many rounds apart; neighbors stay within one
//!   round of each other, which also bounds every ring to at most two live
//!   batches (`spsc::RING_CAP` proves the headroom).
//! * **Termination detection without a coordinator.** `Halt` is final
//!   under the one-shot simulator, so a shard whose active list empties can
//!   never wake again: it publishes `RETIRED` (which passes every gate),
//!   discards whatever its inbound rings still hold (those messages address
//!   halted nodes — the sequential executor drops them too), and is done.
//!   Producers observing a `RETIRED` destination drop the batch instead of
//!   pushing. The run is over when every shard has retired or hit the round
//!   cap — workers simply run out of work and join; no halt vote, no
//!   drained-queue census, no final barrier.
//!
//! ## Node-granular sparse scheduling across the async frontier
//!
//! Within a shard the compute loop iterates a per-shard **active list** —
//! the still-running residents in ascending id order, compacted in place as
//! nodes halt — so a shard pays `O(active)` per round, not `O(residents)`.
//! While *no* resident has halted yet the loop runs in a dense mode that
//! iterates the partition's resident slice directly, with no list writes
//! and no halted-flag loads at all (strictly less bookkeeping than the
//! sequential executor's dense scan). Retirement is the shard-granular
//! limit of the same idea: a quiesced shard costs zero rounds, and the
//! rounds it never stepped are accounted into
//! [`ExecPerf::sparse_skips`](crate::metrics::ExecPerf) after the join so
//! the sequential mirror identity (`sparse_skips == halted_scans` of the
//! dense scan) stays exact.
//!
//! ## Determinism
//!
//! Outputs, round counts and message counts are **bit-identical** to the
//! sequential executor for any shard or thread count; the epoch gate only
//! delays work, it never reorders the one writer a slot has per round.
//! Messages flushed from a ring carry the stamp of the round they were
//! produced in and land in the very buffer a direct write would have hit.
//! Per-worker counters are merged once at join, so `ExecPerf` aggregates
//! are independent of scheduling too. `tests/sharded_differential.rs` and
//! the interleaving proptest below enforce the contract.

use crate::arena::{ArenaWriter, MessageArena};
use crate::disjoint::DisjointSlots;
use crate::metrics::{ExecPerf, RoundStats, ShardExecStats, SimOutcome};
use crate::protocol::{Inbox, Outbox, Protocol, RoundCtx, Status};
use crate::spsc::BatchRing;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};
use td_graph::{CsrGraph, NodeId, Partition};

/// Progress value meaning "all residents halted; gate always passes".
/// Round caps are asserted `< u32::MAX - 1`, so no live progress collides.
const RETIRED: u32 = u32::MAX;

/// A raw pointer that may cross thread boundaries; safety is argued at the
/// use site (each node's state is stepped by exactly one worker).
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T> Sync for SendPtr<T> {}

/// The slot-routing tables of a sharded plane: global CSR slot →
/// (owning shard, slot within that shard's arena), and node → inbox base.
pub(crate) struct ShardTables {
    /// Global slot -> shard of the slot's receiver.
    pub(crate) slot_shard: Vec<u32>,
    /// Global slot -> index within the owning shard's arena.
    pub(crate) slot_local: Vec<u32>,
    /// Node -> inbox base within its shard's arena.
    node_base: Vec<u32>,
}

impl ShardTables {
    /// Builds the tables for `graph` under `part`, with each node's inbox
    /// row contiguous inside its shard arena (nodes in ascending id order).
    /// Returns the tables plus the per-shard arena sizes (total degree).
    pub(crate) fn new(graph: &CsrGraph, part: &Partition) -> (Self, Vec<usize>) {
        let mut slot_shard = vec![0u32; graph.num_slots()];
        let mut slot_local = vec![0u32; graph.num_slots()];
        let mut node_base = vec![0u32; graph.num_nodes()];
        let mut sizes = Vec::with_capacity(part.num_shards());
        for sh in 0..part.num_shards() {
            let mut off = 0u32;
            for &v in part.nodes_of(sh) {
                let node = NodeId(v);
                node_base[v as usize] = off;
                let base = graph.node_offset(node);
                for i in 0..graph.degree(node) {
                    slot_shard[base + i] = sh as u32;
                    slot_local[base + i] = off + i as u32;
                }
                off += graph.degree(node) as u32;
            }
            sizes.push(off as usize);
        }
        (
            ShardTables {
                slot_shard,
                slot_local,
                node_base,
            },
            sizes,
        )
    }

    /// The inbox base of node `v` inside its shard's arena.
    #[inline(always)]
    pub(crate) fn node_base(&self, v: NodeId) -> usize {
        self.node_base[v.idx()] as usize
    }
}

/// The per-shard message arenas plus routing tables, bundled for the churn
/// executor (which keeps a cached plane across repair waves and flushes
/// boundary traffic through [`BatchQueues`]). The one-shot pinned-worker
/// engine does *not* use this bundle: it builds [`ShardTables`] and moves
/// each arena into its owner worker instead.
pub(crate) struct ShardPlane<M> {
    arenas: Vec<MessageArena<M>>,
    /// Slot-routing tables shared by every worker.
    pub(crate) tables: ShardTables,
}

impl<M: Default + Send> ShardPlane<M> {
    /// Builds the plane for `graph` under `part`: one arena per shard,
    /// sized to the shard's total degree.
    pub(crate) fn new(graph: &CsrGraph, part: &Partition) -> Self {
        let (tables, sizes) = ShardTables::new(graph, part);
        let arenas = sizes.into_iter().map(MessageArena::with_slots).collect();
        ShardPlane { arenas, tables }
    }

    /// The arena of `shard`.
    #[inline(always)]
    pub(crate) fn arena(&self, shard: usize) -> &MessageArena<M> {
        &self.arenas[shard]
    }

    /// Exclusive access to every shard arena — for the churn plane's stamp
    /// renormalization, which must scrub all planes between runs.
    pub(crate) fn arenas_mut(&mut self) -> &mut [MessageArena<M>] {
        &mut self.arenas
    }

    /// The inbox base of node `v` inside its shard's arena.
    #[inline(always)]
    pub(crate) fn node_base(&self, v: NodeId) -> usize {
        self.tables.node_base(v)
    }
}

/// The per-(src-shard, dst-shard) boundary batch queues of the **churn**
/// executor: an S×S row-major matrix of append-only vectors of
/// `(local slot, message)` pairs.
///
/// Access discipline (barrier-separated, see [`crate::churn`]):
/// * compute phase — row `src` is touched only by the worker stepping
///   shard `src` (a shard is stepped by exactly one worker, one shard at a
///   time);
/// * deliver phase — column `dst` is touched only by the worker owning
///   shard `dst`.
pub(crate) struct BatchQueues<M> {
    cells: DisjointSlots<Vec<(u32, M)>>,
    shards: usize,
}

impl<M: Send> BatchQueues<M> {
    pub(crate) fn new(shards: usize) -> Self {
        BatchQueues {
            cells: DisjointSlots::new_with(shards * shards, |_| Vec::new()),
            shards,
        }
    }

    /// Drains every queue addressed to `dst` into `writer`, in ascending
    /// src-shard order. Queue capacity is retained, so the steady state
    /// allocates nothing.
    ///
    /// # Safety
    /// Caller must own column `dst` in the current phase (see the type
    /// docs) and `writer` must be the write view of shard `dst`'s arena.
    pub(crate) unsafe fn flush_into(&self, dst: usize, writer: &ArenaWriter<'_, M>) {
        for src in 0..self.shards {
            let q = self.cells.get_mut(src * self.shards + dst);
            for (slot, msg) in q.drain(..) {
                writer.write(slot as usize, msg);
            }
        }
    }
}

/// The shard-routing view an [`Outbox`] holds under the **churn** executor:
/// everything a send needs to decide "local write or boundary batch".
pub(crate) struct ShardRoute<'a, M> {
    /// Shard being stepped (the sender's shard).
    pub(crate) shard: u32,
    /// Global slot -> receiver's shard.
    pub(crate) slot_shard: &'a [u32],
    /// Global slot -> slot within the receiver shard's arena.
    pub(crate) slot_local: &'a [u32],
    /// The boundary batch queues.
    pub(crate) queues: &'a BatchQueues<M>,
    /// Shard-granular wake sink: marks receiver shards that got boundary
    /// traffic this round, so the deliver phase visits only those.
    pub(crate) traffic: &'a crate::churn::WakeSet,
}

impl<M> ShardRoute<'_, M> {
    /// Routes one message addressed to global slot `mirror`: shard-local
    /// receivers get a direct in-place arena write, remote receivers get a
    /// batch-queue append (flushed by the receiver's owner in the deliver
    /// phase). Returns `true` iff the message crossed a shard boundary.
    #[inline]
    pub(crate) fn deliver(&self, mirror: usize, own_writer: &ArenaWriter<'_, M>, msg: M) -> bool {
        let dst = self.slot_shard[mirror];
        let local = self.slot_local[mirror];
        if dst == self.shard {
            // SAFETY: `own_writer` is the write view of this shard's arena;
            // the slot's unique sender is the node being stepped, on this
            // thread.
            unsafe { own_writer.write(local as usize, msg) };
            false
        } else {
            self.traffic.mark(NodeId(dst));
            // SAFETY: row `self.shard` of the queue matrix belongs to the
            // worker stepping this shard during the compute phase.
            unsafe {
                self.queues
                    .cells
                    .get_mut(self.shard as usize * self.queues.shards + dst as usize)
                    .push((local, msg));
            }
            true
        }
    }
}

/// Worker-local staging for outbound boundary batches: one vector per
/// destination shard, filled during a shard's compute and swapped into the
/// SPSC rings at publish time. Wrapped in [`DisjointSlots`] only to get
/// interior mutability through the shared route reference; the whole
/// structure lives and dies on one worker thread.
pub(crate) struct Staging<M> {
    cells: DisjointSlots<Vec<(u32, M)>>,
}

impl<M: Send> Staging<M> {
    fn new(shards: usize) -> Self {
        Staging {
            cells: DisjointSlots::new_with(shards, |_| Vec::new()),
        }
    }

    /// Appends one `(destination-local slot, payload)` pair for `dst`.
    ///
    /// # Safety
    /// Single-thread discipline: only the owning worker touches its staging.
    #[inline(always)]
    unsafe fn push(&self, dst: usize, slot: u32, msg: M) {
        self.cells.get_mut(dst).push((slot, msg));
    }

    /// Exclusive access to the staged batch for `dst` (publish/clear).
    ///
    /// # Safety
    /// As for [`Staging::push`].
    #[allow(clippy::mut_from_ref)]
    unsafe fn cell(&self, dst: usize) -> &mut Vec<(u32, M)> {
        self.cells.get_mut(dst)
    }
}

/// The routing view an [`Outbox`] holds under the pinned-worker engine.
/// Three delivery classes, decided per send:
/// * same shard → direct write through the outbox's own writer;
/// * different shard, same worker → direct write into the sibling shard's
///   arena at *this* shard's round parity (same thread, no race — the
///   sibling is either about to read the other buffer or exactly these
///   stamps);
/// * different worker → staged for the SPSC boundary ring, counted as a
///   boundary message.
pub(crate) struct PinnedRoute<'a, M> {
    /// Shard being stepped (the sender's shard).
    pub(crate) shard: u32,
    /// Round being computed (selects the arena parity for direct writes).
    pub(crate) round: u32,
    /// Slot-routing tables.
    pub(crate) tables: &'a ShardTables,
    /// Shard -> owning worker.
    pub(crate) owner: &'a [u32],
    /// The stepping worker's id.
    pub(crate) my_worker: u32,
    /// Shard -> index into its owner's arena set.
    pub(crate) arena_of: &'a [u32],
    /// The stepping worker's own arenas (one per owned shard).
    pub(crate) my_arenas: &'a [MessageArena<M>],
    /// The stepping worker's outbound staging.
    pub(crate) staging: &'a Staging<M>,
}

impl<M: Default + Send> PinnedRoute<'_, M> {
    /// Routes one message addressed to global slot `mirror`. Returns `true`
    /// iff the message is bound for another worker (boundary-queue class);
    /// the classification depends only on the static shard→worker map, so
    /// the boundary/local counter split is deterministic.
    #[inline]
    pub(crate) fn deliver(&self, mirror: usize, own_writer: &ArenaWriter<'_, M>, msg: M) -> bool {
        let dst = self.tables.slot_shard[mirror] as usize;
        let local = self.tables.slot_local[mirror] as usize;
        if dst as u32 == self.shard {
            // SAFETY: the slot's unique sender is the node being stepped,
            // on this thread; `own_writer` targets this shard's arena.
            unsafe { own_writer.write(local, msg) };
            return false;
        }
        if self.owner[dst] == self.my_worker {
            // SAFETY: the sibling arena belongs to this worker; no other
            // thread ever touches it, and on this thread no reference into
            // it is live during a *different* shard's compute.
            let (_, writer) = self.my_arenas[self.arena_of[dst] as usize].epoch(self.round);
            unsafe { writer.write(local, msg) };
            return false;
        }
        // SAFETY: staging is this worker's own.
        unsafe { self.staging.push(dst, local as u32, msg) };
        true
    }
}

/// Per-shard bookkeeping a worker keeps for each shard it owns.
struct Seat {
    shard: usize,
    /// Next round to compute.
    round: u32,
    /// `None` while no resident has halted (dense mode: iterate the
    /// partition's resident slice directly); `Some` once the active list
    /// materialized.
    active: Option<Vec<u32>>,
    /// Retired or hit the round cap.
    done: bool,
}

/// What each worker contributes to the merged outcome, folded under one
/// lock at join. Per-shard final rounds land in a shards-indexed table so
/// the post-join skip accounting is scheduling-independent.
struct Merged {
    perf: ExecPerf,
    messages: u64,
    halted: usize,
    stepped: u64,
    /// Shard -> (rounds computed, residents).
    finals: Vec<(u32, usize)>,
    /// Round -> (messages, active nodes), summed across workers.
    trace: Vec<(u64, u64)>,
}

/// The pinned-worker sharded executor backing both
/// [`crate::Executor::Sharded`] and (with auto shard count)
/// [`crate::Executor::Parallel`]. See the module docs for the protocol.
pub(crate) fn run_sharded<P: Protocol>(
    graph: &CsrGraph,
    mut states: Vec<P>,
    shards: usize,
    threads: usize,
    max_rounds: u32,
    want_trace: bool,
) -> SimOutcome<P::Output> {
    assert!(shards >= 1 && threads >= 1);
    let n = graph.num_nodes();
    let part = Partition::bfs_grown(graph, shards);
    let stats0 = ShardExecStats {
        shards,
        cut_edges: part.cut_size(),
        ..ShardExecStats::default()
    };
    if n == 0 {
        return SimOutcome {
            outputs: Vec::new(),
            rounds: 0,
            messages: 0,
            completed: true,
            trace: want_trace.then(Vec::new),
            sharding: Some(stats0),
            perf: ExecPerf::default(),
        };
    }
    if max_rounds == 0 {
        // Match the sequential executor's cap-before-stepping check: a zero
        // budget executes nothing.
        return SimOutcome {
            outputs: states.into_iter().map(P::finish).collect(),
            rounds: 0,
            messages: 0,
            completed: false,
            trace: want_trace.then(Vec::new),
            sharding: Some(stats0),
            perf: ExecPerf::default(),
        };
    }
    debug_assert!(max_rounds < u32::MAX - 1, "stamps reserve u32::MAX");
    let threads = threads.min(shards);
    if shards == 1 {
        return run_single(graph, states, max_rounds, want_trace, stats0);
    }

    let (tables, sizes) = ShardTables::new(graph, &part);

    // Contiguous shard→worker blocks over the BFS order: worker w owns
    // shards [w·S/T, (w+1)·S/T). Adjacent shards are BFS-adjacent, so most
    // shard neighbors share a worker — their gates resolve on-thread and
    // their cross-shard traffic is a direct write, never a queue.
    let mut owner = vec![0u32; shards];
    for w in 0..threads {
        for slot in &mut owner[(w * shards / threads)..((w + 1) * shards / threads)] {
            *slot = w as u32;
        }
    }

    // Shard adjacency (symmetric on an undirected graph — that symmetry is
    // what bounds neighbor round skew to 1 and the rings to RING_CAP).
    let smap = part.shard_map();
    let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for v in graph.nodes() {
        let s = smap[v.idx()] as usize;
        for &u in graph.neighbors(v) {
            let p = smap[u as usize];
            if p as usize != s {
                nbrs[s].push(p);
            }
        }
    }
    for l in &mut nbrs {
        l.sort_unstable();
        l.dedup();
    }

    // One SPSC ring per directed cross-worker shard pair with cut edges.
    let mut rings: Vec<BatchRing<P::Message>> = Vec::new();
    let mut inbound: Vec<Vec<(u32, usize)>> = vec![Vec::new(); shards]; // dst -> [(src, ring)]
    let mut outbound: Vec<Vec<(u32, usize)>> = vec![Vec::new(); shards]; // src -> [(dst, ring)]
    for s in 0..shards {
        for &p in &nbrs[s] {
            if owner[s] != owner[p as usize] {
                let idx = rings.len();
                rings.push(BatchRing::new());
                outbound[s].push((p, idx));
                inbound[p as usize].push((s as u32, idx));
            }
        }
    }

    // Per-shard arenas, distributed to their owner workers by value.
    let mut arena_of = vec![u32::MAX; shards];
    let mut arena_sets: Vec<Vec<MessageArena<P::Message>>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (s, size) in sizes.into_iter().enumerate() {
        let w = owner[s] as usize;
        arena_of[s] = arena_sets[w].len() as u32;
        arena_sets[w].push(MessageArena::with_slots(size));
    }

    let progress: Vec<AtomicU32> = (0..shards).map(|_| AtomicU32::new(0)).collect();
    let states_ptr = SendPtr(states.as_mut_ptr());
    let merged: Mutex<Merged> = Mutex::new(Merged {
        perf: ExecPerf::default(),
        messages: 0,
        halted: 0,
        stepped: 0,
        finals: vec![(0, 0); shards],
        trace: Vec::new(),
    });

    crossbeam::thread::scope(|scope| {
        for (w, my_arenas) in arena_sets.drain(..).enumerate() {
            let part = &part;
            let tables = &tables;
            let owner = &owner[..];
            let arena_of = &arena_of[..];
            let nbrs = &nbrs;
            let rings = &rings;
            let inbound = &inbound;
            let outbound = &outbound;
            let progress = &progress[..];
            let merged = &merged;
            let states_ptr = &states_ptr;
            scope.spawn(move |_| {
                let my_arenas = my_arenas; // owned by this worker for the run
                let staging: Staging<P::Message> = Staging::new(shards);
                let mut seats: Vec<Seat> = (0..shards)
                    .filter(|&s| owner[s] == w as u32)
                    .map(|s| Seat {
                        shard: s,
                        round: 0,
                        active: None,
                        done: false,
                    })
                    .collect();
                let mut remaining = seats.len();
                let mut perf = ExecPerf::default();
                let mut messages: u64 = 0;
                let mut halted: usize = 0;
                let mut stepped: u64 = 0;
                let mut trace_acc: Vec<(u64, u64)> = Vec::new();

                while remaining > 0 {
                    let mut progressed = false;
                    for seat in seats.iter_mut() {
                        if seat.done {
                            continue;
                        }
                        // Advance this shard as far as its neighborhood
                        // allows (a worker's own band pipelines: interior
                        // shards can run ahead while a foreign-owned
                        // neighbor lags).
                        loop {
                            let residents = part.nodes_of(seat.shard);
                            let active_len = seat.active.as_ref().map_or(residents.len(), Vec::len);
                            if active_len == 0 {
                                // Retire: all residents halted (final under
                                // the one-shot simulator). Publish first so
                                // producers stop pushing, then drain the
                                // inbound rings — pending batches address
                                // halted nodes, which the sequential
                                // executor drops just the same.
                                progress[seat.shard].store(RETIRED, Ordering::Release);
                                for &(_, ri) in &inbound[seat.shard] {
                                    // SAFETY: this worker is the ring's
                                    // unique consumer.
                                    unsafe { rings[ri].discard_all() };
                                }
                                seat.done = true;
                                remaining -= 1;
                                progressed = true;
                                break;
                            }
                            let r = seat.round;
                            if r >= max_rounds {
                                // Cap: progress already reads max_rounds,
                                // which satisfies every neighbor gate.
                                seat.done = true;
                                remaining -= 1;
                                progressed = true;
                                break;
                            }
                            // Epoch gate: every neighbor shard must have
                            // finished round r - 1 (acquire pairs with
                            // their publish release, making their batches
                            // and direct writes visible).
                            if !nbrs[seat.shard]
                                .iter()
                                .all(|&p| progress[p as usize].load(Ordering::Acquire) >= r)
                            {
                                break;
                            }
                            let arena = &my_arenas[arena_of[seat.shard] as usize];
                            // Drain inbound batches stamped <= r - 1 into
                            // this shard's arena, ascending src order. A
                            // round-r batch from a neighbor already past us
                            // stays queued for the next round.
                            if r > 0 {
                                for &(_, ri) in &inbound[seat.shard] {
                                    // SAFETY: unique consumer; the writer
                                    // targets this worker's own arena.
                                    unsafe {
                                        rings[ri].pop_upto(r - 1, |b, items| {
                                            let (_, writer) = arena.epoch(b);
                                            for (slot, msg) in items.drain(..) {
                                                writer.write(slot as usize, msg);
                                            }
                                        });
                                    }
                                }
                            }

                            // ---- compute round r ----------------------
                            let ctx = RoundCtx { round: r };
                            let (reader, writer) = arena.epoch(r);
                            let route = PinnedRoute {
                                shard: seat.shard as u32,
                                round: r,
                                tables,
                                owner,
                                my_worker: w as u32,
                                arena_of,
                                my_arenas: &my_arenas,
                                staging: &staging,
                            };
                            perf.sparse_skips += (residents.len() - active_len) as u64;
                            perf.node_rounds += active_len as u64;
                            stepped += 1;
                            let mut round_msgs: u64 = 0;
                            let step =
                                |v: u32, perf: &mut ExecPerf, round_msgs: &mut u64| -> Status {
                                    let node = NodeId(v);
                                    let inbox = Inbox {
                                        reader,
                                        base: tables.node_base(node),
                                        degree: graph.degree(node),
                                    };
                                    let mut outbox = Outbox {
                                        writer,
                                        graph,
                                        node,
                                        sent: 0,
                                        boundary_sent: 0,
                                        wake: None,
                                        route: Some(crate::protocol::RouteRef::Pinned(&route)),
                                    };
                                    // SAFETY: node `v` belongs to this
                                    // shard, owned by this worker alone.
                                    let state = unsafe { &mut *states_ptr.0.add(v as usize) };
                                    let status = state.round(&ctx, &inbox, &mut outbox);
                                    *round_msgs += outbox.sent;
                                    perf.stamp_scans += graph.degree(node) as u64;
                                    perf.boundary_messages += outbox.boundary_sent;
                                    perf.local_messages += outbox.sent - outbox.boundary_sent;
                                    status
                                };
                            match seat.active.as_mut() {
                                None => {
                                    // Dense mode: nobody has halted yet —
                                    // no list writes, no flag loads. The
                                    // active list materializes at the
                                    // first halt.
                                    let mut list: Option<Vec<u32>> = None;
                                    for (i, &v) in residents.iter().enumerate() {
                                        let status = step(v, &mut perf, &mut round_msgs);
                                        if status == Status::Halt {
                                            halted += 1;
                                            list.get_or_insert_with(|| residents[..i].to_vec());
                                        } else if let Some(l) = list.as_mut() {
                                            l.push(v);
                                        }
                                    }
                                    if list.is_some() {
                                        seat.active = list;
                                    }
                                }
                                Some(list) => {
                                    // Sparse mode: compact in place, writes
                                    // only after the first halt this round.
                                    let mut keep = 0usize;
                                    for i in 0..list.len() {
                                        let v = list[i];
                                        let status = step(v, &mut perf, &mut round_msgs);
                                        if status == Status::Halt {
                                            halted += 1;
                                        } else {
                                            if keep < i {
                                                list[keep] = v;
                                            }
                                            keep += 1;
                                        }
                                    }
                                    list.truncate(keep);
                                }
                            }
                            messages += round_msgs;
                            if want_trace {
                                if trace_acc.len() <= r as usize {
                                    trace_acc.resize(r as usize + 1, (0, 0));
                                }
                                trace_acc[r as usize].0 += round_msgs;
                                trace_acc[r as usize].1 += active_len as u64;
                            }

                            // ---- publish ------------------------------
                            for &(dst, ri) in &outbound[seat.shard] {
                                // SAFETY: worker-local staging.
                                let batch = unsafe { staging.cell(dst as usize) };
                                if batch.is_empty() {
                                    continue;
                                }
                                loop {
                                    if progress[dst as usize].load(Ordering::Acquire) == RETIRED {
                                        // Destination retired: all its
                                        // residents halted, the messages
                                        // would be dropped anyway.
                                        batch.clear();
                                        break;
                                    }
                                    // SAFETY: unique producer of this ring.
                                    if unsafe { rings[ri].try_push(r, batch) } {
                                        break;
                                    }
                                    // Full ring: either the consumer is
                                    // about to drain (it lags at most one
                                    // round) or it just retired — re-check.
                                    std::hint::spin_loop();
                                }
                            }
                            progress[seat.shard].store(r + 1, Ordering::Release);
                            seat.round = r + 1;
                            progressed = true;
                        }
                    }
                    if !progressed && remaining > 0 {
                        // Every live seat is gated on a foreign worker;
                        // yield instead of burning the shared core.
                        std::thread::yield_now();
                    }
                }

                let mut m = merged.lock();
                m.perf.absorb(perf);
                m.messages += messages;
                m.halted += halted;
                m.stepped += stepped;
                for seat in &seats {
                    m.finals[seat.shard] = (seat.round, part.nodes_of(seat.shard).len());
                }
                if want_trace {
                    if m.trace.len() < trace_acc.len() {
                        m.trace.resize(trace_acc.len(), (0, 0));
                    }
                    for (i, &(msgs, act)) in trace_acc.iter().enumerate() {
                        m.trace[i].0 += msgs;
                        m.trace[i].1 += act;
                    }
                }
            });
        }
    })
    .expect("sharded simulator worker panicked");

    let merged = merged.into_inner();
    // The run's round count is the last round any shard computed; rounds a
    // retired shard never saw are the shard-granular sparse skips, folded
    // in here so the accounting is identical for every schedule.
    let rounds = merged.finals.iter().map(|&(t, _)| t).max().unwrap_or(0);
    let mut perf = merged.perf;
    let mut skipped: u64 = 0;
    for &(t, residents) in &merged.finals {
        if residents > 0 && t < rounds {
            skipped += (rounds - t) as u64;
            perf.sparse_skips += residents as u64 * (rounds - t) as u64;
        }
    }
    SimOutcome {
        outputs: states.into_iter().map(P::finish).collect(),
        rounds,
        messages: merged.messages,
        completed: merged.halted == n,
        trace: want_trace.then(|| {
            merged
                .trace
                .into_iter()
                .enumerate()
                .map(|(i, (msgs, act))| RoundStats {
                    round: i as u32,
                    active_nodes: act as usize,
                    messages: msgs,
                })
                .collect()
        }),
        sharding: Some(ShardExecStats {
            shard_rounds_stepped: merged.stepped,
            shard_rounds_skipped: skipped,
            ..stats0
        }),
        perf,
    }
}

/// The single-shard fast path: the whole graph is one shard, one worker —
/// no partition plane, no slot translation, no progress atomics. This is
/// what [`crate::Executor::Parallel`] resolves to when only one hardware
/// thread is available, so it must beat the dense sequential scan, not just
/// match it: while no node has halted it iterates `0..n` with zero
/// bookkeeping (no halted flags, no list writes), and after the first halt
/// it switches to the compacting active list.
fn run_single<P: Protocol>(
    graph: &CsrGraph,
    mut states: Vec<P>,
    max_rounds: u32,
    want_trace: bool,
    stats0: ShardExecStats,
) -> SimOutcome<P::Output> {
    let n = graph.num_nodes();
    let arena: MessageArena<P::Message> = MessageArena::for_graph(graph);
    // Every resident steps in a dense round, so its stamp-scan total is the
    // whole directed-slot count — added once per round instead of per node.
    let dense_stamps = graph.num_edges() as u64 * 2;
    let mut active: Option<Vec<u32>> = None;
    let mut remaining = n;
    let mut round: u32 = 0;
    let mut messages: u64 = 0;
    let mut perf = ExecPerf::default();
    let mut trace = want_trace.then(Vec::new);

    while remaining > 0 && round < max_rounds {
        let (reader, writer) = arena.epoch(round);
        let ctx = RoundCtx { round };
        let active_now = remaining;
        perf.sparse_skips += (n - active_now) as u64;
        perf.node_rounds += active_now as u64;
        let mut round_msgs: u64 = 0;
        let mut step = |v: u32, round_msgs: &mut u64| -> Status {
            let node = NodeId(v);
            let inbox = Inbox {
                reader,
                base: graph.node_offset(node),
                degree: graph.degree(node),
            };
            let mut outbox = Outbox {
                writer,
                graph,
                node,
                sent: 0,
                boundary_sent: 0,
                wake: None,
                route: None,
            };
            let status = states[v as usize].round(&ctx, &inbox, &mut outbox);
            *round_msgs += outbox.sent;
            status
        };
        match active.as_mut() {
            None => {
                perf.stamp_scans += dense_stamps;
                let nn = n as u32;
                // Fast lane while nobody has ever halted: no flags, no
                // list, no bookkeeping beyond the step itself.
                let mut v = 0u32;
                while v < nn {
                    if step(v, &mut round_msgs) == Status::Halt {
                        break;
                    }
                    v += 1;
                }
                if v < nn {
                    // First halt of the run: materialize the active list
                    // from the prefix that is still running and finish the
                    // round in list-building mode.
                    let mut list: Vec<u32> = (0..v).collect();
                    remaining -= 1;
                    v += 1;
                    while v < nn {
                        match step(v, &mut round_msgs) {
                            Status::Halt => remaining -= 1,
                            Status::Continue => list.push(v),
                        }
                        v += 1;
                    }
                    active = Some(list);
                }
            }
            Some(list) => {
                let mut keep = 0usize;
                for i in 0..list.len() {
                    let v = list[i];
                    perf.stamp_scans += graph.degree(NodeId(v)) as u64;
                    let status = step(v, &mut round_msgs);
                    if status == Status::Halt {
                        remaining -= 1;
                    } else {
                        if keep < i {
                            list[keep] = v;
                        }
                        keep += 1;
                    }
                }
                list.truncate(keep);
            }
        }
        messages += round_msgs;
        if let Some(t) = trace.as_mut() {
            t.push(RoundStats {
                round,
                active_nodes: active_now,
                messages: round_msgs,
            });
        }
        round += 1;
    }

    perf.local_messages = messages;
    SimOutcome {
        outputs: states.into_iter().map(P::finish).collect(),
        rounds: round,
        messages,
        completed: remaining == 0,
        trace,
        sharding: Some(ShardExecStats {
            shard_rounds_stepped: round as u64,
            shard_rounds_skipped: 0,
            ..stats0
        }),
        perf,
    }
}

#[cfg(test)]
mod tests {
    use crate::protocol::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Status};
    use crate::Simulator;
    use td_graph::CsrGraph;

    /// Node roles for the relay protocol below.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Role {
        /// Halts in round 0 without sending anything.
        Mute,
        /// Broadcasts its id in round 0, then halts — the send and the
        /// quiesce land in the *same* round.
        Source,
        /// Waits; on the first round with any message, records every
        /// `(round, port, payload)`, forwards its id everywhere, halts.
        Relay,
    }

    struct RelayNode {
        id: u32,
        role: Role,
        received: Vec<(u32, u32, u32)>,
    }

    impl Protocol for RelayNode {
        type Input = Role;
        type Message = u32;
        type Output = Vec<(u32, u32, u32)>;

        fn init(node: NodeInit<'_, Role>) -> Self {
            RelayNode {
                id: node.id.0,
                role: *node.input,
                received: Vec::new(),
            }
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            inbox: &Inbox<'_, u32>,
            outbox: &mut Outbox<'_, '_, u32>,
        ) -> Status {
            match self.role {
                Role::Mute => Status::Halt,
                Role::Source => {
                    outbox.broadcast(self.id);
                    Status::Halt
                }
                Role::Relay => {
                    if inbox.is_empty() {
                        return Status::Continue;
                    }
                    for (p, &msg) in inbox.iter() {
                        self.received.push((ctx.round, p.idx() as u32, msg));
                    }
                    outbox.broadcast(self.id);
                    Status::Halt
                }
            }
        }

        fn finish(self) -> Self::Output {
            self.received
        }
    }

    /// Regression: a boundary batch produced by a shard whose nodes *all*
    /// halt in the sending round must still reach the receiving shard
    /// before the sender retires. On the path 0-1-2-3 with two BFS-grown
    /// shards {0,1} | {2,3}, node 0 (mute) and node 1 (source) both
    /// quiesce in round 0 while node 1's send to node 2 crosses the shard
    /// boundary; the relay wave must still reach node 3.
    #[test]
    fn boundary_batch_flushes_when_sending_shard_quiesces_mid_round() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let inputs = [Role::Mute, Role::Source, Role::Relay, Role::Relay];
        let seq = Simulator::sequential().run::<RelayNode>(&g, &inputs);
        // Node 2 hears node 1 in round 1, node 3 hears node 2 in round 2.
        assert_eq!(seq.outputs[2], vec![(1, 0, 1)]);
        assert_eq!(seq.outputs[3], vec![(2, 0, 2)]);
        assert!(seq.completed);
        for threads in [1, 2] {
            let sh = Simulator::sharded(2, threads).run::<RelayNode>(&g, &inputs);
            assert_eq!(sh.outputs, seq.outputs, "threads {threads}");
            assert_eq!(sh.rounds, seq.rounds, "threads {threads}");
            assert_eq!(sh.messages, seq.messages, "threads {threads}");
            assert!(sh.completed);
            let stats = sh.sharding.expect("sharded stats");
            // Shard {0,1} retires after round 0 and must skip the
            // remaining rounds.
            assert!(
                stats.shard_rounds_skipped >= 2,
                "threads {threads}: {stats:?}"
            );
        }
    }

    /// Regression: batches from *several* retiring source shards addressed
    /// to one receiver are drained in ascending src-shard order by the
    /// receiver's owner; outputs (port-tagged payload multiset and arrival
    /// round) must be bit-identical to the sequential executor.
    #[test]
    fn flush_ordering_across_multiple_quiescing_source_shards() {
        // Star-ish path 0-1-2: three singleton shards; both endpoints are
        // sources that halt in round 0, the middle node receives both
        // boundary batches in round 1.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let inputs = [Role::Source, Role::Relay, Role::Source];
        let seq = Simulator::sequential().run::<RelayNode>(&g, &inputs);
        assert_eq!(seq.outputs[1], vec![(1, 0, 0), (1, 1, 2)]);
        for (shards, threads) in [(3, 1), (3, 2), (3, 3), (2, 2)] {
            let sh = Simulator::sharded(shards, threads).run::<RelayNode>(&g, &inputs);
            assert_eq!(sh.outputs, seq.outputs, "{shards}x{threads}");
            assert_eq!(sh.rounds, seq.rounds, "{shards}x{threads}");
            assert_eq!(sh.messages, seq.messages, "{shards}x{threads}");
        }
    }
}

/// Interleaving property tests: the epoch protocol must deliver
/// bit-identical results no matter how the OS schedules the workers. The
/// protocol below burns a per-(node, round) pseudorandom amount of CPU
/// inside `round()`, so every proptest case perturbs the real arrival
/// order of batch pushes, gate checks and retirements across threads.
#[cfg(test)]
mod prop_tests {
    use crate::protocol::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Status};
    use crate::Simulator;
    use proptest::prelude::*;
    use td_graph::CsrGraph;

    /// Gossip with jitter: every node sums everything it hears, forwards
    /// the running sum, and halts at a per-node pseudorandom round. The
    /// spin loop desynchronizes workers without touching semantics.
    struct JitterGossip {
        acc: u64,
        halt_round: u32,
        jitter: u32,
    }

    impl Protocol for JitterGossip {
        type Input = u32; // per-node seed
        type Message = u64;
        type Output = u64;

        fn init(node: NodeInit<'_, u32>) -> Self {
            JitterGossip {
                acc: u64::from(node.id.0) + 1,
                halt_round: node.input % 7,
                jitter: *node.input,
            }
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            inbox: &Inbox<'_, u64>,
            outbox: &mut Outbox<'_, '_, u64>,
        ) -> Status {
            for (_, &m) in inbox.iter() {
                self.acc = self.acc.wrapping_mul(31).wrapping_add(m);
            }
            // Deterministic state, nondeterministic timing: spin an amount
            // that varies per (node, round) so workers drift apart.
            let spins = (self.jitter.wrapping_mul(ctx.round + 1)) % 400;
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            if ctx.round >= self.halt_round {
                Status::Halt
            } else {
                outbox.broadcast(self.acc);
                Status::Continue
            }
        }

        fn finish(self) -> u64 {
            self.acc
        }
    }

    /// Splitmix-style generator: expands one sampled seed into edge lists
    /// and per-node inputs (the vendored proptest shim samples scalars
    /// only).
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Random graphs × random per-node halt schedules × real threads:
        /// outputs, rounds, messages and the scheduling-independent perf
        /// counters must match the sequential executor exactly.
        #[test]
        fn pinned_workers_match_sequential_under_jitter(
            n in 2usize..40,
            seed in 0u64..u64::MAX,
            chords in 0usize..60,
            shards in 1usize..7,
            threads in 1usize..5,
        ) {
            let mut st = seed;
            // Path backbone keeps the graph connected; extra edges add
            // cross-shard chords.
            let mut edges: Vec<(u32, u32)> = (0..n as u32 - 1).map(|v| (v, v + 1)).collect();
            for _ in 0..chords {
                let a = (mix(&mut st) % n as u64) as u32;
                let b = (mix(&mut st) % n as u64) as u32;
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            edges.sort_unstable();
            edges.dedup();
            let g = CsrGraph::from_edges(n, &edges).unwrap();
            let inputs: Vec<u32> = (0..n).map(|_| (mix(&mut st) % 1000) as u32).collect();
            let seq = Simulator::sequential().run::<JitterGossip>(&g, &inputs);
            let sh = Simulator::sharded(shards, threads).run::<JitterGossip>(&g, &inputs);
            prop_assert_eq!(&sh.outputs, &seq.outputs);
            prop_assert_eq!(sh.rounds, seq.rounds);
            prop_assert_eq!(sh.messages, seq.messages);
            prop_assert_eq!(sh.completed, seq.completed);
            prop_assert_eq!(sh.perf.node_rounds, seq.perf.node_rounds);
            prop_assert_eq!(sh.perf.sparse_skips, seq.perf.halted_scans);
            prop_assert_eq!(sh.perf.stamp_scans, seq.perf.stamp_scans);
            prop_assert_eq!(
                sh.perf.local_messages + sh.perf.boundary_messages,
                sh.messages
            );
            let par = Simulator::parallel(threads).run::<JitterGossip>(&g, &inputs);
            prop_assert_eq!(&par.outputs, &seq.outputs);
            prop_assert_eq!(par.rounds, seq.rounds);
            prop_assert_eq!(par.messages, seq.messages);
        }
    }
}
