//! The sharded message plane: per-shard arenas, batched boundary delivery,
//! and the locality-aware one-shot executor.
//!
//! The strided parallel executor ([`crate::Executor::Parallel`]) spreads
//! every node over every worker, so each round touches cache lines across
//! the whole arena and a fully halted region still costs a scan. The
//! sharded executor instead cuts the graph into locality-aware shards
//! ([`td_graph::Partition::bfs_grown`]) and gives each shard:
//!
//! * **its own [`MessageArena`]** — a node's inbox row lives in the arena
//!   of its *own* shard, so the inner compute loop of a shard reads and
//!   writes only shard-local memory;
//! * **batched boundary traffic** — a send whose receiver lives in another
//!   shard is not written remotely; it is appended to the per-(src-shard,
//!   dst-shard) batch queue and flushed once per round, by the *receiving*
//!   shard's owner, in the deliver phase. Remote cache lines are touched
//!   once per batch instead of once per message;
//! * **an active-set guard** — a shard whose nodes have all halted skips
//!   its compute scan entirely ([`crate::metrics::ShardExecStats`] counts
//!   the skipped shard-rounds), and the deliver phase visits only shards
//!   that actually received cross-shard traffic this round, tracked with
//!   the churn plane's [`WakeSet`] wake-sink at shard granularity.
//!
//! ## Determinism
//!
//! The sharded executor is **bit-identical** to the sequential one — same
//! outputs, same round counts, same message counts — for any shard or
//! thread count. The argument is the same one-writer-per-slot discipline
//! as the strided executor, plus one observation about the deliver phase:
//! a slot of `(receiver, port)` has exactly one sender, so the only
//! same-slot write ordering that matters (a node sending twice on one port
//! in one round) happens inside a single `round` call and is preserved by
//! the FIFO batch queue. Messages flushed in the deliver phase of round
//! `r` carry stamp `r + 1` and land before the barrier that opens round
//! `r + 1` — exactly when a direct write would have become visible.
//! `tests/sharded_differential.rs` enforces the contract across every
//! registry scenario and shard/thread grid.

use crate::arena::{ArenaWriter, MessageArena};
use crate::churn::WakeSet;
use crate::disjoint::DisjointSlots;
use crate::metrics::{ExecPerf, RoundStats, ShardExecStats, SimOutcome};
use crate::protocol::{Inbox, Outbox, Protocol, RoundCtx, Status};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use td_graph::{CsrGraph, NodeId, Partition};

/// A raw pointer that may cross thread boundaries; safety is argued at the
/// use site (each node's state is stepped by exactly one worker).
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
unsafe impl<T> Sync for SendPtr<T> {}

/// The per-shard message arenas of one sharded simulation, plus the
/// routing tables translating global CSR slots into (shard, local slot).
pub(crate) struct ShardPlane<M> {
    arenas: Vec<MessageArena<M>>,
    /// Global slot -> shard of the slot's receiver.
    pub(crate) slot_shard: Vec<u32>,
    /// Global slot -> index within the owning shard's arena.
    pub(crate) slot_local: Vec<u32>,
    /// Node -> inbox base within its shard's arena.
    node_base: Vec<u32>,
}

impl<M: Default + Send> ShardPlane<M> {
    /// Builds the plane for `graph` under `part`: one arena per shard,
    /// sized to the shard's total degree, with each node's inbox row
    /// contiguous inside its shard arena (nodes in ascending id order).
    pub(crate) fn new(graph: &CsrGraph, part: &Partition) -> Self {
        let mut slot_shard = vec![0u32; graph.num_slots()];
        let mut slot_local = vec![0u32; graph.num_slots()];
        let mut node_base = vec![0u32; graph.num_nodes()];
        let mut arenas = Vec::with_capacity(part.num_shards());
        for sh in 0..part.num_shards() {
            let mut off = 0u32;
            for &v in part.nodes_of(sh) {
                let node = NodeId(v);
                node_base[v as usize] = off;
                let base = graph.node_offset(node);
                for i in 0..graph.degree(node) {
                    slot_shard[base + i] = sh as u32;
                    slot_local[base + i] = off + i as u32;
                }
                off += graph.degree(node) as u32;
            }
            arenas.push(MessageArena::with_slots(off as usize));
        }
        ShardPlane {
            arenas,
            slot_shard,
            slot_local,
            node_base,
        }
    }

    /// The arena of `shard`.
    #[inline(always)]
    pub(crate) fn arena(&self, shard: usize) -> &MessageArena<M> {
        &self.arenas[shard]
    }

    /// The inbox base of node `v` inside its shard's arena.
    #[inline(always)]
    pub(crate) fn node_base(&self, v: NodeId) -> usize {
        self.node_base[v.idx()] as usize
    }
}

/// The per-(src-shard, dst-shard) boundary batch queues: an S×S row-major
/// matrix of append-only vectors of `(local slot, message)` pairs.
///
/// Access discipline (barrier-separated, see [`run_sharded`]):
/// * compute phase — row `src` is touched only by the worker stepping
///   shard `src` (a shard is stepped by exactly one worker, one shard at a
///   time);
/// * deliver phase — column `dst` is touched only by the worker owning
///   shard `dst`.
pub(crate) struct BatchQueues<M> {
    cells: DisjointSlots<Vec<(u32, M)>>,
    shards: usize,
}

impl<M: Send> BatchQueues<M> {
    pub(crate) fn new(shards: usize) -> Self {
        BatchQueues {
            cells: DisjointSlots::new_with(shards * shards, |_| Vec::new()),
            shards,
        }
    }

    /// Drains every queue addressed to `dst` into `writer`, in ascending
    /// src-shard order. Queue capacity is retained, so the steady state
    /// allocates nothing.
    ///
    /// # Safety
    /// Caller must own column `dst` in the current phase (see the type
    /// docs) and `writer` must be the write view of shard `dst`'s arena.
    pub(crate) unsafe fn flush_into(&self, dst: usize, writer: &ArenaWriter<'_, M>) {
        for src in 0..self.shards {
            let q = self.cells.get_mut(src * self.shards + dst);
            for (slot, msg) in q.drain(..) {
                writer.write(slot as usize, msg);
            }
        }
    }
}

/// The shard-routing view an [`Outbox`] holds under the sharded executors:
/// everything a send needs to decide "local write or boundary batch".
pub(crate) struct ShardRoute<'a, M> {
    /// Shard being stepped (the sender's shard).
    pub(crate) shard: u32,
    /// Global slot -> receiver's shard.
    pub(crate) slot_shard: &'a [u32],
    /// Global slot -> slot within the receiver shard's arena.
    pub(crate) slot_local: &'a [u32],
    /// The boundary batch queues.
    pub(crate) queues: &'a BatchQueues<M>,
    /// Shard-granular wake sink: marks receiver shards that got boundary
    /// traffic this round, so the deliver phase visits only those.
    pub(crate) traffic: &'a WakeSet,
}

impl<M> ShardRoute<'_, M> {
    /// Routes one message addressed to global slot `mirror`: shard-local
    /// receivers get a direct in-place arena write, remote receivers get a
    /// batch-queue append (flushed by the receiver's owner in the deliver
    /// phase). Returns `true` iff the message crossed a shard boundary.
    #[inline]
    pub(crate) fn deliver(&self, mirror: usize, own_writer: &ArenaWriter<'_, M>, msg: M) -> bool {
        let dst = self.slot_shard[mirror];
        let local = self.slot_local[mirror];
        if dst == self.shard {
            // SAFETY: `own_writer` is the write view of this shard's arena;
            // the slot's unique sender is the node being stepped, on this
            // thread.
            unsafe { own_writer.write(local as usize, msg) };
            false
        } else {
            self.traffic.mark(NodeId(dst));
            // SAFETY: row `self.shard` of the queue matrix belongs to the
            // worker stepping this shard during the compute phase.
            unsafe {
                self.queues
                    .cells
                    .get_mut(self.shard as usize * self.queues.shards + dst as usize)
                    .push((local, msg));
            }
            true
        }
    }
}

/// The sharded one-shot executor backing [`crate::Executor::Sharded`].
///
/// Each round runs in two barrier-separated phases:
/// 1. **compute** — every worker steps its owned shards (shard `s` is
///    owned by worker `s mod threads`), skipping fully quiesced ones;
///    intra-shard sends write the shard arena directly, boundary sends are
///    queued;
/// 2. **deliver** — workers flush the batch queues addressed to their
///    owned shards (only shards the traffic wake-sink marked), publishing
///    the boundary messages before the next round's reads.
///
/// ## Node-granular sparse scheduling
///
/// Within an *active* shard, the compute phase iterates a per-shard
/// **active list** — the still-running nodes, kept in ascending id order
/// and compacted in place the moment a node halts — instead of scanning
/// every resident and testing a `halted` flag. A shard whose long tail has
/// quiesced therefore pays `O(active)` per round, not `O(residents)`: the
/// per-node extension of the shard-granular skip above. Because every
/// non-halted node is stepped in every round either way, and nodes within
/// a shard are still visited in ascending id order, outputs, round counts,
/// and message counts are unchanged — the differential suite pins this.
/// [`ExecPerf::sparse_skips`](crate::metrics::ExecPerf) counts the halted
/// node-rounds the active lists never visited (a dense scan reports the
/// same quantity as `halted_scans`).
pub(crate) fn run_sharded<P: Protocol>(
    graph: &CsrGraph,
    mut states: Vec<P>,
    shards: usize,
    threads: usize,
    max_rounds: u32,
    want_trace: bool,
) -> SimOutcome<P::Output> {
    assert!(shards >= 1 && threads >= 1);
    let n = graph.num_nodes();
    let part = Partition::bfs_grown(graph, shards);
    let stats0 = ShardExecStats {
        shards,
        cut_edges: part.cut_size(),
        ..ShardExecStats::default()
    };
    if n == 0 {
        return SimOutcome {
            outputs: Vec::new(),
            rounds: 0,
            messages: 0,
            completed: true,
            trace: want_trace.then(Vec::new),
            sharding: Some(stats0),
            perf: ExecPerf::default(),
        };
    }
    if max_rounds == 0 {
        // Match the sequential executor's cap-before-stepping check: a zero
        // budget executes nothing.
        return SimOutcome {
            outputs: states.into_iter().map(P::finish).collect(),
            rounds: 0,
            messages: 0,
            completed: false,
            trace: want_trace.then(Vec::new),
            sharding: Some(stats0),
            perf: ExecPerf::default(),
        };
    }
    let threads = threads.min(shards);
    let plane: ShardPlane<P::Message> = ShardPlane::new(graph, &part);
    let queues: BatchQueues<P::Message> = BatchQueues::new(shards);
    let traffic = WakeSet::new(shards);
    debug_assert!(max_rounds < u32::MAX - 1, "stamps reserve u32::MAX");

    // Nodes are stepped through raw pointers: every node belongs to exactly
    // one shard, every shard to exactly one worker, so the accesses are
    // disjoint; barriers separate the rounds.
    let states_ptr = SendPtr(states.as_mut_ptr());
    let total_halted = AtomicUsize::new(0);
    let messages = AtomicU64::new(0);
    let round_messages = AtomicU64::new(0);
    let stepped_total = AtomicU64::new(0);
    let skipped_total = AtomicU64::new(0);
    let perf_total: Mutex<ExecPerf> = Mutex::new(ExecPerf::default());
    let stop = AtomicBool::new(false);
    let completed = AtomicBool::new(false);
    let final_rounds = AtomicU32::new(0);
    let pending: Mutex<Vec<u32>> = Mutex::new(Vec::new());
    let barrier = Barrier::new(threads);
    let trace: Mutex<Vec<RoundStats>> = Mutex::new(Vec::new());

    crossbeam::thread::scope(|scope| {
        for w in 0..threads {
            let part = &part;
            let plane = &plane;
            let queues = &queues;
            let traffic = &traffic;
            let barrier = &barrier;
            let total_halted = &total_halted;
            let messages = &messages;
            let round_messages = &round_messages;
            let stepped_total = &stepped_total;
            let skipped_total = &skipped_total;
            let perf_total = &perf_total;
            let stop = &stop;
            let completed = &completed;
            let final_rounds = &final_rounds;
            let pending = &pending;
            let trace = &trace;
            let states_ptr = &states_ptr;
            scope.spawn(move |_| {
                let my_shards: Vec<usize> = (w..shards).step_by(threads).collect();
                // Node-granular sparse scheduling: per owned shard, the ids
                // of the still-running residents, in ascending order.
                // Compacted in place as nodes halt, so a round's compute
                // scan touches only active nodes — a halted tail costs
                // nothing, long before its whole shard quiesces.
                let mut active: Vec<Vec<u32>> = my_shards
                    .iter()
                    .map(|&s| part.nodes_of(s).to_vec())
                    .collect();
                let residents: Vec<usize> =
                    my_shards.iter().map(|&s| part.nodes_of(s).len()).collect();
                let mut round: u32 = 0;
                let mut halted_before: usize = 0; // coordinator-only
                let mut perf = ExecPerf::default();
                // Worker-local snapshot of the pending-traffic list, so the
                // deliver phase never holds the shared lock while flushing.
                let mut my_pending: Vec<u32> = Vec::new();
                loop {
                    // ---- compute phase ---------------------------------
                    let ctx = RoundCtx { round };
                    let mut local_msgs: u64 = 0;
                    let mut newly_halted: usize = 0;
                    let mut stepped: u64 = 0;
                    let mut skipped: u64 = 0;
                    for (k, &sh) in my_shards.iter().enumerate() {
                        if active[k].is_empty() {
                            // Fully quiesced shard: skip the round outright.
                            if residents[k] > 0 {
                                skipped += 1;
                                perf.sparse_skips += residents[k] as u64;
                            }
                            continue;
                        }
                        stepped += 1;
                        perf.sparse_skips += (residents[k] - active[k].len()) as u64;
                        let (reader, writer) = plane.arena(sh).epoch(round);
                        let route = ShardRoute {
                            shard: sh as u32,
                            slot_shard: &plane.slot_shard,
                            slot_local: &plane.slot_local,
                            queues,
                            traffic,
                        };
                        let list = &mut active[k];
                        let mut keep = 0usize;
                        for i in 0..list.len() {
                            let v = list[i];
                            let node = NodeId(v);
                            let inbox = Inbox {
                                reader,
                                base: plane.node_base(node),
                                degree: graph.degree(node),
                            };
                            let mut outbox = Outbox {
                                writer,
                                graph,
                                node,
                                sent: 0,
                                boundary_sent: 0,
                                wake: None,
                                route: Some(&route),
                            };
                            // SAFETY: node `v` belongs to shard `sh`, owned
                            // by this worker alone.
                            let state = unsafe { &mut *states_ptr.0.add(v as usize) };
                            let status = state.round(&ctx, &inbox, &mut outbox);
                            local_msgs += outbox.sent;
                            perf.node_rounds += 1;
                            perf.stamp_scans += graph.degree(node) as u64;
                            perf.boundary_messages += outbox.boundary_sent;
                            perf.local_messages += outbox.sent - outbox.boundary_sent;
                            if status == Status::Halt {
                                newly_halted += 1;
                            } else {
                                // Still running: retain in ascending order.
                                list[keep] = v;
                                keep += 1;
                            }
                        }
                        list.truncate(keep);
                    }
                    messages.fetch_add(local_msgs, Ordering::Relaxed);
                    round_messages.fetch_add(local_msgs, Ordering::Relaxed);
                    total_halted.fetch_add(newly_halted, Ordering::Relaxed);
                    stepped_total.fetch_add(stepped, Ordering::Relaxed);
                    skipped_total.fetch_add(skipped, Ordering::Relaxed);
                    // (a) all sends, queue appends and traffic marks done.
                    barrier.wait();
                    if w == 0 {
                        let halted_now = total_halted.load(Ordering::Relaxed);
                        if want_trace {
                            trace.lock().push(RoundStats {
                                round,
                                active_nodes: n - halted_before,
                                messages: round_messages.swap(0, Ordering::Relaxed),
                            });
                        } else {
                            round_messages.store(0, Ordering::Relaxed);
                        }
                        halted_before = halted_now;
                        *pending.lock() = traffic.drain_sorted();
                        if halted_now == n {
                            completed.store(true, Ordering::Relaxed);
                            final_rounds.store(round + 1, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                        } else if round + 1 >= max_rounds {
                            final_rounds.store(round + 1, Ordering::Relaxed);
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                    // (b) stop decision and pending-traffic list published.
                    barrier.wait();
                    if stop.load(Ordering::Relaxed) {
                        perf_total.lock().absorb(perf);
                        break;
                    }
                    // ---- deliver phase ---------------------------------
                    my_pending.clear();
                    my_pending.extend(
                        pending
                            .lock()
                            .iter()
                            .copied()
                            .filter(|&d| d as usize % threads == w),
                    );
                    for &d in &my_pending {
                        let d = d as usize;
                        let (_, writer) = plane.arena(d).epoch(round);
                        // SAFETY: column `d` belongs to shard `d`'s owner
                        // (this worker) during the deliver phase.
                        unsafe { queues.flush_into(d, &writer) };
                    }
                    // (c) boundary messages published before the next
                    // round's reads.
                    barrier.wait();
                    round += 1;
                }
            });
        }
    })
    .expect("sharded simulator worker panicked");

    SimOutcome {
        outputs: states.into_iter().map(P::finish).collect(),
        rounds: final_rounds.load(Ordering::Relaxed),
        messages: messages.load(Ordering::Relaxed),
        completed: completed.load(Ordering::Relaxed),
        trace: want_trace.then(|| trace.into_inner()),
        sharding: Some(ShardExecStats {
            shard_rounds_stepped: stepped_total.load(Ordering::Relaxed),
            shard_rounds_skipped: skipped_total.load(Ordering::Relaxed),
            ..stats0
        }),
        perf: perf_total.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use crate::protocol::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Status};
    use crate::Simulator;
    use td_graph::CsrGraph;

    /// Node roles for the relay protocol below.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Role {
        /// Halts in round 0 without sending anything.
        Mute,
        /// Broadcasts its id in round 0, then halts — the send and the
        /// quiesce land in the *same* round.
        Source,
        /// Waits; on the first round with any message, records every
        /// `(round, port, payload)`, forwards its id everywhere, halts.
        Relay,
    }

    struct RelayNode {
        id: u32,
        role: Role,
        received: Vec<(u32, u32, u32)>,
    }

    impl Protocol for RelayNode {
        type Input = Role;
        type Message = u32;
        type Output = Vec<(u32, u32, u32)>;

        fn init(node: NodeInit<'_, Role>) -> Self {
            RelayNode {
                id: node.id.0,
                role: *node.input,
                received: Vec::new(),
            }
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            inbox: &Inbox<'_, u32>,
            outbox: &mut Outbox<'_, '_, u32>,
        ) -> Status {
            match self.role {
                Role::Mute => Status::Halt,
                Role::Source => {
                    outbox.broadcast(self.id);
                    Status::Halt
                }
                Role::Relay => {
                    if inbox.is_empty() {
                        return Status::Continue;
                    }
                    for (p, &msg) in inbox.iter() {
                        self.received.push((ctx.round, p.idx() as u32, msg));
                    }
                    outbox.broadcast(self.id);
                    Status::Halt
                }
            }
        }

        fn finish(self) -> Self::Output {
            self.received
        }
    }

    /// Regression: a boundary batch queued by a shard whose nodes *all*
    /// halt in the sending round must still be flushed to the receiving
    /// shard in that round's deliver phase. On the path 0-1-2-3 with two
    /// BFS-grown shards {0,1} | {2,3}, node 0 (mute) and node 1 (source)
    /// both quiesce in round 0 while node 1's send to node 2 crosses the
    /// shard boundary; the relay wave must still reach node 3.
    #[test]
    fn boundary_batch_flushes_when_sending_shard_quiesces_mid_round() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let inputs = [Role::Mute, Role::Source, Role::Relay, Role::Relay];
        let seq = Simulator::sequential().run::<RelayNode>(&g, &inputs);
        // Node 2 hears node 1 in round 1, node 3 hears node 2 in round 2.
        assert_eq!(seq.outputs[2], vec![(1, 0, 1)]);
        assert_eq!(seq.outputs[3], vec![(2, 0, 2)]);
        assert!(seq.completed);
        for threads in [1, 2] {
            let sh = Simulator::sharded(2, threads).run::<RelayNode>(&g, &inputs);
            assert_eq!(sh.outputs, seq.outputs, "threads {threads}");
            assert_eq!(sh.rounds, seq.rounds, "threads {threads}");
            assert_eq!(sh.messages, seq.messages, "threads {threads}");
            assert!(sh.completed);
            let stats = sh.sharding.expect("sharded stats");
            // Shard {0,1} is fully quiesced after round 0 and must skip
            // its compute scan for the remaining rounds.
            assert!(
                stats.shard_rounds_skipped >= 2,
                "threads {threads}: {stats:?}"
            );
        }
    }

    /// Regression: batches from *several* quiescing source shards
    /// addressed to one receiver are drained in ascending src-shard order
    /// by the receiver's owner; outputs (port-tagged payload multiset and
    /// arrival round) must be bit-identical to the sequential executor.
    #[test]
    fn flush_ordering_across_multiple_quiescing_source_shards() {
        // Star-ish path 0-1-2: three singleton shards; both endpoints are
        // sources that halt in round 0, the middle node receives both
        // boundary batches in round 1.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let inputs = [Role::Source, Role::Relay, Role::Source];
        let seq = Simulator::sequential().run::<RelayNode>(&g, &inputs);
        assert_eq!(seq.outputs[1], vec![(1, 0, 0), (1, 1, 2)]);
        for (shards, threads) in [(3, 1), (3, 2), (3, 3), (2, 2)] {
            let sh = Simulator::sharded(shards, threads).run::<RelayNode>(&g, &inputs);
            assert_eq!(sh.outputs, seq.outputs, "{shards}x{threads}");
            assert_eq!(sh.rounds, seq.rounds, "{shards}x{threads}");
            assert_eq!(sh.messages, seq.messages, "{shards}x{threads}");
        }
    }
}
