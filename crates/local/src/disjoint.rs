//! A shared-slice cell for provably disjoint concurrent writes.
//!
//! The simulator's message-delivery phase has a structural no-alias
//! guarantee: the arena slot for `(receiver, port)` is written only by the
//! unique neighbor sitting at the other end of that port, and every node is
//! stepped by exactly one worker thread per round. Hence, within one round,
//! **every message slot has at most one writer** and no readers (reads happen
//! on the *other* buffer of the double-buffered [`crate::arena`], separated
//! by a barrier). [`DisjointSlots`] encapsulates the single `unsafe` needed
//! to exploit this: plain (non-atomic) writes through a shared reference.
//! The arena stores its stamp and payload arrays as two separate
//! `DisjointSlots` (structure-of-arrays), both covered by the same
//! discipline.
//!
//! This is the standard "disjoint index sets" pattern used in parallel graph
//! kernels; the alternative (a mutex or atomic per slot) would put
//! synchronization on the hot path for no semantic benefit.

use std::cell::UnsafeCell;

/// A fixed-size buffer allowing concurrent writes to *disjoint* indices from
/// multiple threads, plus exclusive access for the owner.
///
/// # Safety contract
///
/// * [`DisjointSlots::write`] may be called concurrently from many threads
///   **only if** no two calls in the same synchronization epoch target the
///   same index, and no call races with [`DisjointSlots::as_mut_slice`] /
///   reads of the same index. Epochs must be separated by a happens-before
///   edge (the simulator uses a barrier between the write phase and the next
///   read phase).
pub struct DisjointSlots<T> {
    slots: Box<[UnsafeCell<T>]>,
}

// SAFETY: `DisjointSlots` hands out access only through `write` (whose
// caller contract forbids aliasing, see above) and through `&mut self`
// methods. `T: Send` suffices because values only move between threads,
// they are never referenced concurrently.
unsafe impl<T: Send> Sync for DisjointSlots<T> {}

impl<T> DisjointSlots<T> {
    /// Creates a buffer of `len` slots built by `init(i)`.
    pub fn new_with(len: usize, mut init: impl FnMut(usize) -> T) -> Self {
        let slots: Box<[UnsafeCell<T>]> = (0..len).map(|i| UnsafeCell::new(init(i))).collect();
        DisjointSlots { slots }
    }

    /// Number of slots.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes `value` into slot `idx` through a shared reference.
    ///
    /// # Safety
    /// `idx < len()` (checked only in debug builds), and within the current
    /// synchronization epoch no other thread may access slot `idx` (read or
    /// write). See the type-level contract.
    #[inline(always)]
    pub unsafe fn write(&self, idx: usize, value: T) {
        debug_assert!(idx < self.slots.len());
        *self.slots[idx].get() = value;
    }

    /// Reads slot `idx` through a shared reference.
    ///
    /// # Safety
    /// `idx < len()` (checked only in debug builds), and within the current
    /// synchronization epoch no thread may *write* slot `idx`. Concurrent
    /// reads are fine.
    #[inline(always)]
    pub unsafe fn read(&self, idx: usize) -> &T {
        debug_assert!(idx < self.slots.len());
        &*self.slots[idx].get()
    }

    /// Exclusive in-place access to slot `idx` through a shared reference —
    /// for slots holding growable containers (the sharded executor's batch
    /// queues) that are mutated rather than overwritten.
    ///
    /// # Safety
    /// `idx < len()` (checked only in debug builds), and within the current
    /// synchronization epoch no other access (read or write) to slot `idx`
    /// may exist, including through previously returned references.
    #[inline(always)]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, idx: usize) -> &mut T {
        debug_assert!(idx < self.slots.len());
        &mut *self.slots[idx].get()
    }

    /// Shared view of the contiguous subrange `[start, start + len)`.
    ///
    /// # Safety
    /// `start + len <= len()` — the range must be in bounds; this is checked
    /// only in debug builds, and an out-of-range span in release is
    /// immediate undefined behavior. Additionally, no thread may *write* any
    /// slot in the range while the returned slice is alive. Concurrent reads
    /// are fine.
    #[inline(always)]
    pub unsafe fn slice(&self, start: usize, len: usize) -> &[T] {
        debug_assert!(start + len <= self.slots.len());
        let base = self.slots.as_ptr() as *const T;
        std::slice::from_raw_parts(base.add(start), len)
    }

    /// Exclusive view of the whole buffer (no unsafety: `&mut self`).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: exclusive borrow of self gives exclusive access to all cells.
        unsafe { &mut *(self.slots.as_mut() as *mut [UnsafeCell<T>] as *mut [T]) }
    }

    /// Shared view of the whole buffer.
    ///
    /// # Safety
    /// No thread may be writing any slot while the returned slice is alive.
    pub unsafe fn as_slice(&self) -> &[T] {
        &*(self.slots.as_ref() as *const [UnsafeCell<T>] as *const [T])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_roundtrip() {
        let mut s = DisjointSlots::new_with(4, |i| i as u64);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        // SAFETY: single thread, no concurrent access.
        unsafe {
            s.write(2, 99);
            assert_eq!(*s.read(2), 99);
        }
        assert_eq!(s.as_mut_slice(), &mut [0, 1, 99, 3]);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let n = 10_000;
        let s = DisjointSlots::new_with(n, |_| 0usize);
        let nthreads = 4;
        crossbeam::thread::scope(|scope| {
            for t in 0..nthreads {
                let s = &s;
                scope.spawn(move |_| {
                    // Thread t owns indices ≡ t (mod nthreads): disjoint.
                    for i in (t..n).step_by(nthreads) {
                        // SAFETY: index sets are disjoint across threads and
                        // nothing reads during this scope.
                        unsafe { s.write(i, i * 2 + 1) };
                    }
                });
            }
        })
        .unwrap();
        let mut s = s;
        let slice = s.as_mut_slice();
        for (i, &v) in slice.iter().enumerate() {
            assert_eq!(v, i * 2 + 1);
        }
    }

    #[test]
    fn subslice_view() {
        let s = DisjointSlots::new_with(6, |i| i as u32 * 10);
        // SAFETY: no writers exist.
        let mid = unsafe { s.slice(2, 3) };
        assert_eq!(mid, &[20, 30, 40]);
        assert!(unsafe { s.slice(6, 0) }.is_empty());
    }

    #[test]
    fn empty_buffer() {
        let s: DisjointSlots<u8> = DisjointSlots::new_with(0, |_| 0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
