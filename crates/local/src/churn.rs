//! The churn plane: incremental ("wake-based") protocol execution for
//! dynamic instances.
//!
//! The paper's central motivation for *stable* solutions is dynamic: when
//! one edge or customer changes, a stable solution can be repaired locally
//! instead of recomputed from scratch (Section 1.1). This module provides
//! the executor-level machinery for that regime:
//!
//! * [`ChurnEvent`] — the shared vocabulary of instance updates (edge
//!   insert/delete/flip, token arrival/drop, customer join/leave, server
//!   capacity change). Each problem family's churn engine consumes the
//!   variants that apply to it and rejects the rest.
//! * [`ChurnSim`] — a persistent simulator in which nodes *quiesce* instead
//!   of halting forever: [`crate::Status::Halt`] parks the node, and any
//!   later message wakes it. Between repairs the node states, the message
//!   arena, and the round counter all persist, so a repair touches exactly
//!   the nodes that messages reach — untouched regions are never stepped
//!   and pay **zero protocol work**.
//! * [`RepairStats`] — rounds / messages / node-steps of one repair run,
//!   the quantities experiment E15 compares against full recomputation.
//!
//! ## How sleeping nodes stay free
//!
//! The executor keeps a sorted *awake list* instead of scanning all `n`
//! nodes per round, and the [`crate::arena::MessageArena`]'s stamp
//! machinery does the rest: slots written in earlier repairs are never
//! cleared — they are invalidated by their stale stamps (the round counter
//! is monotonic across repairs, so no live stamp ever collides). Waking is
//! piggybacked on sending: the moment a node writes into a neighbor's
//! mailbox slot it also marks the neighbor in a [`WakeSet`], so the
//! neighbor is stepped in the round the message is delivered.
//!
//! ## Determinism
//!
//! As with [`crate::Simulator`], the parallel executor is bit-identical to
//! the sequential one: the awake set of a round is a *set* (derived from
//! messages and `Continue` statuses, both scheduling-independent), nodes
//! are stepped against the read buffer of the previous round, and every
//! mailbox slot has exactly one writer per round. The differential tests in
//! `tests/churn_differential.rs` enforce this across 1/2/4/8 threads.

use crate::arena::MessageArena;
use crate::metrics::ExecPerf;
use crate::protocol::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, RouteRef, Status};
use crate::shard::{BatchQueues, SendPtr, ShardPlane, ShardRoute};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Barrier;
use td_graph::{CsrGraph, NodeId, Partition};

/// One update to a live instance. The vocabulary is shared across the
/// problem families; each churn engine accepts the variants that make sense
/// for it (e.g. [`ChurnEvent::TokenArrive`] for token games,
/// [`ChurnEvent::CustomerJoin`] for assignments) and returns an error for
/// the rest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnEvent {
    /// Insert the edge `{u, v}`.
    EdgeInsert {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Delete the edge `{u, v}`.
    EdgeDelete {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Adversarially flip the orientation of the edge `{u, v}` (the
    /// instance graph is unchanged; the maintained *solution* is perturbed).
    EdgeFlip {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A token appears on node `v` (token games).
    TokenArrive(NodeId),
    /// The token of node `v` disappears (token games; `v` must be a
    /// traversal origin).
    TokenDrop(NodeId),
    /// A new customer joins with the given candidate server list
    /// (assignments; the engine allocates the customer id).
    CustomerJoin {
        /// Candidate servers of the new customer (external server ids).
        servers: Vec<u32>,
    },
    /// Customer `c` (external id) leaves.
    CustomerLeave(u32),
    /// Server `server` changes capacity. `0` drains the server (its
    /// customers must re-balance elsewhere); any non-zero value makes it
    /// available again. Engines currently treat all non-zero capacities as
    /// unbounded.
    ServerCapacity {
        /// The server (external id).
        server: u32,
        /// New capacity; `0` = drained.
        capacity: u32,
    },
}

impl ChurnEvent {
    /// Encodes the event as one `td-trace/v1` line: a lowercase keyword
    /// followed by space-separated integer operands (`join` uses a
    /// comma-separated server list, `-` when empty). [`decode`] inverts
    /// this exactly.
    ///
    /// [`decode`]: ChurnEvent::decode
    pub fn encode(&self) -> String {
        match self {
            ChurnEvent::EdgeInsert { u, v } => format!("ins {} {}", u.0, v.0),
            ChurnEvent::EdgeDelete { u, v } => format!("del {} {}", u.0, v.0),
            ChurnEvent::EdgeFlip { u, v } => format!("flip {} {}", u.0, v.0),
            ChurnEvent::TokenArrive(v) => format!("arrive {}", v.0),
            ChurnEvent::TokenDrop(v) => format!("drop {}", v.0),
            ChurnEvent::CustomerJoin { servers } => {
                if servers.is_empty() {
                    "join -".to_string()
                } else {
                    let list: Vec<String> = servers.iter().map(u32::to_string).collect();
                    format!("join {}", list.join(","))
                }
            }
            ChurnEvent::CustomerLeave(c) => format!("leave {c}"),
            ChurnEvent::ServerCapacity { server, capacity } => {
                format!("cap {server} {capacity}")
            }
        }
    }

    /// Parses one [`encode`](ChurnEvent::encode)d line. Unknown keywords,
    /// wrong arities, and malformed integers are diagnostics, never panics
    /// — a trace file from a newer schema degrades into a readable error.
    pub fn decode(line: &str) -> Result<ChurnEvent, String> {
        let mut it = line.split_ascii_whitespace();
        let kw = it.next().ok_or_else(|| "empty event line".to_string())?;
        let args: Vec<&str> = it.collect();
        let arity = |n: usize| -> Result<(), String> {
            if args.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "'{kw}' event: expected {n} operand(s), got {}",
                    args.len()
                ))
            }
        };
        let int = |raw: &str| -> Result<u32, String> {
            raw.parse()
                .map_err(|_| format!("'{kw}' event: '{raw}' is not a u32"))
        };
        match kw {
            "ins" | "del" | "flip" => {
                arity(2)?;
                let (u, v) = (NodeId(int(args[0])?), NodeId(int(args[1])?));
                Ok(match kw {
                    "ins" => ChurnEvent::EdgeInsert { u, v },
                    "del" => ChurnEvent::EdgeDelete { u, v },
                    _ => ChurnEvent::EdgeFlip { u, v },
                })
            }
            "arrive" => {
                arity(1)?;
                Ok(ChurnEvent::TokenArrive(NodeId(int(args[0])?)))
            }
            "drop" => {
                arity(1)?;
                Ok(ChurnEvent::TokenDrop(NodeId(int(args[0])?)))
            }
            "join" => {
                arity(1)?;
                let servers = if args[0] == "-" {
                    Vec::new()
                } else {
                    args[0].split(',').map(int).collect::<Result<_, _>>()?
                };
                Ok(ChurnEvent::CustomerJoin { servers })
            }
            "leave" => {
                arity(1)?;
                Ok(ChurnEvent::CustomerLeave(int(args[0])?))
            }
            "cap" => {
                arity(2)?;
                Ok(ChurnEvent::ServerCapacity {
                    server: int(args[0])?,
                    capacity: int(args[1])?,
                })
            }
            other => Err(format!("unknown event keyword '{other}'")),
        }
    }
}

/// A pass-through event sink: hand every applied [`ChurnEvent`] to
/// [`record`](TraceRecorder::record) and the recorder accumulates the
/// stream for serialization (the `td trace record` capture hook). Engines
/// stay unaware of recording — the caller tees events on the way in.
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    events: Vec<ChurnEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event to the recorded stream.
    pub fn record(&mut self, ev: &ChurnEvent) {
        self.events.push(ev.clone());
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded stream, in arrival order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Consumes the recorder, yielding the recorded stream.
    pub fn into_events(self) -> Vec<ChurnEvent> {
        self.events
    }
}

/// Deterministic round-robin symmetry breaking for repair protocols: in
/// `cycle`, node `id` takes the *active* role iff bit `(cycle / 2) mod
/// bits` of its identifier equals the cycle's polarity `cycle mod 2`.
///
/// Any two distinct identifiers below `2^bits` differ in one of the
/// examined bits, so within every window of `2 * bits` cycles they take
/// opposite roles (in both polarities) at least once — the derandomized
/// replacement for the coin-flip role split of the \[CHSW12\]-style
/// baseline. `bits` should be `ceil(log2 n)` (see [`id_bits`]); smaller
/// windows mean shorter worst-case stalls between repairs.
#[inline]
pub fn split_role(id: u32, cycle: u32, bits: u32) -> bool {
    let bit = (id >> ((cycle / 2) % bits.max(1))) & 1;
    bit == (cycle % 2)
}

/// The number of identifier bits [`split_role`] must examine for a network
/// of `n` nodes: `max(1, ceil(log2 n))`.
#[inline]
pub fn id_bits(n: usize) -> u32 {
    (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1)
}

/// An event a churn engine cannot apply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChurnError {
    /// The event variant does not apply to this problem family.
    Unsupported(&'static str),
    /// The event refers to a node/customer/server that does not exist.
    NoSuchEntity(String),
    /// The event is invalid in the current state (e.g. token already
    /// present, edge already exists).
    InvalidEvent(String),
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::Unsupported(family) => {
                write!(f, "event not supported by the {family} engine")
            }
            ChurnError::NoSuchEntity(what) => write!(f, "no such entity: {what}"),
            ChurnError::InvalidEvent(why) => write!(f, "invalid event: {why}"),
        }
    }
}

impl std::error::Error for ChurnError {}

/// Whether a repair restarts the protocol from the dirtied nodes only, or
/// wakes every node (the full-recompute fallback used by the differential
/// tests — same states, same dynamics, every node stepped at least once).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairMode {
    /// Wake only the nodes dirtied by the event (default).
    Incremental,
    /// Wake every node: the full-recompute fallback path.
    FullRecompute,
}

/// Cost of one repair run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Rounds until quiescence.
    pub rounds: u32,
    /// Messages sent.
    pub messages: u64,
    /// Total node steps executed (the work measure that separates
    /// incremental repair from the full-recompute fallback: rounds and
    /// messages of the two are identical by determinism, but the fallback
    /// steps every node at least once).
    pub node_steps: u64,
    /// False if the round cap was hit before quiescence.
    pub completed: bool,
}

impl RepairStats {
    /// Accumulates another run's cost into `self`.
    pub fn absorb(&mut self, other: RepairStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.node_steps += other.node_steps;
        self.completed &= other.completed;
    }

    /// A zero accumulator that starts `completed`.
    pub fn accumulator() -> RepairStats {
        RepairStats {
            completed: true,
            ..RepairStats::default()
        }
    }
}

/// The wake side-channel: per-node "scheduled for next round" flags plus a
/// duplicate-free queue of newly woken nodes. Marking is thread-safe and
/// O(1); draining touches only the woken nodes, never all `n`.
pub struct WakeSet {
    flags: Vec<AtomicBool>,
    queue: Mutex<Vec<u32>>,
}

impl WakeSet {
    /// A wake set over `n` nodes, all asleep.
    pub fn new(n: usize) -> Self {
        WakeSet {
            flags: (0..n).map(|_| AtomicBool::new(false)).collect(),
            queue: Mutex::new(Vec::new()),
        }
    }

    /// Schedules `v` for the next stepping round. Idempotent within a
    /// round; only the first mark enqueues.
    #[inline]
    pub fn mark(&self, v: NodeId) {
        if !self.flags[v.idx()].swap(true, Ordering::Relaxed) {
            self.queue.lock().push(v.0);
        }
    }

    /// Drains the queue into a sorted, duplicate-free awake list and clears
    /// the drained flags (so later marks re-enqueue).
    pub(crate) fn drain_sorted(&self) -> Vec<u32> {
        let mut q = std::mem::take(&mut *self.queue.lock());
        q.sort_unstable();
        for &v in &q {
            self.flags[v as usize].store(false, Ordering::Relaxed);
        }
        q
    }
}

/// A persistent, wake-based simulator for churn engines.
///
/// Unlike [`crate::Simulator`], the `ChurnSim` *owns* its graph, node
/// states, and message arena, and survives across repair runs: `Halt` means
/// "quiesce until a message arrives", and the round counter is monotonic so
/// the arena's stamps keep invalidating stale slots for free.
///
/// ```
/// use td_local::{ChurnSim, Inbox, NodeInit, Outbox, Protocol, RoundCtx, Status};
/// use td_graph::{gen::classic::path, NodeId};
///
/// /// Flood the maximum value; quiesce as soon as nothing improves.
/// struct Max {
///     best: u64,
///     dirty: bool,
/// }
/// impl Protocol for Max {
///     type Input = u64;
///     type Message = u64;
///     type Output = u64;
///     fn init(n: NodeInit<'_, u64>) -> Self {
///         Max { best: *n.input, dirty: false }
///     }
///     fn round(
///         &mut self,
///         _: &RoundCtx,
///         inbox: &Inbox<'_, u64>,
///         outbox: &mut Outbox<'_, '_, u64>,
///     ) -> Status {
///         for (_, &m) in inbox.iter() {
///             if m > self.best {
///                 self.best = m;
///                 self.dirty = true;
///             }
///         }
///         if self.dirty {
///             self.dirty = false;
///             outbox.broadcast(self.best);
///         }
///         Status::Halt // quiesce; a later message wakes this node
///     }
///     fn finish(self) -> u64 {
///         self.best
///     }
/// }
///
/// let mut sim: ChurnSim<Max> = ChurnSim::new(path(5), &[7, 0, 0, 0, 0]);
/// sim.state_mut(NodeId(0)).dirty = true; // the host applies an update…
/// sim.wake(NodeId(0)); //                   …and wakes the dirtied node
/// let stats = sim.run(1, 1_000);
/// assert!(stats.completed);
/// assert!(sim.states().iter().all(|s| s.best == 7));
/// // Only the flood's wavefront was stepped — no dense n x rounds scan.
/// assert!(stats.node_steps < (5 * stats.rounds) as u64);
/// ```
pub struct ChurnSim<P: Protocol> {
    graph: CsrGraph,
    states: Vec<P>,
    arena: MessageArena<P::Message>,
    wake: WakeSet,
    round: u32,
    /// When `round + max_rounds` would reach this value, the stamps are
    /// renormalized before the run (see [`ChurnSim::set_stamp_horizon`]).
    /// Defaults to `u32::MAX - 1`, the arena's reserved-stamp boundary.
    stamp_horizon: u32,
    /// The protocol's behavioral period in `ctx.round` (see
    /// [`ChurnSim::set_round_period`]); renormalization rebases the round
    /// counter by a multiple of `lcm(2, round_period)`.
    round_period: u32,
    /// Lazily built sharded message plane (see [`ChurnSim::run_sharded`]).
    sharded: Option<ShardState<P::Message>>,
    /// Which message plane holds undelivered messages after a round-capped
    /// run: `None` = quiescent, `Some(0)` = the flat arena, `Some(k)` = the
    /// `k`-sharded plane. Switching planes mid-flight would lose them, so
    /// the runners assert against it.
    in_flight: Option<usize>,
    /// Lifetime work counters across every repair run (see
    /// [`ChurnSim::exec_perf`]).
    perf: ExecPerf,
}

/// The sharded message plane of a [`ChurnSim`], cached across repair runs
/// (the graph of a `ChurnSim` is immutable, so the partition stays valid).
struct ShardState<M> {
    part: Partition,
    plane: ShardPlane<M>,
    queues: BatchQueues<M>,
    traffic: WakeSet,
}

impl<P: Protocol> ChurnSim<P> {
    /// Boots one node per graph node from `inputs`, all asleep.
    pub fn new(graph: CsrGraph, inputs: &[P::Input]) -> Self {
        assert_eq!(
            inputs.len(),
            graph.num_nodes(),
            "one input per node required"
        );
        let states: Vec<P> = graph
            .nodes()
            .map(|v| {
                P::init(NodeInit {
                    id: v,
                    neighbor_ids: graph.neighbors(v),
                    input: &inputs[v.idx()],
                })
            })
            .collect();
        let arena = MessageArena::for_graph(&graph);
        let n = graph.num_nodes();
        ChurnSim {
            graph,
            states,
            arena,
            wake: WakeSet::new(n),
            round: 0,
            stamp_horizon: u32::MAX - 1,
            round_period: 1,
            sharded: None,
            in_flight: None,
            perf: ExecPerf::default(),
        }
    }

    /// The underlying network.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Read access to all node states (for snapshotting solutions).
    pub fn states(&self) -> &[P] {
        &self.states
    }

    /// Mutable access to one node's state (for host-side event application).
    pub fn state_mut(&mut self, v: NodeId) -> &mut P {
        &mut self.states[v.idx()]
    }

    /// Schedules `v` to be stepped in the next repair run.
    pub fn wake(&mut self, v: NodeId) {
        self.wake.mark(v);
    }

    /// Schedules every node (the full-recompute fallback).
    pub fn wake_all(&mut self) {
        for v in self.graph.nodes() {
            self.wake.mark(v);
        }
    }

    /// The monotonic round counter (diagnostics; persists across repairs —
    /// and is *rebased* toward zero when it approaches the stamp horizon,
    /// see [`ChurnSim::set_stamp_horizon`]).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Lowers the stamp-renormalization horizon (default: `u32::MAX - 1`,
    /// the arena's reserved-stamp boundary).
    ///
    /// The round counter is monotonic across repairs so the arena's stale
    /// stamps stay invalid for free — but a *long-running* instance (the
    /// `td serve` daemon) would eventually drive it into the reserved
    /// `u32::MAX` stamp. Instead of asserting, the runners now renormalize
    /// when `round + max_rounds` would reach the horizon: in-flight
    /// messages are re-stamped relative to a rebased round counter and
    /// every stale slot is scrubbed, after which behavior is bit-identical
    /// to a sim whose counter never wrapped. Tests lower the horizon to
    /// cross it in milliseconds instead of centuries.
    pub fn set_stamp_horizon(&mut self, horizon: u32) {
        assert!(horizon >= 4, "horizon must leave room to execute rounds");
        assert!(
            horizon < u32::MAX,
            "stamps reserve u32::MAX; the horizon cannot exceed u32::MAX - 1"
        );
        self.stamp_horizon = horizon;
    }

    /// Declares the protocol's behavioral period in `ctx.round`: the
    /// smallest `p` such that the protocol behaves identically at rounds
    /// `r` and `r + p` (e.g. `phases × role-split period` for the repair
    /// protocols). Renormalization rebases the round counter by a multiple
    /// of `lcm(2, p)` — a multiple of 2 for the arena's buffer parity, a
    /// multiple of `p` so phase-aligned protocols cannot observe the
    /// rebase. Defaults to 1 (round-agnostic protocol).
    pub fn set_round_period(&mut self, period: u32) {
        assert!(period >= 1, "a protocol's round period is at least 1");
        self.round_period = period;
    }

    /// Renormalizes the round counter and every message plane if `round +
    /// max_rounds` could reach the stamp horizon. The rebased counter keeps
    /// the old one's residue mod `lcm(2, round_period)`: parity keeps
    /// in-flight messages (stamped exactly `round` after a capped run) in
    /// the buffer the next epoch reads, the protocol period keeps
    /// phase-aligned protocols oblivious. All other stamps are necessarily
    /// stale and are scrubbed on *every* plane (the cached sharded plane
    /// persists across runs, so a stale stamp left there could collide with
    /// a reused round number later).
    fn ensure_stamp_headroom(&mut self, max_rounds: u32) {
        if (self.round as u64) + (max_rounds as u64) < self.stamp_horizon as u64 {
            return;
        }
        let modulus = if self.round_period.is_multiple_of(2) {
            self.round_period
        } else {
            self.round_period * 2
        };
        let old = self.round;
        let new = old % modulus;
        self.arena.renormalize(old, new);
        if let Some(st) = self.sharded.as_mut() {
            for arena in st.plane.arenas_mut() {
                arena.renormalize(old, new);
            }
        }
        self.round = new;
        assert!(
            (self.round as u64) + (max_rounds as u64) < self.stamp_horizon as u64,
            "a single run's round budget ({max_rounds}) plus the rebased counter ({new}) \
             exceeds the stamp horizon ({})",
            self.stamp_horizon
        );
    }

    /// Lifetime [`ExecPerf`] work counters, accumulated over every repair
    /// run of this sim (both planes, any thread count).
    ///
    /// The churn plane is wake-scheduled — halted residents are never
    /// visited, let alone scanned — so `halted_scans` is 0 by construction
    /// and `sparse_skips` counts the resident-rounds the wake sets skipped.
    /// On the flat plane every delivery is a direct arena write
    /// (`local_messages`); on the sharded plane cross-shard sends ride the
    /// batched boundary queues (`boundary_messages`).
    pub fn exec_perf(&self) -> ExecPerf {
        self.perf
    }

    /// Folds a finished run's [`RepairStats`] into the lifetime counters.
    /// `boundary` is the portion of `stats.messages` that crossed shard
    /// boundaries (0 on the flat plane).
    fn absorb_run_perf(&mut self, stats: &RepairStats, boundary: u64) {
        self.perf.node_rounds += stats.node_steps;
        self.perf.local_messages += stats.messages - boundary;
        self.perf.boundary_messages += boundary;
        self.perf.sparse_skips +=
            (stats.rounds as u64) * (self.graph.num_nodes() as u64) - stats.node_steps;
    }

    /// Runs until quiescence (no node awake, no message in flight) or until
    /// `max_rounds` additional rounds have executed. `threads <= 1` runs
    /// sequentially; outputs are identical either way.
    pub fn run(&mut self, threads: usize, max_rounds: u32) -> RepairStats {
        self.ensure_stamp_headroom(max_rounds);
        assert!(
            self.in_flight.is_none_or(|k| k == 0),
            "a capped sharded run left messages in flight; resume with run_sharded"
        );
        let stats = if threads <= 1 {
            self.run_sequential(max_rounds)
        } else {
            self.run_parallel(threads, max_rounds)
        };
        self.absorb_run_perf(&stats, 0);
        self.in_flight = (!stats.completed).then_some(0);
        stats
    }

    /// Runs like [`ChurnSim::run`], but on the sharded message plane:
    /// awake nodes are stepped by their shard's owner worker
    /// ([`td_graph::Partition::bfs_grown`] over the instance graph), intra-
    /// shard messages write the shard-local arena, and boundary messages
    /// are batched per (src-shard, dst-shard) and flushed once per round.
    /// Repair traces are bit-identical to [`ChurnSim::run`] at every shard
    /// and thread count.
    ///
    /// `shards == 1` delegates to the flat plane. The sharded plane is
    /// built on first use and cached (the graph of a `ChurnSim` never
    /// changes); a round-capped run must be resumed on the same plane with
    /// the same shard count.
    pub fn run_sharded(&mut self, shards: usize, threads: usize, max_rounds: u32) -> RepairStats {
        assert!(shards >= 1 && threads >= 1);
        if shards == 1 {
            return self.run(threads, max_rounds);
        }
        self.ensure_stamp_headroom(max_rounds);
        assert!(
            self.in_flight.is_none_or(|k| k == shards),
            "a capped run left messages in flight on a different message plane"
        );
        if self
            .sharded
            .as_ref()
            .is_none_or(|s| s.part.num_shards() != shards)
        {
            let part = Partition::bfs_grown(&self.graph, shards);
            self.sharded = Some(ShardState {
                plane: ShardPlane::new(&self.graph, &part),
                queues: BatchQueues::new(shards),
                traffic: WakeSet::new(shards),
                part,
            });
        }
        // Move the plane out so stepping can borrow `self` mutably.
        let st = self.sharded.take().expect("just built");
        let (stats, boundary) = if threads <= 1 {
            self.run_sharded_sequential(&st, max_rounds)
        } else {
            self.run_sharded_parallel(&st, threads, max_rounds)
        };
        self.sharded = Some(st);
        self.absorb_run_perf(&stats, boundary);
        self.in_flight = (!stats.completed).then_some(shards);
        stats
    }

    /// Returns the run's stats plus the number of messages that crossed a
    /// shard boundary (for the [`ExecPerf`] local/boundary split).
    fn run_sharded_sequential(
        &mut self,
        st: &ShardState<P::Message>,
        max_rounds: u32,
    ) -> (RepairStats, u64) {
        let mut stats = RepairStats::accumulator();
        let mut boundary: u64 = 0;
        let mut stamps: u64 = 0;
        loop {
            let awake = self.wake.drain_sorted();
            if awake.is_empty() {
                break;
            }
            if stats.rounds >= max_rounds {
                // Leave the pending wakes marked: a later run resumes them.
                for &v in &awake {
                    self.wake.mark(NodeId(v));
                }
                stats.completed = false;
                break;
            }
            let ctx = RoundCtx { round: self.round };
            stats.node_steps += awake.len() as u64;
            for &v in &awake {
                let node = NodeId(v);
                let sh = st.part.shard_of(node) as usize;
                let (reader, writer) = st.plane.arena(sh).epoch(self.round);
                let route = ShardRoute {
                    shard: sh as u32,
                    slot_shard: &st.plane.tables.slot_shard,
                    slot_local: &st.plane.tables.slot_local,
                    queues: &st.queues,
                    traffic: &st.traffic,
                };
                let inbox = Inbox {
                    reader,
                    base: st.plane.node_base(node),
                    degree: self.graph.degree(node),
                };
                let mut outbox = Outbox {
                    writer,
                    graph: &self.graph,
                    node,
                    sent: 0,
                    boundary_sent: 0,
                    wake: Some(&self.wake),
                    route: Some(RouteRef::Batched(&route)),
                };
                stamps += inbox.degree as u64;
                let status = self.states[v as usize].round(&ctx, &inbox, &mut outbox);
                stats.messages += outbox.sent;
                boundary += outbox.boundary_sent;
                if status == Status::Continue {
                    self.wake.mark(node);
                }
            }
            // Deliver phase: flush boundary batches into the receiving
            // shards' arenas (only shards the traffic sink marked).
            for d in st.traffic.drain_sorted() {
                let (_, writer) = st.plane.arena(d as usize).epoch(self.round);
                // SAFETY: single-threaded executor — exclusive access.
                unsafe { st.queues.flush_into(d as usize, &writer) };
            }
            self.round += 1;
            stats.rounds += 1;
        }
        self.perf.stamp_scans += stamps;
        (stats, boundary)
    }

    /// Returns the run's stats plus the number of messages that crossed a
    /// shard boundary (for the [`ExecPerf`] local/boundary split).
    fn run_sharded_parallel(
        &mut self,
        st: &ShardState<P::Message>,
        threads: usize,
        max_rounds: u32,
    ) -> (RepairStats, u64) {
        let threads = threads.min(st.part.num_shards()).max(1);
        let graph = &self.graph;
        let wake = &self.wake;
        // States are stepped through raw pointers: every awake node belongs
        // to exactly one shard, every shard to exactly one worker.
        let states_ptr = SendPtr(self.states.as_mut_ptr());
        let first = self.wake.drain_sorted();
        if max_rounds == 0 {
            let pending = !first.is_empty();
            for &v in &first {
                self.wake.mark(NodeId(v));
            }
            return (
                RepairStats {
                    completed: !pending,
                    ..RepairStats::accumulator()
                },
                0,
            );
        }
        if first.is_empty() {
            return (RepairStats::accumulator(), 0);
        }
        let awake: Mutex<Vec<u32>> = Mutex::new(first);
        let pending: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        let barrier = Barrier::new(threads);
        let stop = AtomicBool::new(false);
        let completed = AtomicBool::new(true);
        let messages = AtomicU64::new(0);
        let boundary = AtomicU64::new(0);
        let stamps = AtomicU64::new(0);
        let node_steps = AtomicU64::new(0);
        let rounds_done = AtomicU32::new(0);
        let base_round = self.round;

        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                let awake = &awake;
                let pending = &pending;
                let barrier = &barrier;
                let stop = &stop;
                let completed = &completed;
                let messages = &messages;
                let boundary = &boundary;
                let stamps = &stamps;
                let node_steps = &node_steps;
                let rounds_done = &rounds_done;
                let states_ptr = &states_ptr;
                scope.spawn(move |_| {
                    let mut round = base_round;
                    let mut mine: Vec<u32> = Vec::new();
                    // Worker-local snapshot of the pending-traffic list, so
                    // the deliver phase never holds the shared lock while
                    // flushing.
                    let mut my_pending: Vec<u32> = Vec::new();
                    loop {
                        mine.clear();
                        {
                            let list = awake.lock();
                            mine.extend(
                                list.iter().filter(|&&v| {
                                    st.part.shard_of(NodeId(v)) as usize % threads == w
                                }),
                            );
                        }
                        let ctx = RoundCtx { round };
                        let mut local_msgs: u64 = 0;
                        let mut local_boundary: u64 = 0;
                        let mut local_stamps: u64 = 0;
                        for &v in &mine {
                            let node = NodeId(v);
                            let sh = st.part.shard_of(node) as usize;
                            let (reader, writer) = st.plane.arena(sh).epoch(round);
                            let route = ShardRoute {
                                shard: sh as u32,
                                slot_shard: &st.plane.tables.slot_shard,
                                slot_local: &st.plane.tables.slot_local,
                                queues: &st.queues,
                                traffic: &st.traffic,
                            };
                            let inbox = Inbox {
                                reader,
                                base: st.plane.node_base(node),
                                degree: graph.degree(node),
                            };
                            let mut outbox = Outbox {
                                writer,
                                graph,
                                node,
                                sent: 0,
                                boundary_sent: 0,
                                wake: Some(wake),
                                route: Some(RouteRef::Batched(&route)),
                            };
                            // SAFETY: the shard partition gives each awake
                            // node to exactly one worker, so this &mut does
                            // not alias; barriers separate the rounds.
                            local_stamps += inbox.degree as u64;
                            let state = unsafe { &mut *states_ptr.0.add(v as usize) };
                            let status = state.round(&ctx, &inbox, &mut outbox);
                            local_msgs += outbox.sent;
                            local_boundary += outbox.boundary_sent;
                            if status == Status::Continue {
                                wake.mark(node);
                            }
                        }
                        messages.fetch_add(local_msgs, Ordering::Relaxed);
                        boundary.fetch_add(local_boundary, Ordering::Relaxed);
                        stamps.fetch_add(local_stamps, Ordering::Relaxed);
                        // (a) all sends, wake marks and queue appends done.
                        barrier.wait();
                        if w == 0 {
                            let stepped = awake.lock().len() as u64;
                            node_steps.fetch_add(stepped, Ordering::Relaxed);
                            let executed = rounds_done.fetch_add(1, Ordering::Relaxed) + 1;
                            *pending.lock() = st.traffic.drain_sorted();
                            let next = wake.drain_sorted();
                            if next.is_empty() {
                                stop.store(true, Ordering::Relaxed);
                            } else if executed >= max_rounds {
                                // Re-mark so a later run resumes the work.
                                for &v in &next {
                                    wake.mark(NodeId(v));
                                }
                                completed.store(false, Ordering::Relaxed);
                                stop.store(true, Ordering::Relaxed);
                            } else {
                                *awake.lock() = next;
                            }
                        }
                        // (b) next awake list / pending list / stop published.
                        barrier.wait();
                        // Deliver phase runs even when stopping: a capped
                        // run's boundary messages must reach the shard
                        // arenas so a later run can resume them. Snapshot
                        // the owned entries first so no worker holds the
                        // shared lock while flushing.
                        my_pending.clear();
                        my_pending.extend(
                            pending
                                .lock()
                                .iter()
                                .copied()
                                .filter(|&d| d as usize % threads == w),
                        );
                        for &d in &my_pending {
                            let d = d as usize;
                            let (_, writer) = st.plane.arena(d).epoch(round);
                            // SAFETY: column `d` belongs to this worker
                            // during the deliver phase.
                            unsafe { st.queues.flush_into(d, &writer) };
                        }
                        // (c) boundary messages published.
                        barrier.wait();
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        round += 1;
                    }
                });
            }
        })
        .expect("sharded churn worker panicked");

        let rounds = rounds_done.load(Ordering::Relaxed);
        self.round += rounds;
        self.perf.stamp_scans += stamps.load(Ordering::Relaxed);
        (
            RepairStats {
                rounds,
                messages: messages.load(Ordering::Relaxed),
                node_steps: node_steps.load(Ordering::Relaxed),
                completed: completed.load(Ordering::Relaxed),
            },
            boundary.load(Ordering::Relaxed),
        )
    }

    fn run_sequential(&mut self, max_rounds: u32) -> RepairStats {
        let mut stats = RepairStats::accumulator();
        let mut stamps: u64 = 0;
        loop {
            let awake = self.wake.drain_sorted();
            if awake.is_empty() {
                break;
            }
            if stats.rounds >= max_rounds {
                // Leave the pending wakes marked: a later run resumes them.
                for &v in &awake {
                    self.wake.mark(NodeId(v));
                }
                stats.completed = false;
                break;
            }
            let (reader, writer) = self.arena.epoch(self.round);
            let ctx = RoundCtx { round: self.round };
            stats.node_steps += awake.len() as u64;
            for &v in &awake {
                let node = NodeId(v);
                let inbox = Inbox {
                    reader,
                    base: self.graph.node_offset(node),
                    degree: self.graph.degree(node),
                };
                let mut outbox = Outbox {
                    writer,
                    graph: &self.graph,
                    node,
                    sent: 0,
                    boundary_sent: 0,
                    wake: Some(&self.wake),
                    route: None,
                };
                stamps += inbox.degree as u64;
                let status = self.states[v as usize].round(&ctx, &inbox, &mut outbox);
                stats.messages += outbox.sent;
                if status == Status::Continue {
                    self.wake.mark(node);
                }
            }
            self.round += 1;
            stats.rounds += 1;
        }
        self.perf.stamp_scans += stamps;
        stats
    }

    fn run_parallel(&mut self, threads: usize, max_rounds: u32) -> RepairStats {
        let n = self.graph.num_nodes();
        let threads = threads.min(n.max(1));
        let graph = &self.graph;
        let arena = &self.arena;
        let wake = &self.wake;
        // States are stepped through raw pointers: each awake node is owned
        // by exactly one worker (strided partition of the awake list), so
        // the accesses are disjoint. The awake list itself is rebuilt by
        // worker 0 between barriers.
        let states_ptr = SendPtr(self.states.as_mut_ptr());
        let first = self.wake.drain_sorted();
        if max_rounds == 0 {
            // Match the sequential executor's cap-before-stepping check:
            // a zero budget executes nothing and leaves the work pending.
            let pending = !first.is_empty();
            for &v in &first {
                self.wake.mark(NodeId(v));
            }
            return RepairStats {
                completed: !pending,
                ..RepairStats::accumulator()
            };
        }
        let awake: Mutex<Vec<u32>> = Mutex::new(first);
        let barrier = Barrier::new(threads);
        let stop = AtomicBool::new(false);
        let completed = AtomicBool::new(true);
        let messages = AtomicU64::new(0);
        let stamps = AtomicU64::new(0);
        let node_steps = AtomicU64::new(0);
        let rounds_done = AtomicU32::new(0);
        let base_round = self.round;

        if awake.lock().is_empty() {
            return RepairStats::accumulator();
        }

        crossbeam::thread::scope(|scope| {
            for w in 0..threads {
                let awake = &awake;
                let barrier = &barrier;
                let stop = &stop;
                let completed = &completed;
                let messages = &messages;
                let stamps = &stamps;
                let node_steps = &node_steps;
                let rounds_done = &rounds_done;
                let states_ptr = &states_ptr;
                scope.spawn(move |_| {
                    let mut round = base_round;
                    let mut mine: Vec<u32> = Vec::new();
                    loop {
                        mine.clear();
                        {
                            let list = awake.lock();
                            mine.extend(list.iter().skip(w).step_by(threads));
                        }
                        let (reader, writer) = arena.epoch(round);
                        let ctx = RoundCtx { round };
                        let mut local_msgs: u64 = 0;
                        let mut local_stamps: u64 = 0;
                        for &v in &mine {
                            let node = NodeId(v);
                            let inbox = Inbox {
                                reader,
                                base: graph.node_offset(node),
                                degree: graph.degree(node),
                            };
                            let mut outbox = Outbox {
                                writer,
                                graph,
                                node,
                                sent: 0,
                                boundary_sent: 0,
                                wake: Some(wake),
                                route: None,
                            };
                            // SAFETY: the strided partition gives each awake
                            // node to exactly one worker, so this &mut does
                            // not alias; barriers separate the rounds.
                            local_stamps += inbox.degree as u64;
                            let state = unsafe { &mut *states_ptr.0.add(v as usize) };
                            let status = state.round(&ctx, &inbox, &mut outbox);
                            local_msgs += outbox.sent;
                            if status == Status::Continue {
                                wake.mark(node);
                            }
                        }
                        messages.fetch_add(local_msgs, Ordering::Relaxed);
                        stamps.fetch_add(local_stamps, Ordering::Relaxed);
                        // (a) all sends and wake marks for this round done.
                        barrier.wait();
                        if w == 0 {
                            let stepped = awake.lock().len() as u64;
                            node_steps.fetch_add(stepped, Ordering::Relaxed);
                            let executed = rounds_done.fetch_add(1, Ordering::Relaxed) + 1;
                            let next = wake.drain_sorted();
                            if next.is_empty() {
                                stop.store(true, Ordering::Relaxed);
                            } else if executed >= max_rounds {
                                // Re-mark so a later run resumes the work.
                                for &v in &next {
                                    wake.mark(NodeId(v));
                                }
                                completed.store(false, Ordering::Relaxed);
                                stop.store(true, Ordering::Relaxed);
                            } else {
                                *awake.lock() = next;
                            }
                        }
                        // (b) next awake list / stop decision published.
                        barrier.wait();
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        round += 1;
                    }
                });
            }
        })
        .expect("churn worker panicked");

        let rounds = rounds_done.load(Ordering::Relaxed);
        self.round += rounds;
        self.perf.stamp_scans += stamps.load(Ordering::Relaxed);
        RepairStats {
            rounds,
            messages: messages.load(Ordering::Relaxed),
            node_steps: node_steps.load(Ordering::Relaxed),
            completed: completed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Inbox, NodeInit, Outbox, RoundCtx};
    use td_graph::gen::classic::{cycle, path};
    use td_graph::Port;

    #[test]
    fn churn_events_encode_decode_roundtrip() {
        let all = [
            ChurnEvent::EdgeInsert {
                u: NodeId(3),
                v: NodeId(9),
            },
            ChurnEvent::EdgeDelete {
                u: NodeId(0),
                v: NodeId(1),
            },
            ChurnEvent::EdgeFlip {
                u: NodeId(7),
                v: NodeId(7),
            },
            ChurnEvent::TokenArrive(NodeId(12)),
            ChurnEvent::TokenDrop(NodeId(0)),
            ChurnEvent::CustomerJoin {
                servers: vec![4, 0, 2],
            },
            ChurnEvent::CustomerJoin { servers: vec![] },
            ChurnEvent::CustomerLeave(99),
            ChurnEvent::ServerCapacity {
                server: 5,
                capacity: 0,
            },
            ChurnEvent::ServerCapacity {
                server: u32::MAX,
                capacity: u32::MAX,
            },
        ];
        for ev in &all {
            let line = ev.encode();
            assert!(!line.contains('\n'), "{line:?}: single line");
            let back = ChurnEvent::decode(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(&back, ev, "{line}");
        }
    }

    #[test]
    fn churn_event_decode_rejects_malformed_lines() {
        for bad in [
            "",
            "teleport 3 4",      // unknown keyword (future schema variant)
            "ins 3",             // arity
            "ins 3 4 5",         // arity
            "flip x 4",          // not a u32
            "arrive -1",         // negative
            "join",              // missing list
            "join 1,,2",         // empty list element
            "cap 5",             // arity
            "leave 99999999999", // u32 overflow
        ] {
            let err = ChurnEvent::decode(bad);
            assert!(err.is_err(), "{bad:?}: should be rejected, got {err:?}");
        }
        // The diagnostic names the offending keyword.
        let msg = ChurnEvent::decode("teleport 3 4").unwrap_err();
        assert!(msg.contains("teleport"), "{msg}");
    }

    #[test]
    fn trace_recorder_accumulates_in_order() {
        let mut rec = TraceRecorder::new();
        assert!(rec.is_empty());
        let evs = [
            ChurnEvent::EdgeFlip {
                u: NodeId(1),
                v: NodeId(2),
            },
            ChurnEvent::CustomerLeave(3),
        ];
        for ev in &evs {
            rec.record(ev);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.events(), &evs[..]);
        assert_eq!(rec.into_events(), evs.to_vec());
    }

    /// Relaxation to a fixpoint: each node holds a value; when woken it
    /// adopts `max(own, received)` and gossips only on change. Quiesces as
    /// soon as the maximum has flooded the awake region.
    struct MaxHold {
        best: u64,
        dirty: bool,
    }

    impl Protocol for MaxHold {
        type Input = u64;
        type Message = u64;
        type Output = u64;

        fn init(node: NodeInit<'_, u64>) -> Self {
            MaxHold {
                best: *node.input,
                // Converged by default: a woken node gossips only after its
                // value actually changes (tests flip this by hand to model
                // a host-applied perturbation).
                dirty: false,
            }
        }

        fn round(
            &mut self,
            _ctx: &RoundCtx,
            inbox: &Inbox<'_, u64>,
            outbox: &mut Outbox<'_, '_, u64>,
        ) -> Status {
            for (_, &m) in inbox.iter() {
                if m > self.best {
                    self.best = m;
                    self.dirty = true;
                }
            }
            if self.dirty {
                self.dirty = false;
                outbox.broadcast(self.best);
            }
            Status::Halt
        }

        fn finish(self) -> u64 {
            self.best
        }
    }

    #[test]
    fn quiescent_without_wakes() {
        let g = path(5);
        let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &[1, 2, 3, 4, 5]);
        let stats = sim.run(1, 1000);
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.node_steps, 0);
        assert!(stats.completed);
    }

    #[test]
    fn wake_floods_only_while_values_improve() {
        let g = path(6);
        let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &[9, 0, 0, 0, 0, 0]);
        sim.state_mut(NodeId(0)).dirty = true;
        sim.wake(NodeId(0));
        let stats = sim.run(1, 1000);
        assert!(stats.completed);
        // The 9 floods down the path: rounds = path length + settle.
        assert!(stats.rounds >= 5, "rounds = {}", stats.rounds);
        for v in 0..6 {
            assert_eq!(sim.states()[v].best, 9);
        }
    }

    #[test]
    fn sleeping_region_pays_zero_steps() {
        // Wake one endpoint whose value is NOT the max: the flood dies as
        // soon as no node improves; far nodes are never stepped.
        let g = path(40);
        let mut inputs = vec![5u64; 40];
        inputs[0] = 3; // woken node is dominated immediately
        let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
        sim.state_mut(NodeId(0)).dirty = true;
        sim.wake(NodeId(0));
        let stats = sim.run(1, 1000);
        assert!(stats.completed);
        // Node 0 gossips its 3; node 1 ignores the dominated value and goes
        // back to sleep. The other 38 nodes are never stepped.
        assert_eq!(stats.node_steps, 2);
        assert_eq!(stats.messages, 1);
    }

    #[test]
    fn round_counter_persists_and_messages_stay_valid() {
        let g = cycle(8);
        let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &[0; 8]);
        sim.wake(NodeId(3));
        let a = sim.run(1, 1000);
        assert!(a.completed);
        let r0 = sim.round();
        // Second repair: bump node 5's value by hand, wake it.
        sim.state_mut(NodeId(5)).best = 42;
        sim.state_mut(NodeId(5)).dirty = true;
        sim.wake(NodeId(5));
        let b = sim.run(1, 1000);
        assert!(b.completed);
        assert!(sim.round() > r0);
        for v in 0..8 {
            assert_eq!(sim.states()[v].best, 42, "node {v}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for threads in [2usize, 4, 8] {
            let g = cycle(17);
            let mut inputs = vec![0u64; 17];
            inputs[11] = 7;
            let mut seq: ChurnSim<MaxHold> = ChurnSim::new(g.clone(), &inputs);
            seq.state_mut(NodeId(11)).dirty = true;
            seq.wake(NodeId(11));
            let a = seq.run(1, 10_000);
            let mut par: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
            par.state_mut(NodeId(11)).dirty = true;
            par.wake(NodeId(11));
            let b = par.run(threads, 10_000);
            assert_eq!(a, b, "threads = {threads}");
            for v in 0..17 {
                assert_eq!(seq.states()[v].best, par.states()[v].best);
            }
        }
    }

    #[test]
    fn zero_round_cap_is_executor_independent() {
        for threads in [1usize, 4] {
            let g = path(6);
            let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &[1, 0, 0, 0, 0, 0]);
            sim.state_mut(NodeId(0)).dirty = true;
            sim.wake(NodeId(0));
            let capped = sim.run(threads, 0);
            assert_eq!(capped.rounds, 0, "threads = {threads}");
            assert!(!capped.completed, "threads = {threads}");
            // The pending wake survives for the next run.
            let rest = sim.run(threads, 1000);
            assert!(rest.completed);
            assert!(rest.node_steps > 0);
        }
    }

    #[test]
    fn round_cap_leaves_work_resumable() {
        let g = path(30);
        let mut inputs = vec![0u64; 30];
        inputs[0] = 9;
        let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
        sim.state_mut(NodeId(0)).dirty = true;
        sim.wake(NodeId(0));
        let a = sim.run(1, 3);
        assert!(!a.completed);
        assert_eq!(a.rounds, 3);
        let b = sim.run(1, 10_000);
        assert!(b.completed);
        assert_eq!(sim.states()[29].best, 9);
    }

    /// A protocol that echoes received payloads back once, port-addressed —
    /// exercises wake-on-message with specific ports.
    struct EchoOnce;

    impl Protocol for EchoOnce {
        type Input = ();
        type Message = u32;
        type Output = ();

        fn init(_: NodeInit<'_, ()>) -> Self {
            EchoOnce
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            inbox: &Inbox<'_, u32>,
            outbox: &mut Outbox<'_, '_, u32>,
        ) -> Status {
            if ctx.round == 0 {
                outbox.send(Port::from(0usize), 1);
            } else {
                for (p, &m) in inbox.iter() {
                    if m < 3 {
                        outbox.send(p, m + 1);
                    }
                }
            }
            Status::Halt
        }

        fn finish(self) {}
    }

    #[test]
    fn message_wakes_sleeping_receiver() {
        let g = path(2);
        let mut sim: ChurnSim<EchoOnce> = ChurnSim::new(g, &[(), ()]);
        sim.wake(NodeId(0));
        let stats = sim.run(1, 100);
        assert!(stats.completed);
        // 0 sends 1; 1 wakes, replies 2; 0 wakes, replies 3; 1 wakes, stops.
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.node_steps, 4);
    }

    #[test]
    fn sharded_repairs_match_flat_at_every_grid_point() {
        for shards in [1usize, 2, 4, 8] {
            for threads in [1usize, 2, 4] {
                let g = cycle(17);
                let mut inputs = vec![0u64; 17];
                inputs[11] = 7;
                let mut flat: ChurnSim<MaxHold> = ChurnSim::new(g.clone(), &inputs);
                flat.state_mut(NodeId(11)).dirty = true;
                flat.wake(NodeId(11));
                let a = flat.run(1, 10_000);
                let mut sh: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
                sh.state_mut(NodeId(11)).dirty = true;
                sh.wake(NodeId(11));
                let b = sh.run_sharded(shards, threads, 10_000);
                assert_eq!(a, b, "shards {shards}, threads {threads}");
                for v in 0..17 {
                    assert_eq!(flat.states()[v].best, sh.states()[v].best);
                }
            }
        }
    }

    #[test]
    fn sharded_round_cap_is_resumable_on_the_same_plane() {
        for threads in [1usize, 3] {
            let g = path(30);
            let mut inputs = vec![0u64; 30];
            inputs[0] = 9;
            let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
            sim.state_mut(NodeId(0)).dirty = true;
            sim.wake(NodeId(0));
            let a = sim.run_sharded(4, threads, 3);
            assert!(!a.completed, "threads {threads}");
            assert_eq!(a.rounds, 3);
            // Resume on the same plane: the capped run's boundary messages
            // were flushed, so the flood completes.
            let b = sim.run_sharded(4, threads, 10_000);
            assert!(b.completed);
            assert_eq!(sim.states()[29].best, 9);
        }
    }

    /// Marking a node twice before it is stepped enqueues it once; draining
    /// resets the flag so a later mark re-enqueues — the invariant behind
    /// "a node woken by its own `Continue` *and* an incoming message in the
    /// same round is stepped exactly once".
    #[test]
    fn wakeset_re_mark_in_same_round_enqueues_once() {
        let ws = WakeSet::new(5);
        ws.mark(NodeId(2));
        ws.mark(NodeId(2));
        ws.mark(NodeId(4));
        ws.mark(NodeId(2));
        assert_eq!(ws.drain_sorted(), vec![2, 4]);
        // Drained flags are cleared: the same node can be woken again.
        ws.mark(NodeId(2));
        assert_eq!(ws.drain_sorted(), vec![2]);
        assert!(ws.drain_sorted().is_empty());
    }

    /// Both neighbors message each other *and* return `Continue` every
    /// round: each node is doubly scheduled (self-continue + incoming
    /// message) yet must be stepped exactly once per round, on the flat and
    /// the sharded plane alike.
    struct ChattyPair;

    impl Protocol for ChattyPair {
        type Input = ();
        type Message = u8;
        type Output = ();

        fn init(_: NodeInit<'_, ()>) -> Self {
            ChattyPair
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            _inbox: &Inbox<'_, u8>,
            outbox: &mut Outbox<'_, '_, u8>,
        ) -> Status {
            if ctx.round < 3 {
                outbox.broadcast(1);
                Status::Continue
            } else {
                Status::Halt
            }
        }

        fn finish(self) {}
    }

    #[test]
    fn double_wake_continue_plus_message_steps_once() {
        for (threads, shards) in [(1usize, 1usize), (2, 1), (1, 2), (2, 2)] {
            let g = path(2);
            let mut sim: ChurnSim<ChattyPair> = ChurnSim::new(g, &[(), ()]);
            sim.wake(NodeId(0));
            sim.wake(NodeId(1));
            let stats = sim.run_sharded(shards, threads, 100);
            assert!(stats.completed);
            // Rounds 0..=2 send + continue, round 3 quiesces: 4 rounds,
            // 2 nodes stepped once each per round despite the double wake.
            assert_eq!(stats.rounds, 4, "threads {threads} shards {shards}");
            assert_eq!(stats.node_steps, 8, "threads {threads} shards {shards}");
            assert_eq!(stats.messages, 6, "threads {threads} shards {shards}");
        }
    }

    /// A boundary message whose receiving shard is *fully* quiesced must
    /// wake that shard: the flood starts in shard 0 and every other shard
    /// of the plane is asleep until its first cross-shard delivery.
    #[test]
    fn boundary_message_wakes_fully_quiesced_shard() {
        for threads in [1usize, 2] {
            let g = path(16);
            let mut inputs = vec![0u64; 16];
            inputs[0] = 9;
            let mut flat: ChurnSim<MaxHold> = ChurnSim::new(g.clone(), &inputs);
            flat.state_mut(NodeId(0)).dirty = true;
            flat.wake(NodeId(0));
            let a = flat.run(1, 10_000);
            let mut sh: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
            sh.state_mut(NodeId(0)).dirty = true;
            sh.wake(NodeId(0));
            // 4 BFS shards over a path = 4 contiguous blocks; shards 1-3
            // start with every resident asleep.
            let b = sh.run_sharded(4, threads, 10_000);
            assert_eq!(a, b, "threads {threads}");
            for v in 0..16 {
                assert_eq!(sh.states()[v].best, 9, "node {v}");
            }
            // The wave touches each node a bounded number of times — far
            // below the dense grid — so quiesced regions stayed cheap.
            assert!(
                b.node_steps < (16 * b.rounds) as u64,
                "threads {threads}: steps {} not sparse",
                b.node_steps
            );
        }
    }

    /// Round-cap resume when the cap lands *inside* a shard: the frontier
    /// shard is partially woken (some residents already stepped, some still
    /// asleep), and repeated 1-round slices must make monotonic progress to
    /// the same final state as an uncapped run.
    #[test]
    fn round_cap_resume_with_partially_woken_shard() {
        let g = path(16);
        let mut inputs = vec![0u64; 16];
        inputs[0] = 9;
        let mut capped: ChurnSim<MaxHold> = ChurnSim::new(g.clone(), &inputs);
        capped.state_mut(NodeId(0)).dirty = true;
        capped.wake(NodeId(0));
        // Cap after 2 rounds: the flood is at node 2 of shard 0 (nodes
        // 0..=3), so shard 0 is partially woken and shards 1-3 untouched.
        let first = capped.run_sharded(4, 1, 2);
        assert!(!first.completed);
        assert_eq!(first.rounds, 2);
        let mut total = first;
        let mut slices = 0;
        while !total.completed {
            let slice = capped.run_sharded(4, 1, 1);
            assert!(slice.rounds <= 1);
            total.absorb(slice);
            total.completed = slice.completed;
            slices += 1;
            assert!(slices < 100, "resume failed to converge");
        }
        let mut free: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
        free.state_mut(NodeId(0)).dirty = true;
        free.wake(NodeId(0));
        let uncapped = free.run_sharded(4, 1, 10_000);
        assert_eq!(total.rounds, uncapped.rounds);
        assert_eq!(total.messages, uncapped.messages);
        assert_eq!(total.node_steps, uncapped.node_steps);
        for v in 0..16 {
            assert_eq!(capped.states()[v].best, free.states()[v].best, "node {v}");
        }
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn switching_planes_mid_flight_panics() {
        let g = path(30);
        let mut inputs = vec![0u64; 30];
        inputs[0] = 9;
        let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
        sim.state_mut(NodeId(0)).dirty = true;
        sim.wake(NodeId(0));
        let a = sim.run_sharded(4, 1, 3);
        assert!(!a.completed);
        // Undelivered messages live in the 4-shard plane; the flat
        // executor must refuse.
        let _ = sim.run(1, 10_000);
    }

    /// The lifetime work counters are exact: node-rounds and messages match
    /// the run's [`RepairStats`], the local/boundary split sums to the
    /// message total, and the wake-based scheduler reports zero halted
    /// scans on either plane.
    #[test]
    fn exec_perf_counters_are_exact_and_plane_attributed() {
        let g = path(16);
        let mut inputs = vec![0u64; 16];
        inputs[0] = 9;
        let mut flat: ChurnSim<MaxHold> = ChurnSim::new(g.clone(), &inputs);
        flat.state_mut(NodeId(0)).dirty = true;
        flat.wake(NodeId(0));
        let a = flat.run(1, 10_000);
        let pf = flat.exec_perf();
        assert_eq!(pf.node_rounds, a.node_steps);
        assert_eq!(pf.local_messages, a.messages);
        assert_eq!(pf.boundary_messages, 0);
        assert_eq!(pf.halted_scans, 0);
        assert_eq!(pf.sparse_skips, (a.rounds as u64) * 16 - a.node_steps);
        assert!(pf.stamp_scans > 0);
        let mut sh: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
        sh.state_mut(NodeId(0)).dirty = true;
        sh.wake(NodeId(0));
        let b = sh.run_sharded(4, 2, 10_000);
        let ps = sh.exec_perf();
        assert_eq!(ps.node_rounds, b.node_steps);
        assert_eq!(ps.local_messages + ps.boundary_messages, b.messages);
        assert!(ps.boundary_messages > 0, "the flood crosses shard borders");
        assert_eq!(ps.halted_scans, 0);
        // Bit-identical trace ⇒ the same nodes were stepped ⇒ the same
        // inbox stamps were exposed, plane notwithstanding.
        assert_eq!(ps.stamp_scans, pf.stamp_scans);
    }

    /// Repeated repairs across an artificially-lowered stamp horizon: the
    /// round counter is renormalized mid-lifecycle (where the old code
    /// asserted), and every repair's stats and final state stay
    /// bit-identical to a twin sim whose counter never crosses it.
    #[test]
    fn lowered_horizon_renormalization_is_bit_identical() {
        let g = path(12);
        let mut wrap: ChurnSim<MaxHold> = ChurnSim::new(g.clone(), &[0u64; 12]);
        wrap.set_stamp_horizon(40);
        let mut ctl: ChurnSim<MaxHold> = ChurnSim::new(g, &[0u64; 12]);
        for rep in 1..=20u64 {
            let src = NodeId(((rep as usize * 5) % 12) as u32);
            for sim in [&mut wrap, &mut ctl] {
                sim.state_mut(src).best = rep * 10;
                sim.state_mut(src).dirty = true;
                sim.wake(src);
            }
            let a = wrap.run(1, 32);
            let b = ctl.run(1, 32);
            assert_eq!(a, b, "repair {rep}");
            assert!(a.completed, "repair {rep}");
            for v in 0..12 {
                assert_eq!(
                    wrap.states()[v].best,
                    ctl.states()[v].best,
                    "repair {rep} node {v}"
                );
            }
        }
        // The control's monotonic counter crossed the lowered horizon — the
        // exact point where the pre-fix assert fired — while the wrapping
        // sim was rebased back below it.
        assert!(ctl.round() >= 40, "control round {}", ctl.round());
        assert!(wrap.round() < 40, "wrap round {}", wrap.round());
    }

    /// Same lifecycle on the sharded plane: the cached shard arenas persist
    /// across runs, so renormalization must scrub them too or a stale stamp
    /// could collide with a reused round number.
    #[test]
    fn sharded_plane_survives_stamp_renormalization() {
        let g = path(16);
        let mut wrap: ChurnSim<MaxHold> = ChurnSim::new(g.clone(), &[0u64; 16]);
        wrap.set_stamp_horizon(48);
        let mut ctl: ChurnSim<MaxHold> = ChurnSim::new(g, &[0u64; 16]);
        for rep in 1..=12u64 {
            let src = NodeId(((rep as usize * 7) % 16) as u32);
            for sim in [&mut wrap, &mut ctl] {
                sim.state_mut(src).best = rep * 10;
                sim.state_mut(src).dirty = true;
                sim.wake(src);
            }
            let a = wrap.run_sharded(4, 2, 40);
            let b = ctl.run_sharded(4, 2, 40);
            assert_eq!(a, b, "repair {rep}");
            assert!(a.completed, "repair {rep}");
        }
        for v in 0..16 {
            assert_eq!(wrap.states()[v].best, ctl.states()[v].best, "node {v}");
        }
        assert!(ctl.round() >= 48, "control round {}", ctl.round());
        assert!(wrap.round() < 48, "wrap round {}", wrap.round());
    }

    /// Renormalization with messages in flight: a capped run leaves the
    /// flood's frontier undelivered, stamped with the break-point round;
    /// the rebase re-stamps it (parity preserved) so the resumed run
    /// delivers it exactly as a never-rebased twin does.
    #[test]
    fn renormalization_preserves_in_flight_messages() {
        for sharded in [false, true] {
            let run = |sim: &mut ChurnSim<MaxHold>, cap: u32| {
                if sharded {
                    sim.run_sharded(4, 1, cap)
                } else {
                    sim.run(1, cap)
                }
            };
            let g = path(30);
            let mut inputs = vec![0u64; 30];
            inputs[0] = 9;
            let mut wrap: ChurnSim<MaxHold> = ChurnSim::new(g.clone(), &inputs);
            let mut ctl: ChurnSim<MaxHold> = ChurnSim::new(g, &inputs);
            for sim in [&mut wrap, &mut ctl] {
                sim.state_mut(NodeId(0)).dirty = true;
                sim.wake(NodeId(0));
                let first = run(sim, 5);
                assert!(!first.completed, "sharded {sharded}");
            }
            // Only the resumed run crosses the horizon (5 + 48 >= 50), so
            // the rebase happens with the frontier message mid-flight.
            wrap.set_stamp_horizon(50);
            let a = run(&mut wrap, 48);
            let b = run(&mut ctl, 48);
            assert_eq!(a, b, "sharded {sharded}");
            assert!(a.completed, "sharded {sharded}");
            for v in 0..30 {
                assert_eq!(wrap.states()[v].best, 9, "sharded {sharded} node {v}");
            }
            // The rebase shows in the counter: wrap resumed from round 1,
            // the control from round 5, and both ran the same rounds.
            assert_eq!(wrap.round() + 4, ctl.round(), "sharded {sharded}");
        }
    }

    /// A single run whose round budget alone reaches the horizon cannot be
    /// saved by renormalization and must fail loudly, not wrap silently.
    #[test]
    #[should_panic(expected = "exceeds the stamp horizon")]
    fn round_budget_exceeding_horizon_panics() {
        let g = path(4);
        let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &[0u64; 4]);
        sim.set_stamp_horizon(16);
        let _ = sim.run(1, 1000);
    }

    #[test]
    fn switching_planes_between_completed_runs_is_fine() {
        let g = cycle(12);
        let mut sim: ChurnSim<MaxHold> = ChurnSim::new(g, &[0; 12]);
        sim.state_mut(NodeId(3)).best = 5;
        sim.state_mut(NodeId(3)).dirty = true;
        sim.wake(NodeId(3));
        assert!(sim.run(1, 10_000).completed);
        sim.state_mut(NodeId(7)).best = 9;
        sim.state_mut(NodeId(7)).dirty = true;
        sim.wake(NodeId(7));
        assert!(sim.run_sharded(3, 2, 10_000).completed);
        sim.state_mut(NodeId(1)).best = 11;
        sim.state_mut(NodeId(1)).dirty = true;
        sim.wake(NodeId(1));
        assert!(sim.run(2, 10_000).completed);
        for v in 0..12 {
            assert_eq!(sim.states()[v].best, 11, "node {v}");
        }
    }
}
