//! # td-local — a simulator for the LOCAL model of distributed computing
//!
//! The paper's algorithms are stated in the standard **LOCAL** model
//! \[Linial 1992; Peleg 2000\]: every node of a graph is a processor with a
//! unique identifier, computation proceeds in *synchronous rounds*, in each
//! round every node may send one (unbounded) message over each incident edge,
//! and messages sent in round `r` are received at the start of round `r + 1`.
//! The complexity measure is the number of rounds until every node has
//! halted with its local output.
//!
//! This crate is a faithful, deterministic simulator for that model:
//!
//! * [`Protocol`] — what a node runs: `init` (sees only its id, degree,
//!   neighbor ids and its problem-specific local input), `round` (reads the
//!   inbox, writes the outbox, decides whether to halt), `finish` (produces
//!   the local output).
//! * [`Simulator`] — executes a protocol on a [`td_graph::CsrGraph`] until
//!   all nodes halt (or a round cap is hit), counting rounds and messages.
//! * Two executors with **bit-identical** semantics: a sequential dense
//!   scan, and the **pinned-worker sharded engine** ([`shard`]): BFS-grown
//!   shards owned long-term by pinned worker threads, per-shard
//!   double-buffered arenas owned by their worker (see [`arena`] and
//!   [`disjoint`]), cross-worker traffic batched per (src, dst) shard pair
//!   through SPSC rings, and a round-stamped **epoch protocol** in place of
//!   any global barrier — a shard advances to round `r + 1` as soon as its
//!   *neighbors* have finished round `r`. Fully quiesced shards retire and
//!   skip all remaining rounds. `Executor::Parallel` is an alias for this
//!   engine with an automatic shard count. Round counts and outputs never
//!   depend on the executor; tests enforce this.
//! * A zero-allocation hot loop: the [`arena::MessageArena`] is allocated
//!   once per run, payloads are overwritten in place, and round delivery is
//!   a buffer-parity flip.
//! * A **churn plane** ([`churn`]): a persistent wake-based executor
//!   ([`churn::ChurnSim`]) where `Halt` means *quiesce until a message
//!   arrives*, so repair protocols restart from dirtied nodes only and
//!   untouched regions pay zero work — the executor substrate for the
//!   incremental repair engines in `td-orient`/`td-assign`.
//!
//! ## Example: flooding the maximum identifier
//!
//! ```
//! use td_local::{Protocol, NodeInit, RoundCtx, Inbox, Outbox, Status, Simulator};
//! use td_graph::gen::classic::path;
//!
//! struct FloodMax { best: u32, changed: bool }
//!
//! impl Protocol for FloodMax {
//!     type Input = ();
//!     type Message = u32;
//!     type Output = u32;
//!     fn init(node: NodeInit<'_, ()>) -> Self {
//!         FloodMax { best: node.id.0, changed: true }
//!     }
//!     fn round(
//!         &mut self,
//!         ctx: &RoundCtx,
//!         inbox: &Inbox<'_, u32>,
//!         outbox: &mut Outbox<'_, '_, u32>,
//!     ) -> Status {
//!         for (_, m) in inbox.iter() {
//!             if *m > self.best { self.best = *m; self.changed = true; }
//!         }
//!         if self.changed { outbox.broadcast(self.best); self.changed = false; }
//!         // This doc-example uses a fixed budget for simplicity.
//!         if ctx.round >= 8 { Status::Halt } else { Status::Continue }
//!     }
//!     fn finish(self) -> u32 { self.best }
//! }
//!
//! let g = path(6);
//! let outcome = Simulator::sequential().run::<FloodMax>(&g, &vec![(); 6]);
//! assert!(outcome.completed);
//! assert!(outcome.outputs.iter().all(|&b| b == 5));
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod churn;
pub mod classics;
pub mod disjoint;
pub mod metrics;
pub mod protocol;
pub mod shard;
pub mod sim;
mod spsc;

pub use churn::{
    ChurnError, ChurnEvent, ChurnSim, RepairMode, RepairStats, TraceRecorder, WakeSet,
};
pub use metrics::{ExecPerf, RoundStats, RunSummary, ShardExecStats, SimOutcome, Summarize};
pub use protocol::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Status};
pub use sim::{Executor, Simulator};
