//! Classic LOCAL-model protocols, reusable and extensively tested.
//!
//! These serve three purposes: (1) they validate the simulator against
//! algorithms with known round complexities, (2) they provide building
//! blocks for examples and tests elsewhere in the workspace, and (3) the
//! bipartite maximal-matching protocol is the standard O(Δ) algorithm
//! \[HKP98\] that the paper cites as the Θ(Δ) reference point for its own
//! lower bounds.

use crate::protocol::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Status};

/// BFS layering from a set of sources: every node outputs its hop distance
/// to the nearest source. Nodes announce every improvement; a node halts
/// once it has a distance and every neighbor has announced a distance that
/// cannot improve its own (`nbr + 1 >= mine`) — which holds exactly when
/// the wavefront has settled locally, so the protocol finishes in
/// (eccentricity + O(1)) rounds.
///
/// Contract: every connected component must contain a source (otherwise the
/// component never quiesces; the simulator's round cap applies).
pub struct BfsLayering {
    dist: u32,
    announced_dist: Option<u32>,
    nbr_dist: Vec<u32>,
}

impl Protocol for BfsLayering {
    type Input = bool; // is this node a source?
    type Message = u32;
    type Output = u32;

    fn init(node: NodeInit<'_, bool>) -> Self {
        BfsLayering {
            dist: if *node.input { 0 } else { u32::MAX },
            announced_dist: None,
            nbr_dist: vec![u32::MAX; node.degree()],
        }
    }

    fn round(
        &mut self,
        _ctx: &RoundCtx,
        inbox: &Inbox<'_, u32>,
        outbox: &mut Outbox<'_, '_, u32>,
    ) -> Status {
        if self.nbr_dist.is_empty() {
            return Status::Halt; // isolated node (a source or hopeless)
        }
        for (port, &d) in inbox.iter() {
            self.nbr_dist[port.idx()] = d;
            if d.saturating_add(1) < self.dist {
                self.dist = d + 1;
            }
        }
        if self.dist != u32::MAX && self.announced_dist != Some(self.dist) {
            outbox.broadcast(self.dist);
            self.announced_dist = Some(self.dist);
            return Status::Continue;
        }
        let settled = self.dist != u32::MAX
            && self
                .nbr_dist
                .iter()
                .all(|&d| d != u32::MAX && d.saturating_add(1) >= self.dist);
        if settled {
            Status::Halt
        } else {
            Status::Continue
        }
    }

    fn finish(self) -> u32 {
        self.dist
    }
}

/// The proposal-based bipartite maximal matching protocol \[HKP98-style\]:
/// left nodes propose to their lowest-id unmatched right neighbor; right
/// nodes accept the lowest-id proposal. Runs in O(Δ) rounds on bipartite
/// graphs. Outputs, per node, the id of its partner (or `u32::MAX`).
pub struct ProposalMatching {
    /// Side 0 = proposer (left), side 1 = acceptor (right).
    left: bool,
    matched_to: u32,
    /// Left: right neighbors that said "taken". Right: ports whose left
    /// neighbor said "done".
    dead: Vec<bool>,
    /// Proposal outstanding to this port (left side).
    pending: Option<usize>,
}

/// Message for [`ProposalMatching`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct MatchMsg {
    /// Left → right: proposal.
    pub propose: bool,
    /// Right → left: accepted (matched).
    pub accept: bool,
    /// Right → left: I am matched (to someone else); stop proposing.
    pub taken: bool,
    /// Left → right: I am finished (matched or exhausted); I will never
    /// propose again. Lets unmatched right nodes terminate.
    pub done: bool,
}

impl Protocol for ProposalMatching {
    type Input = bool; // true = left (proposer) side
    type Message = MatchMsg;
    type Output = u32;

    fn init(node: NodeInit<'_, bool>) -> Self {
        ProposalMatching {
            left: *node.input,
            matched_to: u32::MAX,
            dead: vec![false; node.degree()],
            pending: None,
        }
    }

    fn round(
        &mut self,
        _ctx: &RoundCtx,
        inbox: &Inbox<'_, MatchMsg>,
        outbox: &mut Outbox<'_, '_, MatchMsg>,
    ) -> Status {
        let deg = self.dead.len();
        if deg == 0 {
            return Status::Halt;
        }
        if self.left {
            let mut finished = false;
            for (port, msg) in inbox.iter() {
                let pi = port.idx();
                if msg.accept {
                    debug_assert_eq!(self.pending, Some(pi));
                    self.matched_to = pi as u32; // resolved to an id in finish()
                    finished = true;
                }
                if msg.taken {
                    self.dead[pi] = true;
                    if self.pending == Some(pi) {
                        self.pending = None;
                    }
                }
            }
            if !finished {
                if self.pending.is_some() {
                    return Status::Continue; // answer still in flight
                }
                // Propose to the first live right neighbor, if any.
                if let Some(i) = (0..deg).find(|&i| !self.dead[i]) {
                    outbox.send(
                        td_graph::Port::from(i),
                        MatchMsg {
                            propose: true,
                            ..MatchMsg::default()
                        },
                    );
                    self.pending = Some(i);
                    return Status::Continue;
                }
                finished = true; // every neighbor is taken
            }
            debug_assert!(finished);
            // Tell everyone we are done so unmatched right nodes can halt.
            outbox.broadcast(MatchMsg {
                done: true,
                ..MatchMsg::default()
            });
            Status::Halt
        } else {
            // Right side: accept the smallest proposer, reject the rest.
            let mut proposals: Vec<usize> = Vec::new();
            for (port, msg) in inbox.iter() {
                if msg.propose {
                    proposals.push(port.idx());
                }
                if msg.done {
                    self.dead[port.idx()] = true;
                }
            }
            if self.matched_to == u32::MAX {
                if let Some(&winner) = proposals.iter().min() {
                    self.matched_to = winner as u32;
                    outbox.send(
                        td_graph::Port::from(winner),
                        MatchMsg {
                            accept: true,
                            ..MatchMsg::default()
                        },
                    );
                    for &pi in proposals.iter().filter(|&&pi| pi != winner) {
                        outbox.send(
                            td_graph::Port::from(pi),
                            MatchMsg {
                                taken: true,
                                ..MatchMsg::default()
                            },
                        );
                    }
                    return Status::Continue;
                }
            } else {
                for &pi in &proposals {
                    outbox.send(
                        td_graph::Port::from(pi),
                        MatchMsg {
                            taken: true,
                            ..MatchMsg::default()
                        },
                    );
                }
            }
            // Halt once every left neighbor has finished.
            if self.dead.iter().all(|&d| d) {
                Status::Halt
            } else {
                Status::Continue
            }
        }
    }

    fn finish(self) -> u32 {
        self.matched_to
    }
}

/// Runs [`ProposalMatching`] on a bipartite graph and returns, per node,
/// the matched *node id* (or `u32::MAX`), plus the rounds used.
///
/// `left[v]` marks the proposer side. Right-side nodes that never receive
/// proposals halt via the round cap logic inside the protocol only when the
/// left side around them is exhausted; this helper runs with a cap of
/// `4Δ + 8` rounds and asserts completion.
pub fn run_proposal_matching(
    g: &td_graph::CsrGraph,
    left: &[bool],
    sim: &crate::Simulator,
) -> (Vec<u32>, u32) {
    let cap = (4 * g.max_degree() as u32) + 8;
    let sim = sim.with_max_rounds(cap);
    let outcome = sim.run::<ProposalMatching>(g, left);
    assert!(outcome.completed, "matching protocol hit the round cap");
    let mut result = vec![u32::MAX; g.num_nodes()];
    for v in g.nodes() {
        let port = outcome.outputs[v.idx()];
        if port != u32::MAX {
            result[v.idx()] = g.neighbors(v)[port as usize];
        }
    }
    // Consistency: matching must be symmetric.
    for v in 0..result.len() {
        let m = result[v];
        if m != u32::MAX {
            debug_assert_eq!(result[m as usize], v as u32, "asymmetric match");
        }
    }
    (result, outcome.rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use td_graph::gen::classic::{complete_bipartite, grid, path};
    use td_graph::gen::random::random_bipartite;
    use td_graph::NodeId;

    #[test]
    fn bfs_layering_matches_host_bfs() {
        let g = grid(5, 6);
        let mut sources = vec![false; 30];
        sources[0] = true;
        sources[17] = true;
        let out = Simulator::sequential().run::<BfsLayering>(&g, &sources);
        assert!(out.completed);
        // Host-side multi-source BFS.
        let d0 = td_graph::algo::bfs_distances(&g, NodeId(0));
        let d17 = td_graph::algo::bfs_distances(&g, NodeId(17));
        for v in 0..30 {
            assert_eq!(out.outputs[v], d0[v].min(d17[v]), "node {v}");
        }
    }

    #[test]
    fn bfs_rounds_bounded_by_diameter() {
        let g = path(40);
        let mut sources = vec![false; 40];
        sources[0] = true;
        let out = Simulator::sequential().run::<BfsLayering>(&g, &sources);
        assert!(out.completed);
        assert!(out.rounds <= 40 + 4);
        assert_eq!(out.outputs[39], 39);
    }

    #[test]
    fn matching_on_complete_bipartite() {
        let g = complete_bipartite(4, 4);
        let left: Vec<bool> = (0..8).map(|v| v < 4).collect();
        let (m, rounds) = run_proposal_matching(&g, &left, &Simulator::sequential());
        // Perfect matching on K_{4,4}.
        assert_eq!(m.iter().filter(|&&x| x != u32::MAX).count(), 8);
        assert!(rounds <= 4 * 4 + 8);
    }

    #[test]
    fn matching_is_maximal_on_random_bipartite() {
        let mut rng = SmallRng::seed_from_u64(404);
        for trial in 0..10 {
            let g = random_bipartite(25, 20, 1..=4, &mut rng);
            let left: Vec<bool> = (0..g.num_nodes()).map(|v| v < 25).collect();
            let (m, _) = run_proposal_matching(&g, &left, &Simulator::sequential());
            // Maximality: every edge has a matched endpoint.
            for (_, u, v) in g.edge_list() {
                assert!(
                    m[u.idx()] != u32::MAX || m[v.idx()] != u32::MAX,
                    "trial {trial}: edge {u}-{v} uncovered"
                );
            }
            // Validity: symmetric and along edges.
            for v in g.nodes() {
                let mv = m[v.idx()];
                if mv != u32::MAX {
                    assert!(g.has_edge(v, NodeId(mv)));
                    assert_eq!(m[mv as usize], v.0);
                }
            }
        }
    }

    #[test]
    fn matching_parallel_equivalent() {
        let mut rng = SmallRng::seed_from_u64(405);
        let g = random_bipartite(20, 15, 1..=3, &mut rng);
        let left: Vec<bool> = (0..g.num_nodes()).map(|v| v < 20).collect();
        let (a, ra) = run_proposal_matching(&g, &left, &Simulator::sequential());
        let (b, rb) = run_proposal_matching(&g, &left, &Simulator::parallel(3));
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
