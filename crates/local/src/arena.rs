//! The message plane: a double-buffered, stamp-validated **flat arena**.
//!
//! One arena slot exists per *directed* edge slot of the CSR graph (the slot
//! of `(receiver, port)`, i.e. one per `EdgeId` per direction), so a node's
//! inbox is a contiguous run of slots. The arena is allocated **once** per
//! simulation; after that warm-up the hot loop performs **zero message
//! allocations**: sending overwrites the slot's payload in place, and
//! "delivering" a round's messages is a logical **buffer swap** — a parity
//! flip selecting which of the two buffers is read and which is written,
//! moving no data.
//!
//! ## Layout
//!
//! Each slot is a bare `(stamp, payload)` pair — **no `Option`**. The
//! payload is always initialized (`M: Default` seeds the arena) and validity
//! is tracked *only* by the stamp: a slot's content counts as a message for
//! round `r` iff its stamp equals `r`. This removes the `Option`
//! discriminant write from the send path and the discriminant branch from
//! the receive path, keeps stamp and payload on the same cache line, and
//! avoids an O(m) clear every round — crucial when round counts reach Θ(Δ⁴)
//! on small graphs.
//!
//! ## Concurrency discipline
//!
//! The pinned-worker engine ([`crate::shard`]) gives every **worker** its
//! own set of per-shard arenas, built inside the worker's thread and owned
//! by it for the whole run: a shard's arena is only ever written by its
//! owning worker (local sends and same-worker cross-shard sends write the
//! sibling arena directly; cross-worker traffic arrives as batches over
//! the SPSC boundary rings and is written into the arena by the consuming
//! worker itself). The structural one-writer-per-slot guarantee spelled
//! out in [`crate::disjoint`] still holds within a round — the slot of
//! `(receiver, port)` is written by exactly one node — but cross-thread
//! ordering now comes from the epoch protocol's acquire/release progress
//! stamps rather than a global barrier. The slot array is a
//! [`DisjointSlots`], so the unsafe surface stays in one module.

use crate::disjoint::DisjointSlots;
use td_graph::CsrGraph;

/// Stamp value meaning "never written". Rounds are capped strictly below
/// `u32::MAX - 1` (the simulator asserts this), so no live stamp collides.
pub const STAMP_EMPTY: u32 = u32::MAX;

/// One message slot: the round the payload is addressed to, plus the payload
/// itself (always initialized; meaningful only when the stamp matches).
pub struct Slot<M> {
    pub(crate) stamp: u32,
    pub(crate) msg: M,
}

/// The double-buffered flat message arena of one simulation.
///
/// Allocated once (two buffers of `num_slots` slots each); reused across
/// every round. `bufs[round % 2]` is the buffer *read* in `round` (written
/// during `round - 1`).
///
/// ```
/// use td_local::arena::MessageArena;
/// use td_graph::gen::classic::path;
///
/// let g = path(4); // 3 edges -> 6 directed slots, one per (receiver, port)
/// let arena: MessageArena<u64> = MessageArena::for_graph(&g);
/// assert_eq!(arena.num_slots(), 6);
/// // Advancing the round is the whole delivery step: `epoch` hands out the
/// // read view of the previous round's writes and the write view of the
/// // next round's — a parity flip, no data moves.
/// let (_reader, _writer) = arena.epoch(0);
/// ```
pub struct MessageArena<M> {
    bufs: [DisjointSlots<Slot<M>>; 2],
}

impl<M: Default + Send> MessageArena<M> {
    /// An arena with `slots` directed-edge slots per buffer.
    pub fn with_slots(slots: usize) -> Self {
        let buf = || {
            DisjointSlots::new_with(slots, |_| Slot {
                stamp: STAMP_EMPTY,
                msg: M::default(),
            })
        };
        MessageArena {
            bufs: [buf(), buf()],
        }
    }

    /// An arena sized for `graph` (one slot per directed edge slot).
    pub fn for_graph(graph: &CsrGraph) -> Self {
        Self::with_slots(graph.num_slots())
    }

    /// Number of slots per buffer.
    pub fn num_slots(&self) -> usize {
        self.bufs[0].len()
    }

    /// Rebases the arena's stamps so a long-lived simulation can reset its
    /// monotonic round counter without losing in-flight messages.
    ///
    /// Messages addressed to round `live_round` (stamped `live_round`, in
    /// the buffer read at that round) are re-stamped to `new_round`; every
    /// other slot — necessarily stale — is cleared to [`STAMP_EMPTY`]. The
    /// caller then continues running from `new_round`, which must have the
    /// same parity as `live_round` so the preserved messages stay in the
    /// buffer the next epoch reads.
    ///
    /// This is the wraparound escape hatch for persistent executors (the
    /// churn plane's round counter is monotonic across repairs, so a daemon
    /// that never rebuilds its arena would eventually collide with the
    /// reserved [`STAMP_EMPTY`] stamp): an O(slots) scrub, amortized over
    /// the billions of rounds between renormalizations.
    pub fn renormalize(&mut self, live_round: u32, new_round: u32) {
        assert_eq!(
            live_round % 2,
            new_round % 2,
            "renormalization must preserve buffer parity"
        );
        let live_buf = (live_round % 2) as usize;
        for (b, buf) in self.bufs.iter_mut().enumerate() {
            for slot in buf.as_mut_slice() {
                slot.stamp = if b == live_buf && slot.stamp == live_round {
                    new_round
                } else {
                    STAMP_EMPTY
                };
            }
        }
    }

    /// The read/write views of round `round`. This *is* the buffer swap:
    /// advancing the round flips which buffer is read and which is written —
    /// no data moves, no clear pass runs.
    #[inline(always)]
    pub fn epoch(&self, round: u32) -> (ArenaReader<'_, M>, ArenaWriter<'_, M>) {
        (
            ArenaReader {
                slots: &self.bufs[(round % 2) as usize],
                stamp: round,
            },
            ArenaWriter {
                slots: &self.bufs[((round + 1) % 2) as usize],
                stamp: round + 1,
            },
        )
    }
}

/// Read view of the buffer delivered in one round.
pub struct ArenaReader<'a, M> {
    slots: &'a DisjointSlots<Slot<M>>,
    /// Messages are valid iff their slot stamp equals this round.
    stamp: u32,
}

/// Write view of the buffer being filled for the next round.
pub struct ArenaWriter<'a, M> {
    slots: &'a DisjointSlots<Slot<M>>,
    /// Stamp published with every write: the round the message arrives in.
    stamp: u32,
}

// The views are plain (ref, u32) regardless of `M`, so implement Copy by
// hand instead of deriving (derive would demand `M: Copy`).
impl<M> Clone for ArenaReader<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for ArenaReader<'_, M> {}
impl<M> Clone for ArenaWriter<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for ArenaWriter<'_, M> {}

impl<'a, M> ArenaReader<'a, M> {
    /// The message in `slot`, if one was sent for this round.
    ///
    /// # Safety
    /// No thread may be writing this buffer (the executor guarantees this:
    /// writes go to the other buffer, epochs are barrier-separated).
    #[inline(always)]
    pub(crate) unsafe fn get(&self, slot: usize) -> Option<&'a M> {
        let s = self.slots.read(slot);
        if s.stamp == self.stamp {
            Some(&s.msg)
        } else {
            None
        }
    }

    /// The contiguous slot run `[base, base + len)` — a node's inbox row.
    ///
    /// # Safety
    /// As for [`ArenaReader::get`].
    #[inline(always)]
    pub(crate) unsafe fn row(&self, base: usize, len: usize) -> &'a [Slot<M>] {
        self.slots.slice(base, len)
    }

    /// The round whose messages this view exposes.
    #[inline(always)]
    pub(crate) fn stamp(&self) -> u32 {
        self.stamp
    }
}

impl<M> ArenaWriter<'_, M> {
    /// Writes `msg` into `slot` in place and publishes its stamp.
    ///
    /// # Safety
    /// Within the current round, no other thread may access `slot` in this
    /// buffer. The simulator's one-writer-per-slot discipline (see
    /// [`crate::disjoint`]) provides exactly this.
    #[inline(always)]
    pub(crate) unsafe fn write(&self, slot: usize, msg: M) {
        self.slots.write(
            slot,
            Slot {
                stamp: self.stamp,
                msg,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_alternates_buffers() {
        let arena: MessageArena<u8> = MessageArena::with_slots(3);
        let (r0, w0) = arena.epoch(0);
        let (r1, w1) = arena.epoch(1);
        // What is written in round 0 is read in round 1, and vice versa.
        assert!(std::ptr::eq(w0.slots, r1.slots));
        assert!(std::ptr::eq(w1.slots, r0.slots));
        assert!(!std::ptr::eq(r0.slots, r1.slots));
    }

    #[test]
    fn stamp_gates_delivery() {
        let arena: MessageArena<u16> = MessageArena::with_slots(4);
        // Send in round 0 (stamped 1): visible in round 1, gone in round 3.
        let (_, w) = arena.epoch(0);
        unsafe { w.write(2, 99) };
        let (r, _) = arena.epoch(1);
        unsafe {
            assert_eq!(r.get(2), Some(&99));
            assert_eq!(r.get(1), None);
        }
        // Round 3 reads the same physical buffer, but the stamp is stale.
        let (r3, _) = arena.epoch(3);
        unsafe {
            assert_eq!(r3.get(2), None);
        }
    }

    #[test]
    fn overwrite_in_same_round_keeps_last() {
        let arena: MessageArena<u64> = MessageArena::with_slots(2);
        let (_, w) = arena.epoch(0);
        unsafe {
            w.write(0, 1);
            w.write(0, 2);
        }
        let (r, _) = arena.epoch(1);
        unsafe {
            assert_eq!(r.get(0), Some(&2));
        }
    }

    #[test]
    fn row_matches_get() {
        let arena: MessageArena<u8> = MessageArena::with_slots(5);
        let (_, w) = arena.epoch(6);
        unsafe {
            w.write(1, 10);
            w.write(3, 30);
        }
        let (r, _) = arena.epoch(7);
        let row = unsafe { r.row(0, 5) };
        let hits: Vec<(usize, u8)> = row
            .iter()
            .enumerate()
            .filter(|(_, s)| s.stamp == r.stamp())
            .map(|(i, s)| (i, s.msg))
            .collect();
        assert_eq!(hits, vec![(1, 10), (3, 30)]);
    }

    #[test]
    fn renormalize_preserves_in_flight_and_clears_stale() {
        let mut arena: MessageArena<u16> = MessageArena::with_slots(4);
        // A stale message from an old round…
        let (_, w) = arena.epoch(96);
        unsafe { w.write(0, 11) };
        // …and an in-flight one addressed to round 101 (written in 100).
        let (_, w) = arena.epoch(100);
        unsafe { w.write(2, 77) };
        // Rebase round 101 -> 1 (same parity).
        arena.renormalize(101, 1);
        let (r, _) = arena.epoch(1);
        unsafe {
            assert_eq!(r.get(2), Some(&77), "in-flight message survives");
            assert_eq!(r.get(0), None, "stale slot cleared");
        }
        // The stale slot must not resurface at its old stamp either.
        let (r97, _) = arena.epoch(97);
        unsafe { assert_eq!(r97.get(0), None) };
    }

    #[test]
    #[should_panic(expected = "parity")]
    fn renormalize_rejects_parity_flip() {
        let mut arena: MessageArena<u8> = MessageArena::with_slots(1);
        arena.renormalize(5, 0);
    }

    #[test]
    fn sized_for_graph() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let arena: MessageArena<u8> = MessageArena::for_graph(&g);
        assert_eq!(arena.num_slots(), 4);
    }
}

/// Property tests: the arena under random send/deliver/flip interleavings
/// must behave exactly like the naive `Vec<Option<Msg>>` mailbox design it
/// replaced — one cleared-every-round option per slot — even though the
/// arena never clears anything and tracks validity only through stamps.
#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random interleavings of sends and epoch flips: every read agrees
        /// with the `Vec<Option<M>>` model, so (a) a slot not written for
        /// the current round is *never* read (no stale stamps leak through
        /// the parity flip, even after idle rounds), and (b) same-round
        /// overwrites keep the last payload.
        #[test]
        fn matches_vec_option_model(
            seed in 0u64..1_000_000,
            slots in 1usize..24,
            rounds in 1u32..48,
            density in 0.0f64..1.0,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let arena: MessageArena<u64> = MessageArena::with_slots(slots);
            // Messages written during the previous round, i.e. what the
            // model delivers this round. The model clears every round; the
            // arena must match without ever clearing.
            let mut inflight: Vec<Option<u64>> = vec![None; slots];
            for r in 0..rounds {
                let (reader, writer) = arena.epoch(r);
                for (s, expect) in inflight.iter().enumerate() {
                    prop_assert_eq!(unsafe { reader.get(s) }.copied(), *expect,
                        "round {} slot {}", r, s);
                }
                // The row view must agree with per-slot gets.
                let row = unsafe { reader.row(0, slots) };
                for (s, slot) in row.iter().enumerate() {
                    let via_row = (slot.stamp == reader.stamp()).then_some(slot.msg);
                    prop_assert_eq!(via_row, inflight[s], "row round {} slot {}", r, s);
                }
                // Random sends for the next round; some rounds send nothing
                // at all (a pure flip), some slots twice (overwrite).
                let mut next: Vec<Option<u64>> = vec![None; slots];
                if rng.gen_bool(0.85) {
                    for (s, model) in next.iter_mut().enumerate() {
                        for _ in 0..2 {
                            if rng.gen_bool(density) {
                                let val: u64 = rng.gen();
                                unsafe { writer.write(s, val) };
                                *model = Some(val);
                            }
                        }
                    }
                }
                inflight = next;
            }
        }

        /// Double-buffer parity: writes of round `r` are invisible to round
        /// `r`'s reader (they land in the other buffer) and visible exactly
        /// once, in round `r + 1`.
        #[test]
        fn writes_never_visible_in_their_own_round(
            seed in 0u64..1_000_000,
            slots in 1usize..16,
            start in 0u32..64,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let arena: MessageArena<u32> = MessageArena::with_slots(slots);
            let slot = rng.gen_range(0..slots);
            let (reader, writer) = arena.epoch(start);
            let before = unsafe { reader.get(slot) }.copied();
            unsafe { writer.write(slot, 7) };
            // Same epoch, same reader: the write went to the other buffer.
            prop_assert_eq!(unsafe { reader.get(slot) }.copied(), before);
            let (r1, _) = arena.epoch(start + 1);
            prop_assert_eq!(unsafe { r1.get(slot) }.copied(), Some(7));
            // Two flips later the stamp is stale again.
            let (r3, _) = arena.epoch(start + 3);
            prop_assert_eq!(unsafe { r3.get(slot) }.copied(), None);
        }
    }
}
