//! The simulator driver: sequential and pinned-worker executors with
//! identical semantics.

use crate::arena::MessageArena;
use crate::metrics::{ExecPerf, RoundStats, SimOutcome};
use crate::protocol::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Status};
use td_graph::{CsrGraph, NodeId};

/// Which engine steps the nodes. All engines implement the *same*
/// synchronous semantics; outputs and round counts are identical (tests
/// enforce this). Parallelism and sharding affect wall-clock time only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Executor {
    /// Step nodes one by one on the calling thread (the dense reference
    /// scan the sparse engine is measured against).
    Sequential,
    /// Alias for the pinned-worker sharded engine with an automatic shard
    /// count: `threads` is clamped to the available hardware parallelism
    /// and the shard count is derived from the graph size (about four
    /// BFS-grown shards per worker, never finer than ~1k nodes per shard).
    /// The former strided executor — global barrier per round, every
    /// worker scanning its stride — is retired; see [`crate::shard`] for
    /// the replacement's epoch protocol.
    Parallel {
        /// Number of worker threads (>= 1; clamped to hardware threads).
        threads: usize,
    },
    /// Step nodes shard by shard on a locality-aware BFS-grown partition,
    /// with per-shard worker-owned message arenas, SPSC-batched boundary
    /// delivery and barrier-free epoch synchronization (see
    /// [`crate::shard`]). Fully quiesced shards retire and skip rounds
    /// entirely.
    Sharded {
        /// Number of shards (>= 1).
        shards: usize,
        /// Number of worker threads (>= 1; clamped to `shards`).
        threads: usize,
    },
}

/// Worker threads the host actually has; the pinned-worker engine never
/// spawns more (oversubscribed workers just preempt each other between the
/// epoch gates and make everything slower).
fn hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// Shard count for [`Executor::Parallel`]: about four BFS-grown shards per
/// worker so the epoch protocol can pipeline (a worker runs an interior
/// shard ahead while a foreign-owned neighbor lags), but never finer than
/// ~1k nodes per shard — tiny shards turn everything into boundary traffic.
fn auto_shards(n: usize, workers: usize) -> usize {
    if workers <= 1 || n <= 1 {
        return 1;
    }
    let cap = (n / 1024).max(workers);
    (workers * 4).min(cap).max(workers).min(n)
}

/// Configurable simulator for [`Protocol`]s. See the crate docs for an
/// end-to-end example.
#[derive(Clone, Copy, Debug)]
pub struct Simulator {
    executor: Executor,
    max_rounds: u32,
    trace: bool,
}

impl Simulator {
    /// A sequential simulator with a generous default round cap.
    pub fn sequential() -> Self {
        Simulator {
            executor: Executor::Sequential,
            max_rounds: 10_000_000,
            trace: false,
        }
    }

    /// A parallel simulator over `threads` workers: an alias for the
    /// pinned-worker sharded engine with an automatic shard count (see
    /// [`Executor::Parallel`]). Outputs are bit-identical to
    /// [`Simulator::sequential`] for every thread count.
    pub fn parallel(threads: usize) -> Self {
        assert!(threads >= 1);
        Simulator {
            executor: Executor::Parallel { threads },
            max_rounds: 10_000_000,
            trace: false,
        }
    }

    /// A sharded simulator: `shards` locality-aware shards (BFS-grown
    /// partition, per-shard arenas, batched boundary delivery, node-granular
    /// sparse scheduling — see [`crate::shard`]) stepped by `threads`
    /// workers. Outputs are bit-identical to [`Simulator::sequential`] for
    /// every shard and thread count.
    ///
    /// ```
    /// use td_local::{classics::BfsLayering, Simulator};
    /// use td_graph::gen::classic::cycle;
    ///
    /// let g = cycle(24);
    /// let mut sources = vec![false; 24];
    /// sources[0] = true;
    /// let seq = Simulator::sequential().run::<BfsLayering>(&g, &sources);
    /// let sh = Simulator::sharded(4, 2).run::<BfsLayering>(&g, &sources);
    /// // Sharding is a pure performance knob: same outputs, rounds, messages.
    /// assert_eq!(sh.outputs, seq.outputs);
    /// assert_eq!((sh.rounds, sh.messages), (seq.rounds, seq.messages));
    /// // The sparse scheduler never scans a halted resident; the dense
    /// // sequential baseline scanned exactly the node-rounds it skipped.
    /// assert_eq!(sh.perf.halted_scans, 0);
    /// assert_eq!(sh.perf.sparse_skips, seq.perf.halted_scans);
    /// ```
    pub fn sharded(shards: usize, threads: usize) -> Self {
        assert!(shards >= 1 && threads >= 1);
        Simulator {
            executor: Executor::Sharded { shards, threads },
            max_rounds: 10_000_000,
            trace: false,
        }
    }

    /// Caps the number of rounds; the outcome reports `completed = false` if
    /// the cap is hit.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables per-round statistics collection.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Runs `P` on `graph` with per-node `inputs` until all nodes halt or the
    /// round cap is reached.
    ///
    /// # Panics
    /// If `inputs.len() != graph.num_nodes()`.
    pub fn run<P: Protocol>(&self, graph: &CsrGraph, inputs: &[P::Input]) -> SimOutcome<P::Output> {
        assert_eq!(
            inputs.len(),
            graph.num_nodes(),
            "one input per node required"
        );
        let states: Vec<P> = graph
            .nodes()
            .map(|v| {
                P::init(NodeInit {
                    id: v,
                    neighbor_ids: graph.neighbors(v),
                    input: &inputs[v.idx()],
                })
            })
            .collect();
        match self.executor {
            Executor::Sequential => self.run_sequential(graph, states),
            Executor::Parallel { threads } => {
                let workers = threads.min(hw_threads()).max(1);
                let shards = auto_shards(graph.num_nodes(), workers);
                crate::shard::run_sharded(
                    graph,
                    states,
                    shards,
                    workers,
                    self.max_rounds,
                    self.trace,
                )
            }
            Executor::Sharded { shards, threads } => crate::shard::run_sharded(
                graph,
                states,
                shards,
                threads,
                self.max_rounds,
                self.trace,
            ),
        }
    }

    fn run_sequential<P: Protocol>(
        &self,
        graph: &CsrGraph,
        mut states: Vec<P>,
    ) -> SimOutcome<P::Output> {
        let n = graph.num_nodes();
        // The arena is the only message storage: allocated once here, then
        // reused for every round (writes happen in place, delivery is the
        // epoch parity flip).
        let arena: MessageArena<P::Message> = MessageArena::for_graph(graph);
        let mut halted = vec![false; n];
        let mut remaining = n;
        let mut round: u32 = 0;
        let mut messages: u64 = 0;
        let mut perf = ExecPerf::default();
        let mut trace = self.trace.then(Vec::new);
        debug_assert!(self.max_rounds < u32::MAX - 1, "stamps reserve u32::MAX");

        while remaining > 0 && round < self.max_rounds {
            let (reader, writer) = arena.epoch(round);
            let ctx = RoundCtx { round };
            let active = remaining;
            // The reference executor is a dense scan on purpose (it is the
            // baseline the sparse sharded scheduler is measured against):
            // every resident is visited, halted ones are skipped by flag.
            perf.halted_scans += (n - active) as u64;
            perf.node_rounds += active as u64;
            let mut round_msgs: u64 = 0;
            for v in 0..n {
                if halted[v] {
                    continue;
                }
                let node = NodeId::from(v);
                let inbox = Inbox {
                    reader,
                    base: graph.node_offset(node),
                    degree: graph.degree(node),
                };
                let mut outbox = Outbox {
                    writer,
                    graph,
                    node,
                    sent: 0,
                    boundary_sent: 0,
                    wake: None,
                    route: None,
                };
                let status = states[v].round(&ctx, &inbox, &mut outbox);
                round_msgs += outbox.sent;
                perf.stamp_scans += graph.degree(node) as u64;
                if status == Status::Halt {
                    halted[v] = true;
                    remaining -= 1;
                }
            }
            messages += round_msgs;
            if let Some(t) = trace.as_mut() {
                t.push(RoundStats {
                    round,
                    active_nodes: active,
                    messages: round_msgs,
                });
            }
            round += 1;
        }

        perf.local_messages = messages;
        SimOutcome {
            outputs: states.into_iter().map(P::finish).collect(),
            rounds: round,
            messages,
            completed: remaining == 0,
            trace,
            sharding: None,
            perf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Inbox, NodeInit, Outbox, RoundCtx};
    use td_graph::gen::classic::{cycle, path, star};
    use td_graph::Port;

    /// Each node learns its BFS distance from node 0 (which knows it is the
    /// source from its input) and halts one round after its distance settles.
    struct BfsDist {
        dist: u32,
        announced: bool,
    }

    impl Protocol for BfsDist {
        type Input = bool; // am I the source?
        type Message = u32;
        type Output = u32;

        fn init(node: NodeInit<'_, bool>) -> Self {
            BfsDist {
                dist: if *node.input { 0 } else { u32::MAX },
                announced: false,
            }
        }

        fn round(
            &mut self,
            _ctx: &RoundCtx,
            inbox: &Inbox<'_, u32>,
            outbox: &mut Outbox<'_, '_, u32>,
        ) -> Status {
            for (_, &d) in inbox.iter() {
                if d + 1 < self.dist {
                    self.dist = d + 1;
                    self.announced = false;
                }
            }
            if self.dist != u32::MAX && !self.announced {
                outbox.broadcast(self.dist);
                self.announced = true;
                return Status::Continue;
            }
            if self.announced {
                Status::Halt
            } else {
                Status::Continue
            }
        }

        fn finish(self) -> u32 {
            self.dist
        }
    }

    fn bfs_inputs(n: usize) -> Vec<bool> {
        let mut v = vec![false; n];
        v[0] = true;
        v
    }

    #[test]
    fn bfs_on_path_sequential() {
        let g = path(6);
        let out = Simulator::sequential().run::<BfsDist>(&g, &bfs_inputs(6));
        assert!(out.completed);
        assert_eq!(out.outputs, vec![0, 1, 2, 3, 4, 5]);
        // Node 5 learns its distance in round 5 and halts in round 6;
        // simulator runs rounds 0..=6 → 7 rounds.
        assert_eq!(out.rounds, 7);
    }

    #[test]
    fn bfs_parallel_matches_sequential() {
        let g = cycle(31);
        let seq = Simulator::sequential().run::<BfsDist>(&g, &bfs_inputs(31));
        for threads in [1, 2, 3, 8] {
            let par = Simulator::parallel(threads).run::<BfsDist>(&g, &bfs_inputs(31));
            assert_eq!(par.outputs, seq.outputs, "threads = {threads}");
            assert_eq!(par.rounds, seq.rounds, "threads = {threads}");
            assert_eq!(par.messages, seq.messages, "threads = {threads}");
            assert!(par.completed);
        }
    }

    #[test]
    fn round_cap_reported() {
        let g = path(64);
        let out = Simulator::sequential()
            .with_max_rounds(3)
            .run::<BfsDist>(&g, &bfs_inputs(64));
        assert!(!out.completed);
        assert_eq!(out.rounds, 3);
    }

    #[test]
    fn trace_records_rounds() {
        let g = star(4);
        let out = Simulator::sequential()
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(5));
        let trace = out.trace.unwrap();
        assert_eq!(trace.len() as u32, out.rounds);
        assert_eq!(trace[0].active_nodes, 5);
        assert_eq!(trace[0].round, 0);
        let traced_msgs: u64 = trace.iter().map(|r| r.messages).sum();
        assert_eq!(traced_msgs, out.messages);
    }

    #[test]
    fn parallel_trace_matches_sequential() {
        let g = cycle(17);
        let seq = Simulator::sequential()
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(17));
        let par = Simulator::parallel(4)
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(17));
        assert_eq!(seq.trace, par.trace);
    }

    #[test]
    fn empty_graph() {
        let g = td_graph::CsrGraph::from_edges(0, &[]).unwrap();
        let out = Simulator::parallel(4).run::<BfsDist>(&g, &[]);
        assert!(out.completed);
        assert_eq!(out.rounds, 0);
        let out = Simulator::sequential().run::<BfsDist>(&g, &[]);
        assert!(out.completed);
        assert_eq!(out.rounds, 0);
    }

    /// Message delivered exactly one round later, port-addressed.
    struct PortEcho {
        degree: usize,
        received: Vec<Option<u32>>,
    }

    impl Protocol for PortEcho {
        type Input = ();
        type Message = u32;
        type Output = Vec<Option<u32>>;

        fn init(node: NodeInit<'_, ()>) -> Self {
            PortEcho {
                degree: node.degree(),
                received: vec![None; node.degree()],
            }
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            inbox: &Inbox<'_, u32>,
            outbox: &mut Outbox<'_, '_, u32>,
        ) -> Status {
            match ctx.round {
                0 => {
                    // Send my own port number on each port.
                    for p in 0..self.degree {
                        outbox.send(Port::from(p), p as u32);
                    }
                    assert!(inbox.is_empty(), "round 0 inbox must be empty");
                    Status::Continue
                }
                1 => {
                    for (p, &m) in inbox.iter() {
                        self.received[p.idx()] = Some(m);
                    }
                    Status::Halt
                }
                _ => unreachable!(),
            }
        }

        fn finish(self) -> Vec<Option<u32>> {
            self.received
        }
    }

    #[test]
    fn port_addressing_and_mirror_delivery() {
        let g = path(3); // v0 -p0- v1, v1 has ports to v0 (p0) and v2 (p1)
        let out = Simulator::sequential().run::<PortEcho>(&g, &[(); 3]);
        assert!(out.completed);
        assert_eq!(out.rounds, 2);
        // v0 hears v1's port-0 message (v1's port 0 leads to v0).
        assert_eq!(out.outputs[0], vec![Some(0)]);
        // v1 hears v0's port-0 message on its port 0 and v2's port-0 on its port 1.
        assert_eq!(out.outputs[1], vec![Some(0), Some(0)]);
        assert_eq!(out.outputs[2], vec![Some(1)]);
        assert_eq!(out.messages, 4);
    }

    /// A protocol where some nodes halt early; late messages to halted nodes
    /// are dropped silently and do not crash.
    struct HaltEarly {
        id: u32,
    }

    impl Protocol for HaltEarly {
        type Input = ();
        type Message = u32;
        type Output = u32;

        fn init(node: NodeInit<'_, ()>) -> Self {
            HaltEarly { id: node.id.0 }
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            _inbox: &Inbox<'_, u32>,
            outbox: &mut Outbox<'_, '_, u32>,
        ) -> Status {
            outbox.broadcast(self.id);
            if self.id.is_multiple_of(2) || ctx.round >= 4 {
                Status::Halt
            } else {
                Status::Continue
            }
        }

        fn finish(self) -> u32 {
            self.id
        }
    }

    #[test]
    fn staggered_halting() {
        let g = cycle(10);
        let out = Simulator::sequential().run::<HaltEarly>(&g, &[(); 10]);
        assert!(out.completed);
        assert_eq!(out.rounds, 5);
        // Even nodes sent 1 round * 2 ports, odd nodes 5 rounds * 2 ports.
        assert_eq!(out.messages, 5 * 2 + 5 * 5 * 2);
        let par = Simulator::parallel(3).run::<HaltEarly>(&g, &[(); 10]);
        assert_eq!(par.rounds, out.rounds);
        assert_eq!(par.messages, out.messages);
    }

    #[test]
    fn sharded_matches_sequential_on_every_grid_point() {
        let g = cycle(31);
        let seq = Simulator::sequential().run::<BfsDist>(&g, &bfs_inputs(31));
        for shards in [1, 2, 4, 8] {
            for threads in [1, 2, 4] {
                let sh = Simulator::sharded(shards, threads).run::<BfsDist>(&g, &bfs_inputs(31));
                assert_eq!(sh.outputs, seq.outputs, "shards {shards} threads {threads}");
                assert_eq!(sh.rounds, seq.rounds, "shards {shards} threads {threads}");
                assert_eq!(
                    sh.messages, seq.messages,
                    "shards {shards} threads {threads}"
                );
                assert!(sh.completed);
                let stats = sh.sharding.expect("sharded run reports stats");
                assert_eq!(stats.shards, shards);
            }
        }
    }

    #[test]
    fn sharded_trace_matches_sequential() {
        let g = path(23);
        let seq = Simulator::sequential()
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(23));
        let sh = Simulator::sharded(4, 2)
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(23));
        assert_eq!(seq.trace, sh.trace);
    }

    #[test]
    fn sharded_port_addressing_and_cross_shard_batches() {
        // Force every edge across shards (path + many shards) so the
        // batched boundary path carries all traffic.
        let g = path(3);
        let out = Simulator::sharded(3, 2).run::<PortEcho>(&g, &[(); 3]);
        assert!(out.completed);
        assert_eq!(out.rounds, 2);
        assert_eq!(out.outputs[0], vec![Some(0)]);
        assert_eq!(out.outputs[1], vec![Some(0), Some(0)]);
        assert_eq!(out.outputs[2], vec![Some(1)]);
        assert_eq!(out.messages, 4);
        assert!(out.sharding.unwrap().cut_edges > 0);
    }

    /// Half the cycle halts immediately, the other half keeps gossiping:
    /// the quiesced half's shards must skip rounds.
    struct HalfQuiesce {
        long: bool,
    }

    impl Protocol for HalfQuiesce {
        type Input = bool; // run long?
        type Message = u8;
        type Output = ();

        fn init(node: NodeInit<'_, bool>) -> Self {
            HalfQuiesce { long: *node.input }
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            _inbox: &Inbox<'_, u8>,
            _outbox: &mut Outbox<'_, '_, u8>,
        ) -> Status {
            if !self.long || ctx.round >= 20 {
                Status::Halt
            } else {
                Status::Continue
            }
        }

        fn finish(self) {}
    }

    #[test]
    fn quiesced_shards_skip_rounds() {
        // Path of 32: the first 8 nodes run 21 rounds, the rest halt in
        // round 0. With 4 BFS shards (blocks of 8), shards 1-3 are
        // quiesced from round 1 on.
        let g = path(32);
        let inputs: Vec<bool> = (0..32).map(|v| v < 8).collect();
        let out = Simulator::sharded(4, 2).run::<HalfQuiesce>(&g, &inputs);
        assert!(out.completed);
        assert_eq!(out.rounds, 21);
        let stats = out.sharding.unwrap();
        // Shards 1-3 skip rounds 1..=20 -> 60 skipped shard-rounds.
        assert_eq!(stats.shard_rounds_skipped, 60);
        assert_eq!(stats.shard_rounds_stepped, 21 + 3);
        let seq = Simulator::sequential().run::<HalfQuiesce>(&g, &inputs);
        assert_eq!(seq.rounds, out.rounds);
    }

    /// The perf-counter contract behind the sparse scheduler: for the same
    /// run, the dense executors' `halted_scans` (halted residents iterated
    /// past) equals the sharded executor's `sparse_skips` (halted
    /// node-rounds never visited), node-rounds and message routing always
    /// reconcile, and the sparse executor never scans a halted node.
    #[test]
    fn sparse_scheduler_counters_mirror_dense_scan() {
        let g = path(32);
        let inputs: Vec<bool> = (0..32).map(|v| v < 8).collect();
        let seq = Simulator::sequential().run::<HalfQuiesce>(&g, &inputs);
        assert!(seq.perf.halted_scans > 0);
        assert_eq!(seq.perf.local_messages, seq.messages);
        assert_eq!(seq.perf.boundary_messages, 0);
        // The parallel alias runs the sparse pinned-worker engine: it never
        // scans a halted node; the rounds it skipped are exactly what the
        // dense baseline scanned past.
        let par = Simulator::parallel(3).run::<HalfQuiesce>(&g, &inputs);
        assert_eq!(par.perf.halted_scans, 0);
        assert_eq!(par.perf.sparse_skips, seq.perf.halted_scans);
        assert_eq!(par.perf.node_rounds, seq.perf.node_rounds);
        assert_eq!(par.perf.stamp_scans, seq.perf.stamp_scans);
        assert_eq!(
            par.perf.local_messages + par.perf.boundary_messages,
            par.messages
        );
        for (shards, threads) in [(1usize, 1usize), (4, 2), (8, 3)] {
            let sh = Simulator::sharded(shards, threads).run::<HalfQuiesce>(&g, &inputs);
            assert_eq!(sh.rounds, seq.rounds, "{shards}x{threads}");
            assert_eq!(sh.perf.halted_scans, 0, "{shards}x{threads}");
            assert_eq!(
                sh.perf.sparse_skips, seq.perf.halted_scans,
                "{shards}x{threads}"
            );
            assert_eq!(
                sh.perf.node_rounds, seq.perf.node_rounds,
                "{shards}x{threads}"
            );
            assert_eq!(
                sh.perf.local_messages + sh.perf.boundary_messages,
                sh.messages,
                "{shards}x{threads}"
            );
            assert_eq!(sh.perf.stamp_scans, seq.perf.stamp_scans);
        }
        // Cross-shard traffic shows up as boundary messages: on a path cut
        // into singleton-ish shards, some sends must cross.
        let g = path(4);
        let out = Simulator::sharded(4, 2).run::<PortEcho>(&g, &[(); 4]);
        assert!(out.perf.boundary_messages > 0);
        assert_eq!(
            out.perf.local_messages + out.perf.boundary_messages,
            out.messages
        );
    }

    /// Satellite contract: `ExecPerf` aggregation is deterministic across
    /// workers. Per-worker accumulators are merged once at join, and the
    /// scheduling-independent counters (`node_rounds`, `sparse_skips`,
    /// `boundary_messages`, `stamp_scans`, the message split) must be equal
    /// between sequential and parallel runs and across repeated runs of the
    /// same grid point — no matter how the OS interleaved the workers.
    #[test]
    fn perf_counters_aggregate_deterministically_across_workers() {
        let g = cycle(64);
        let inputs = bfs_inputs(64);
        let seq = Simulator::sequential().run::<BfsDist>(&g, &inputs);
        for (label, sim) in [
            ("parallel(4)", Simulator::parallel(4)),
            ("sharded(6,3)", Simulator::sharded(6, 3)),
            ("sharded(8,4)", Simulator::sharded(8, 4)),
        ] {
            let a = sim.run::<BfsDist>(&g, &inputs);
            assert_eq!(a.perf.node_rounds, seq.perf.node_rounds, "{label}");
            assert_eq!(a.perf.sparse_skips, seq.perf.halted_scans, "{label}");
            assert_eq!(a.perf.stamp_scans, seq.perf.stamp_scans, "{label}");
            assert_eq!(
                a.perf.local_messages + a.perf.boundary_messages,
                seq.messages,
                "{label}"
            );
            // Re-running the same grid point reproduces every counter bit
            // for bit, including the boundary/local split.
            let b = sim.run::<BfsDist>(&g, &inputs);
            assert_eq!(a.perf, b.perf, "{label}");
            assert_eq!(a.sharding, b.sharding, "{label}");
        }
    }

    #[test]
    fn sharded_empty_graph_and_more_shards_than_nodes() {
        let g = td_graph::CsrGraph::from_edges(0, &[]).unwrap();
        let out = Simulator::sharded(4, 4).run::<BfsDist>(&g, &[]);
        assert!(out.completed);
        assert_eq!(out.rounds, 0);
        let g = path(3);
        let out = Simulator::sharded(8, 8).run::<BfsDist>(&g, &bfs_inputs(3));
        let seq = Simulator::sequential().run::<BfsDist>(&g, &bfs_inputs(3));
        assert_eq!(out.outputs, seq.outputs);
        assert_eq!(out.rounds, seq.rounds);
        assert_eq!(out.messages, seq.messages);
    }

    #[test]
    fn sharded_round_cap_reported() {
        let g = path(64);
        let out = Simulator::sharded(4, 2)
            .with_max_rounds(3)
            .run::<BfsDist>(&g, &bfs_inputs(64));
        assert!(!out.completed);
        assert_eq!(out.rounds, 3);
    }

    #[test]
    fn zero_round_cap_is_executor_independent() {
        let g = path(8);
        let seq = Simulator::sequential()
            .with_max_rounds(0)
            .run::<BfsDist>(&g, &bfs_inputs(8));
        for sim in [
            Simulator::parallel(3).with_max_rounds(0),
            Simulator::sharded(4, 2).with_max_rounds(0),
        ] {
            let out = sim.run::<BfsDist>(&g, &bfs_inputs(8));
            assert_eq!(out.rounds, seq.rounds);
            assert_eq!(out.rounds, 0);
            assert_eq!(out.messages, 0);
            assert!(!out.completed);
            assert_eq!(out.outputs, seq.outputs);
        }
    }
}
