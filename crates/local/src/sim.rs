//! The simulator driver: sequential and multi-threaded executors with
//! identical semantics.

use crate::arena::MessageArena;
use crate::metrics::{ExecPerf, RoundStats, SimOutcome};
use crate::protocol::{Inbox, NodeInit, Outbox, Protocol, RoundCtx, Status};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use td_graph::{CsrGraph, NodeId};

/// Which engine steps the nodes. All engines implement the *same*
/// synchronous semantics; outputs and round counts are identical (tests
/// enforce this). Parallelism and sharding affect wall-clock time only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Executor {
    /// Step nodes one by one on the calling thread.
    Sequential,
    /// Step nodes on `threads` worker threads (strided node partition).
    Parallel {
        /// Number of worker threads (>= 1).
        threads: usize,
    },
    /// Step nodes shard by shard on a locality-aware BFS-grown partition,
    /// with per-shard message arenas and batched boundary delivery (see
    /// [`crate::shard`]). Fully quiesced shards skip rounds entirely.
    Sharded {
        /// Number of shards (>= 1).
        shards: usize,
        /// Number of worker threads (>= 1; clamped to `shards`).
        threads: usize,
    },
}

/// Configurable simulator for [`Protocol`]s. See the crate docs for an
/// end-to-end example.
#[derive(Clone, Copy, Debug)]
pub struct Simulator {
    executor: Executor,
    max_rounds: u32,
    trace: bool,
}

impl Simulator {
    /// A sequential simulator with a generous default round cap.
    pub fn sequential() -> Self {
        Simulator {
            executor: Executor::Sequential,
            max_rounds: 10_000_000,
            trace: false,
        }
    }

    /// A parallel simulator over `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        assert!(threads >= 1);
        Simulator {
            executor: Executor::Parallel { threads },
            max_rounds: 10_000_000,
            trace: false,
        }
    }

    /// A sharded simulator: `shards` locality-aware shards (BFS-grown
    /// partition, per-shard arenas, batched boundary delivery, node-granular
    /// sparse scheduling — see [`crate::shard`]) stepped by `threads`
    /// workers. Outputs are bit-identical to [`Simulator::sequential`] for
    /// every shard and thread count.
    ///
    /// ```
    /// use td_local::{classics::BfsLayering, Simulator};
    /// use td_graph::gen::classic::cycle;
    ///
    /// let g = cycle(24);
    /// let mut sources = vec![false; 24];
    /// sources[0] = true;
    /// let seq = Simulator::sequential().run::<BfsLayering>(&g, &sources);
    /// let sh = Simulator::sharded(4, 2).run::<BfsLayering>(&g, &sources);
    /// // Sharding is a pure performance knob: same outputs, rounds, messages.
    /// assert_eq!(sh.outputs, seq.outputs);
    /// assert_eq!((sh.rounds, sh.messages), (seq.rounds, seq.messages));
    /// // The sparse scheduler never scans a halted resident; the dense
    /// // sequential baseline scanned exactly the node-rounds it skipped.
    /// assert_eq!(sh.perf.halted_scans, 0);
    /// assert_eq!(sh.perf.sparse_skips, seq.perf.halted_scans);
    /// ```
    pub fn sharded(shards: usize, threads: usize) -> Self {
        assert!(shards >= 1 && threads >= 1);
        Simulator {
            executor: Executor::Sharded { shards, threads },
            max_rounds: 10_000_000,
            trace: false,
        }
    }

    /// Caps the number of rounds; the outcome reports `completed = false` if
    /// the cap is hit.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables per-round statistics collection.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Runs `P` on `graph` with per-node `inputs` until all nodes halt or the
    /// round cap is reached.
    ///
    /// # Panics
    /// If `inputs.len() != graph.num_nodes()`.
    pub fn run<P: Protocol>(&self, graph: &CsrGraph, inputs: &[P::Input]) -> SimOutcome<P::Output> {
        assert_eq!(
            inputs.len(),
            graph.num_nodes(),
            "one input per node required"
        );
        let states: Vec<P> = graph
            .nodes()
            .map(|v| {
                P::init(NodeInit {
                    id: v,
                    neighbor_ids: graph.neighbors(v),
                    input: &inputs[v.idx()],
                })
            })
            .collect();
        match self.executor {
            Executor::Sequential => self.run_sequential(graph, states),
            Executor::Parallel { threads } => self.run_parallel(graph, states, threads),
            Executor::Sharded { shards, threads } => crate::shard::run_sharded(
                graph,
                states,
                shards,
                threads,
                self.max_rounds,
                self.trace,
            ),
        }
    }

    fn run_sequential<P: Protocol>(
        &self,
        graph: &CsrGraph,
        mut states: Vec<P>,
    ) -> SimOutcome<P::Output> {
        let n = graph.num_nodes();
        // The arena is the only message storage: allocated once here, then
        // reused for every round (writes happen in place, delivery is the
        // epoch parity flip).
        let arena: MessageArena<P::Message> = MessageArena::for_graph(graph);
        let mut halted = vec![false; n];
        let mut remaining = n;
        let mut round: u32 = 0;
        let mut messages: u64 = 0;
        let mut perf = ExecPerf::default();
        let mut trace = self.trace.then(Vec::new);
        debug_assert!(self.max_rounds < u32::MAX - 1, "stamps reserve u32::MAX");

        while remaining > 0 && round < self.max_rounds {
            let (reader, writer) = arena.epoch(round);
            let ctx = RoundCtx { round };
            let active = remaining;
            // The reference executor is a dense scan on purpose (it is the
            // baseline the sparse sharded scheduler is measured against):
            // every resident is visited, halted ones are skipped by flag.
            perf.halted_scans += (n - active) as u64;
            perf.node_rounds += active as u64;
            let mut round_msgs: u64 = 0;
            for v in 0..n {
                if halted[v] {
                    continue;
                }
                let node = NodeId::from(v);
                let inbox = Inbox {
                    reader,
                    base: graph.node_offset(node),
                    degree: graph.degree(node),
                };
                let mut outbox = Outbox {
                    writer,
                    graph,
                    node,
                    sent: 0,
                    boundary_sent: 0,
                    wake: None,
                    route: None,
                };
                let status = states[v].round(&ctx, &inbox, &mut outbox);
                round_msgs += outbox.sent;
                perf.stamp_scans += graph.degree(node) as u64;
                if status == Status::Halt {
                    halted[v] = true;
                    remaining -= 1;
                }
            }
            messages += round_msgs;
            if let Some(t) = trace.as_mut() {
                t.push(RoundStats {
                    round,
                    active_nodes: active,
                    messages: round_msgs,
                });
            }
            round += 1;
        }

        perf.local_messages = messages;
        SimOutcome {
            outputs: states.into_iter().map(P::finish).collect(),
            rounds: round,
            messages,
            completed: remaining == 0,
            trace,
            sharding: None,
            perf,
        }
    }

    fn run_parallel<P: Protocol>(
        &self,
        graph: &CsrGraph,
        states: Vec<P>,
        threads: usize,
    ) -> SimOutcome<P::Output> {
        let n = graph.num_nodes();
        if n == 0 {
            return SimOutcome {
                outputs: Vec::new(),
                rounds: 0,
                messages: 0,
                completed: true,
                trace: self.trace.then(Vec::new),
                sharding: None,
                perf: ExecPerf::default(),
            };
        }
        if self.max_rounds == 0 {
            // Match the sequential executor's cap-before-stepping check: a
            // zero budget executes nothing (the worker loop below always
            // runs its first round before checking the cap).
            return SimOutcome {
                outputs: states.into_iter().map(P::finish).collect(),
                rounds: 0,
                messages: 0,
                completed: false,
                trace: self.trace.then(Vec::new),
                sharding: None,
                perf: ExecPerf::default(),
            };
        }
        let threads = threads.min(n);
        let arena: MessageArena<P::Message> = MessageArena::for_graph(graph);
        debug_assert!(self.max_rounds < u32::MAX - 1, "stamps reserve u32::MAX");

        // Strided node partition: worker `w` owns nodes `w, w+T, w+2T, …`.
        // Generators tend to order nodes by role (level, side), so contiguous
        // chunks would give one worker all the early-halting nodes; striding
        // balances the per-round work. States are laid out worker-major so
        // each worker still gets one contiguous `&mut` chunk.
        let mut order: Vec<u32> = Vec::with_capacity(n);
        for w in 0..threads {
            let mut k = w;
            while k < n {
                order.push(k as u32);
                k += threads;
            }
        }
        let mut permuted: Vec<P> = Vec::with_capacity(n);
        let mut tmp: Vec<Option<P>> = states.into_iter().map(Some).collect();
        for &v in &order {
            permuted.push(tmp[v as usize].take().expect("each node placed once"));
        }
        drop(tmp);
        let mut states = permuted;

        let total_halted = AtomicUsize::new(0);
        let messages = AtomicU64::new(0);
        let round_messages = AtomicU64::new(0);
        let perf_total: Mutex<ExecPerf> = Mutex::new(ExecPerf::default());
        let stop = AtomicBool::new(false);
        let completed = AtomicBool::new(false);
        let final_rounds = AtomicU32::new(0);
        // Two barrier points per round:
        //   (a) after the compute/send phase — all mailbox writes for the
        //       next round are published;
        //   (b) after worker 0 decided whether to stop — all workers agree.
        let barrier = Barrier::new(threads);
        let trace: Mutex<Vec<RoundStats>> = Mutex::new(Vec::new());
        let want_trace = self.trace;
        let max_rounds = self.max_rounds;

        // Split the worker-major state vector at each worker's node count.
        let counts: Vec<usize> = (0..threads).map(|w| (n - w).div_ceil(threads)).collect();
        let mut chunks: Vec<&mut [P]> = Vec::with_capacity(threads);
        let mut rest: &mut [P] = &mut states;
        for &c in &counts {
            let (head, tail) = rest.split_at_mut(c);
            chunks.push(head);
            rest = tail;
        }
        debug_assert!(rest.is_empty());

        crossbeam::thread::scope(|scope| {
            for (w, chunk) in chunks.drain(..).enumerate() {
                let arena = &arena;
                let barrier = &barrier;
                let total_halted = &total_halted;
                let messages = &messages;
                let round_messages = &round_messages;
                let stop = &stop;
                let completed = &completed;
                let final_rounds = &final_rounds;
                let perf_total = &perf_total;
                let trace = &trace;
                scope.spawn(move |_| {
                    let mut halted = vec![false; chunk.len()];
                    let mut round: u32 = 0;
                    let mut halted_before: usize = 0; // coordinator-only
                    let mut perf = ExecPerf::default();
                    loop {
                        let (reader, writer) = arena.epoch(round);
                        let ctx = RoundCtx { round };
                        let mut local_msgs: u64 = 0;
                        let mut newly_halted: usize = 0;
                        for (i, state) in chunk.iter_mut().enumerate() {
                            if halted[i] {
                                perf.halted_scans += 1;
                                continue;
                            }
                            let node = NodeId::from(w + i * threads);
                            let inbox = Inbox {
                                reader,
                                base: graph.node_offset(node),
                                degree: graph.degree(node),
                            };
                            let mut outbox = Outbox {
                                writer,
                                graph,
                                node,
                                sent: 0,
                                boundary_sent: 0,
                                wake: None,
                                route: None,
                            };
                            let status = state.round(&ctx, &inbox, &mut outbox);
                            local_msgs += outbox.sent;
                            perf.node_rounds += 1;
                            perf.stamp_scans += graph.degree(node) as u64;
                            if status == Status::Halt {
                                halted[i] = true;
                                newly_halted += 1;
                            }
                        }
                        perf.local_messages += local_msgs;
                        messages.fetch_add(local_msgs, Ordering::Relaxed);
                        round_messages.fetch_add(local_msgs, Ordering::Relaxed);
                        total_halted.fetch_add(newly_halted, Ordering::Relaxed);
                        // (a) all sends for round `round` are in the write buffer.
                        barrier.wait();
                        if w == 0 {
                            let halted_now = total_halted.load(Ordering::Relaxed);
                            if want_trace {
                                trace.lock().push(RoundStats {
                                    round,
                                    active_nodes: n - halted_before,
                                    messages: round_messages.swap(0, Ordering::Relaxed),
                                });
                            } else {
                                round_messages.store(0, Ordering::Relaxed);
                            }
                            halted_before = halted_now;
                            if halted_now == n {
                                completed.store(true, Ordering::Relaxed);
                                final_rounds.store(round + 1, Ordering::Relaxed);
                                stop.store(true, Ordering::Relaxed);
                            } else if round + 1 >= max_rounds {
                                final_rounds.store(round + 1, Ordering::Relaxed);
                                stop.store(true, Ordering::Relaxed);
                            }
                        }
                        // (b) stop decision is published.
                        barrier.wait();
                        if stop.load(Ordering::Relaxed) {
                            perf_total.lock().absorb(perf);
                            break;
                        }
                        round += 1;
                    }
                });
            }
        })
        .expect("simulator worker panicked");

        // Un-permute: state at worker-major position `pos` belongs to node
        // `order[pos]`.
        let mut outputs: Vec<Option<P::Output>> = (0..n).map(|_| None).collect();
        for (pos, state) in states.into_iter().enumerate() {
            outputs[order[pos] as usize] = Some(state.finish());
        }
        SimOutcome {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every node finished"))
                .collect(),
            rounds: final_rounds.load(Ordering::Relaxed),
            messages: messages.load(Ordering::Relaxed),
            completed: completed.load(Ordering::Relaxed),
            trace: want_trace.then(|| trace.into_inner()),
            sharding: None,
            perf: perf_total.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Inbox, NodeInit, Outbox, RoundCtx};
    use td_graph::gen::classic::{cycle, path, star};
    use td_graph::Port;

    /// Each node learns its BFS distance from node 0 (which knows it is the
    /// source from its input) and halts one round after its distance settles.
    struct BfsDist {
        dist: u32,
        announced: bool,
    }

    impl Protocol for BfsDist {
        type Input = bool; // am I the source?
        type Message = u32;
        type Output = u32;

        fn init(node: NodeInit<'_, bool>) -> Self {
            BfsDist {
                dist: if *node.input { 0 } else { u32::MAX },
                announced: false,
            }
        }

        fn round(
            &mut self,
            _ctx: &RoundCtx,
            inbox: &Inbox<'_, u32>,
            outbox: &mut Outbox<'_, '_, u32>,
        ) -> Status {
            for (_, &d) in inbox.iter() {
                if d + 1 < self.dist {
                    self.dist = d + 1;
                    self.announced = false;
                }
            }
            if self.dist != u32::MAX && !self.announced {
                outbox.broadcast(self.dist);
                self.announced = true;
                return Status::Continue;
            }
            if self.announced {
                Status::Halt
            } else {
                Status::Continue
            }
        }

        fn finish(self) -> u32 {
            self.dist
        }
    }

    fn bfs_inputs(n: usize) -> Vec<bool> {
        let mut v = vec![false; n];
        v[0] = true;
        v
    }

    #[test]
    fn bfs_on_path_sequential() {
        let g = path(6);
        let out = Simulator::sequential().run::<BfsDist>(&g, &bfs_inputs(6));
        assert!(out.completed);
        assert_eq!(out.outputs, vec![0, 1, 2, 3, 4, 5]);
        // Node 5 learns its distance in round 5 and halts in round 6;
        // simulator runs rounds 0..=6 → 7 rounds.
        assert_eq!(out.rounds, 7);
    }

    #[test]
    fn bfs_parallel_matches_sequential() {
        let g = cycle(31);
        let seq = Simulator::sequential().run::<BfsDist>(&g, &bfs_inputs(31));
        for threads in [1, 2, 3, 8] {
            let par = Simulator::parallel(threads).run::<BfsDist>(&g, &bfs_inputs(31));
            assert_eq!(par.outputs, seq.outputs, "threads = {threads}");
            assert_eq!(par.rounds, seq.rounds, "threads = {threads}");
            assert_eq!(par.messages, seq.messages, "threads = {threads}");
            assert!(par.completed);
        }
    }

    #[test]
    fn round_cap_reported() {
        let g = path(64);
        let out = Simulator::sequential()
            .with_max_rounds(3)
            .run::<BfsDist>(&g, &bfs_inputs(64));
        assert!(!out.completed);
        assert_eq!(out.rounds, 3);
    }

    #[test]
    fn trace_records_rounds() {
        let g = star(4);
        let out = Simulator::sequential()
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(5));
        let trace = out.trace.unwrap();
        assert_eq!(trace.len() as u32, out.rounds);
        assert_eq!(trace[0].active_nodes, 5);
        assert_eq!(trace[0].round, 0);
        let traced_msgs: u64 = trace.iter().map(|r| r.messages).sum();
        assert_eq!(traced_msgs, out.messages);
    }

    #[test]
    fn parallel_trace_matches_sequential() {
        let g = cycle(17);
        let seq = Simulator::sequential()
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(17));
        let par = Simulator::parallel(4)
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(17));
        assert_eq!(seq.trace, par.trace);
    }

    #[test]
    fn empty_graph() {
        let g = td_graph::CsrGraph::from_edges(0, &[]).unwrap();
        let out = Simulator::parallel(4).run::<BfsDist>(&g, &[]);
        assert!(out.completed);
        assert_eq!(out.rounds, 0);
        let out = Simulator::sequential().run::<BfsDist>(&g, &[]);
        assert!(out.completed);
        assert_eq!(out.rounds, 0);
    }

    /// Message delivered exactly one round later, port-addressed.
    struct PortEcho {
        degree: usize,
        received: Vec<Option<u32>>,
    }

    impl Protocol for PortEcho {
        type Input = ();
        type Message = u32;
        type Output = Vec<Option<u32>>;

        fn init(node: NodeInit<'_, ()>) -> Self {
            PortEcho {
                degree: node.degree(),
                received: vec![None; node.degree()],
            }
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            inbox: &Inbox<'_, u32>,
            outbox: &mut Outbox<'_, '_, u32>,
        ) -> Status {
            match ctx.round {
                0 => {
                    // Send my own port number on each port.
                    for p in 0..self.degree {
                        outbox.send(Port::from(p), p as u32);
                    }
                    assert!(inbox.is_empty(), "round 0 inbox must be empty");
                    Status::Continue
                }
                1 => {
                    for (p, &m) in inbox.iter() {
                        self.received[p.idx()] = Some(m);
                    }
                    Status::Halt
                }
                _ => unreachable!(),
            }
        }

        fn finish(self) -> Vec<Option<u32>> {
            self.received
        }
    }

    #[test]
    fn port_addressing_and_mirror_delivery() {
        let g = path(3); // v0 -p0- v1, v1 has ports to v0 (p0) and v2 (p1)
        let out = Simulator::sequential().run::<PortEcho>(&g, &[(); 3]);
        assert!(out.completed);
        assert_eq!(out.rounds, 2);
        // v0 hears v1's port-0 message (v1's port 0 leads to v0).
        assert_eq!(out.outputs[0], vec![Some(0)]);
        // v1 hears v0's port-0 message on its port 0 and v2's port-0 on its port 1.
        assert_eq!(out.outputs[1], vec![Some(0), Some(0)]);
        assert_eq!(out.outputs[2], vec![Some(1)]);
        assert_eq!(out.messages, 4);
    }

    /// A protocol where some nodes halt early; late messages to halted nodes
    /// are dropped silently and do not crash.
    struct HaltEarly {
        id: u32,
    }

    impl Protocol for HaltEarly {
        type Input = ();
        type Message = u32;
        type Output = u32;

        fn init(node: NodeInit<'_, ()>) -> Self {
            HaltEarly { id: node.id.0 }
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            _inbox: &Inbox<'_, u32>,
            outbox: &mut Outbox<'_, '_, u32>,
        ) -> Status {
            outbox.broadcast(self.id);
            if self.id.is_multiple_of(2) || ctx.round >= 4 {
                Status::Halt
            } else {
                Status::Continue
            }
        }

        fn finish(self) -> u32 {
            self.id
        }
    }

    #[test]
    fn staggered_halting() {
        let g = cycle(10);
        let out = Simulator::sequential().run::<HaltEarly>(&g, &[(); 10]);
        assert!(out.completed);
        assert_eq!(out.rounds, 5);
        // Even nodes sent 1 round * 2 ports, odd nodes 5 rounds * 2 ports.
        assert_eq!(out.messages, 5 * 2 + 5 * 5 * 2);
        let par = Simulator::parallel(3).run::<HaltEarly>(&g, &[(); 10]);
        assert_eq!(par.rounds, out.rounds);
        assert_eq!(par.messages, out.messages);
    }

    #[test]
    fn sharded_matches_sequential_on_every_grid_point() {
        let g = cycle(31);
        let seq = Simulator::sequential().run::<BfsDist>(&g, &bfs_inputs(31));
        for shards in [1, 2, 4, 8] {
            for threads in [1, 2, 4] {
                let sh = Simulator::sharded(shards, threads).run::<BfsDist>(&g, &bfs_inputs(31));
                assert_eq!(sh.outputs, seq.outputs, "shards {shards} threads {threads}");
                assert_eq!(sh.rounds, seq.rounds, "shards {shards} threads {threads}");
                assert_eq!(
                    sh.messages, seq.messages,
                    "shards {shards} threads {threads}"
                );
                assert!(sh.completed);
                let stats = sh.sharding.expect("sharded run reports stats");
                assert_eq!(stats.shards, shards);
            }
        }
    }

    #[test]
    fn sharded_trace_matches_sequential() {
        let g = path(23);
        let seq = Simulator::sequential()
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(23));
        let sh = Simulator::sharded(4, 2)
            .with_trace(true)
            .run::<BfsDist>(&g, &bfs_inputs(23));
        assert_eq!(seq.trace, sh.trace);
    }

    #[test]
    fn sharded_port_addressing_and_cross_shard_batches() {
        // Force every edge across shards (path + many shards) so the
        // batched boundary path carries all traffic.
        let g = path(3);
        let out = Simulator::sharded(3, 2).run::<PortEcho>(&g, &[(); 3]);
        assert!(out.completed);
        assert_eq!(out.rounds, 2);
        assert_eq!(out.outputs[0], vec![Some(0)]);
        assert_eq!(out.outputs[1], vec![Some(0), Some(0)]);
        assert_eq!(out.outputs[2], vec![Some(1)]);
        assert_eq!(out.messages, 4);
        assert!(out.sharding.unwrap().cut_edges > 0);
    }

    /// Half the cycle halts immediately, the other half keeps gossiping:
    /// the quiesced half's shards must skip rounds.
    struct HalfQuiesce {
        long: bool,
    }

    impl Protocol for HalfQuiesce {
        type Input = bool; // run long?
        type Message = u8;
        type Output = ();

        fn init(node: NodeInit<'_, bool>) -> Self {
            HalfQuiesce { long: *node.input }
        }

        fn round(
            &mut self,
            ctx: &RoundCtx,
            _inbox: &Inbox<'_, u8>,
            _outbox: &mut Outbox<'_, '_, u8>,
        ) -> Status {
            if !self.long || ctx.round >= 20 {
                Status::Halt
            } else {
                Status::Continue
            }
        }

        fn finish(self) {}
    }

    #[test]
    fn quiesced_shards_skip_rounds() {
        // Path of 32: the first 8 nodes run 21 rounds, the rest halt in
        // round 0. With 4 BFS shards (blocks of 8), shards 1-3 are
        // quiesced from round 1 on.
        let g = path(32);
        let inputs: Vec<bool> = (0..32).map(|v| v < 8).collect();
        let out = Simulator::sharded(4, 2).run::<HalfQuiesce>(&g, &inputs);
        assert!(out.completed);
        assert_eq!(out.rounds, 21);
        let stats = out.sharding.unwrap();
        // Shards 1-3 skip rounds 1..=20 -> 60 skipped shard-rounds.
        assert_eq!(stats.shard_rounds_skipped, 60);
        assert_eq!(stats.shard_rounds_stepped, 21 + 3);
        let seq = Simulator::sequential().run::<HalfQuiesce>(&g, &inputs);
        assert_eq!(seq.rounds, out.rounds);
    }

    /// The perf-counter contract behind the sparse scheduler: for the same
    /// run, the dense executors' `halted_scans` (halted residents iterated
    /// past) equals the sharded executor's `sparse_skips` (halted
    /// node-rounds never visited), node-rounds and message routing always
    /// reconcile, and the sparse executor never scans a halted node.
    #[test]
    fn sparse_scheduler_counters_mirror_dense_scan() {
        let g = path(32);
        let inputs: Vec<bool> = (0..32).map(|v| v < 8).collect();
        let seq = Simulator::sequential().run::<HalfQuiesce>(&g, &inputs);
        assert!(seq.perf.halted_scans > 0);
        assert_eq!(seq.perf.local_messages, seq.messages);
        assert_eq!(seq.perf.boundary_messages, 0);
        let par = Simulator::parallel(3).run::<HalfQuiesce>(&g, &inputs);
        assert_eq!(par.perf.halted_scans, seq.perf.halted_scans);
        assert_eq!(par.perf.node_rounds, seq.perf.node_rounds);
        for (shards, threads) in [(1usize, 1usize), (4, 2), (8, 3)] {
            let sh = Simulator::sharded(shards, threads).run::<HalfQuiesce>(&g, &inputs);
            assert_eq!(sh.rounds, seq.rounds, "{shards}x{threads}");
            assert_eq!(sh.perf.halted_scans, 0, "{shards}x{threads}");
            assert_eq!(
                sh.perf.sparse_skips, seq.perf.halted_scans,
                "{shards}x{threads}"
            );
            assert_eq!(
                sh.perf.node_rounds, seq.perf.node_rounds,
                "{shards}x{threads}"
            );
            assert_eq!(
                sh.perf.local_messages + sh.perf.boundary_messages,
                sh.messages,
                "{shards}x{threads}"
            );
            assert_eq!(sh.perf.stamp_scans, seq.perf.stamp_scans);
        }
        // Cross-shard traffic shows up as boundary messages: on a path cut
        // into singleton-ish shards, some sends must cross.
        let g = path(4);
        let out = Simulator::sharded(4, 2).run::<PortEcho>(&g, &[(); 4]);
        assert!(out.perf.boundary_messages > 0);
        assert_eq!(
            out.perf.local_messages + out.perf.boundary_messages,
            out.messages
        );
    }

    #[test]
    fn sharded_empty_graph_and_more_shards_than_nodes() {
        let g = td_graph::CsrGraph::from_edges(0, &[]).unwrap();
        let out = Simulator::sharded(4, 4).run::<BfsDist>(&g, &[]);
        assert!(out.completed);
        assert_eq!(out.rounds, 0);
        let g = path(3);
        let out = Simulator::sharded(8, 8).run::<BfsDist>(&g, &bfs_inputs(3));
        let seq = Simulator::sequential().run::<BfsDist>(&g, &bfs_inputs(3));
        assert_eq!(out.outputs, seq.outputs);
        assert_eq!(out.rounds, seq.rounds);
        assert_eq!(out.messages, seq.messages);
    }

    #[test]
    fn sharded_round_cap_reported() {
        let g = path(64);
        let out = Simulator::sharded(4, 2)
            .with_max_rounds(3)
            .run::<BfsDist>(&g, &bfs_inputs(64));
        assert!(!out.completed);
        assert_eq!(out.rounds, 3);
    }

    #[test]
    fn zero_round_cap_is_executor_independent() {
        let g = path(8);
        let seq = Simulator::sequential()
            .with_max_rounds(0)
            .run::<BfsDist>(&g, &bfs_inputs(8));
        for sim in [
            Simulator::parallel(3).with_max_rounds(0),
            Simulator::sharded(4, 2).with_max_rounds(0),
        ] {
            let out = sim.run::<BfsDist>(&g, &bfs_inputs(8));
            assert_eq!(out.rounds, seq.rounds);
            assert_eq!(out.rounds, 0);
            assert_eq!(out.messages, 0);
            assert!(!out.completed);
            assert_eq!(out.outputs, seq.outputs);
        }
    }
}
