//! Single-producer single-consumer rings of round-stamped message batches:
//! the boundary plane of the pinned-worker sharded executor.
//!
//! One [`BatchRing`] exists per *directed, cross-worker* shard pair with at
//! least one cut edge. The worker owning the source shard is the only
//! producer, the worker owning the destination shard is the only consumer —
//! that pairing is fixed for the whole run (threads own shards long-term),
//! which is what makes the SPSC discipline structural rather than policed.
//!
//! ## Why a ring of *batches*, not messages
//!
//! The epoch protocol (see [`crate::shard`]) synchronizes at round
//! granularity: a shard may step round `r` once every in-neighbor has
//! finished round `r - 1`. All a producer has to publish per round is
//! therefore *one* batch — the `(local slot, payload)` pairs its round-`r`
//! compute emitted toward that destination — and all a consumer has to do
//! is drain whole batches. A batch push is a single `Vec` swap plus one
//! release store; per-message atomics never happen.
//!
//! ## Capacity is a protocol invariant, not a tuning knob
//!
//! Neighboring shards can never drift more than one round apart (shard
//! adjacency is symmetric on an undirected graph, so the gate works both
//! ways). Hence at most two batches per ring are ever unconsumed while both
//! endpoints live — rounds `r` and `r + 1` of a consumer about to step
//! `r + 1` — plus at most one in-flight batch racing a destination that
//! just retired. [`RING_CAP`] = 4 leaves headroom; a full ring therefore
//! signals "consumer retired mid-push", and the producer re-checks the
//! retirement flag instead of spinning forever (see
//! [`crate::shard`]'s publish loop).
//!
//! ## Memory reuse
//!
//! Batch vectors shuttle between producer staging and ring cells by `swap`:
//! the producer swaps its filled staging vector into the cell and takes the
//! previously drained (empty, capacity-retaining) one back. After warm-up
//! the boundary plane allocates nothing.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Ring capacity in batches. See the module docs for why 4 is an invariant
/// bound (≤ 2 live + ≤ 1 racing a retirement), not a tunable.
pub(crate) const RING_CAP: usize = 4;

/// One round's worth of boundary traffic for a (src shard, dst shard) pair:
/// the round it was produced in, plus `(destination-local slot, payload)`
/// pairs in send order.
struct Batch<M> {
    round: u32,
    items: Vec<(u32, M)>,
}

/// A bounded SPSC ring of round-stamped batches.
///
/// # Safety contract
/// At most one thread may call the producer methods ([`BatchRing::try_push`])
/// and at most one thread the consumer methods ([`BatchRing::pop_upto`],
/// [`BatchRing::discard_all`]) over the ring's lifetime. The pinned-worker
/// executor guarantees this structurally (fixed shard→worker ownership).
pub(crate) struct BatchRing<M> {
    cells: Box<[UnsafeCell<Batch<M>>]>,
    /// Consumer cursor: next unread cell. Monotonic; cell index is `% cap`.
    head: AtomicU64,
    /// Producer cursor: next free cell. Monotonic; cell index is `% cap`.
    tail: AtomicU64,
}

// SAFETY: the cells are accessed only under the one-producer/one-consumer
// contract above; the head/tail acquire-release pair orders every cell
// access (a cell is touched by the producer only while `tail - head < cap`
// holds on its index, and by the consumer only while `head < tail`).
unsafe impl<M: Send> Sync for BatchRing<M> {}

impl<M> BatchRing<M> {
    /// An empty ring with [`RING_CAP`] batch cells.
    pub(crate) fn new() -> Self {
        BatchRing {
            cells: (0..RING_CAP)
                .map(|_| {
                    UnsafeCell::new(Batch {
                        round: 0,
                        items: Vec::new(),
                    })
                })
                .collect(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }

    /// Producer: publishes `staging` as the batch of `round`, swapping the
    /// cell's previously drained vector back into `staging` (empty, capacity
    /// retained). Returns `false` without touching `staging` if the ring is
    /// full — the caller decides whether to spin or to drop (destination
    /// retired).
    ///
    /// # Safety
    /// Caller is the ring's unique producer.
    pub(crate) unsafe fn try_push(&self, round: u32, staging: &mut Vec<(u32, M)>) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's release in `advance_head`: the
        // cell we are about to overwrite must be fully drained first.
        let head = self.head.load(Ordering::Acquire);
        if tail - head >= RING_CAP as u64 {
            return false;
        }
        let cell = &mut *self.cells[(tail % RING_CAP as u64) as usize].get();
        cell.round = round;
        std::mem::swap(&mut cell.items, staging);
        // Release publishes the cell contents to the consumer.
        self.tail.store(tail + 1, Ordering::Release);
        true
    }

    /// Consumer: drains every pending batch stamped `<= upto`, front to
    /// back, calling `drain(round, items)` per batch. `items` is handed out
    /// `&mut` so the callee empties it in place (capacity stays in the cell
    /// for the producer to reuse). Batches stamped later than `upto` stay
    /// queued. Returns the number of batches drained.
    ///
    /// # Safety
    /// Caller is the ring's unique consumer.
    pub(crate) unsafe fn pop_upto(
        &self,
        upto: u32,
        mut drain: impl FnMut(u32, &mut Vec<(u32, M)>),
    ) -> usize {
        let mut popped = 0;
        loop {
            let head = self.head.load(Ordering::Relaxed);
            // Acquire pairs with the producer's release in `try_push`.
            let tail = self.tail.load(Ordering::Acquire);
            if head == tail {
                return popped;
            }
            let cell = &mut *self.cells[(head % RING_CAP as u64) as usize].get();
            if cell.round > upto {
                return popped;
            }
            drain(cell.round, &mut cell.items);
            debug_assert!(cell.items.is_empty(), "drain must empty the batch");
            // Release hands the (drained) cell back to the producer.
            self.head.store(head + 1, Ordering::Release);
            popped += 1;
        }
    }

    /// Consumer: drops every pending batch regardless of round — the
    /// drain-on-quiesce step of shard retirement. Payloads are dropped,
    /// vector capacity stays in the cells.
    ///
    /// # Safety
    /// Caller is the ring's unique consumer.
    pub(crate) unsafe fn discard_all(&self) -> usize {
        self.pop_upto(u32::MAX, |_, items| items.clear())
    }

    /// Number of pending batches (test/diagnostic view; racy by nature).
    #[cfg(test)]
    fn len(&self) -> usize {
        (self.tail.load(Ordering::Acquire) - self.head.load(Ordering::Acquire)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(vals: &[u32]) -> Vec<(u32, u32)> {
        vals.iter().map(|&v| (v, v * 10)).collect()
    }

    /// Cursors are monotonic u64s and the cell index wraps: pushing and
    /// popping far past the capacity must keep round-trip fidelity.
    #[test]
    fn wraparound_preserves_batches() {
        let ring: BatchRing<u32> = BatchRing::new();
        let mut staging: Vec<(u32, u32)> = Vec::new();
        for round in 0..10 * RING_CAP as u32 {
            staging.extend(batch(&[round, round + 1]));
            // SAFETY: single thread is both producer and consumer.
            unsafe {
                assert!(ring.try_push(round, &mut staging));
                assert!(staging.is_empty(), "push must take the staging vec");
                let mut seen = Vec::new();
                let popped = ring.pop_upto(round, |r, items| {
                    seen.push((r, std::mem::take(items)));
                });
                assert_eq!(popped, 1);
                assert_eq!(seen, vec![(round, batch(&[round, round + 1]))]);
            }
        }
        assert_eq!(ring.len(), 0);
    }

    /// Backpressure: a full ring refuses the push and leaves the staging
    /// vector untouched; one pop frees exactly one cell.
    #[test]
    fn backpressure_full_ring_rejects_push() {
        let ring: BatchRing<u32> = BatchRing::new();
        let mut staging: Vec<(u32, u32)> = Vec::new();
        unsafe {
            for round in 0..RING_CAP as u32 {
                staging.push((round, 0));
                assert!(ring.try_push(round, &mut staging));
            }
            staging.push((99, 0));
            assert!(!ring.try_push(RING_CAP as u32, &mut staging));
            assert_eq!(staging, vec![(99, 0)], "rejected push must not consume");
            // Draining one batch frees one cell.
            assert_eq!(ring.pop_upto(0, |_, items| items.clear()), 1);
            assert!(ring.try_push(RING_CAP as u32, &mut staging));
            assert_eq!(ring.len(), RING_CAP);
        }
    }

    /// Round gating: `pop_upto(r)` must stop in front of a batch stamped
    /// `r + 1` — that batch belongs to a round the consumer has not
    /// synchronized with yet.
    #[test]
    fn pop_respects_round_gate() {
        let ring: BatchRing<u32> = BatchRing::new();
        let mut staging = batch(&[1]);
        unsafe {
            assert!(ring.try_push(7, &mut staging));
            staging.extend(batch(&[2]));
            assert!(ring.try_push(8, &mut staging));
            let mut rounds = Vec::new();
            assert_eq!(
                ring.pop_upto(7, |r, items| {
                    rounds.push(r);
                    items.clear();
                }),
                1
            );
            assert_eq!(rounds, vec![7]);
            assert_eq!(ring.len(), 1, "round-8 batch must stay queued");
            assert_eq!(ring.pop_upto(8, |_, items| items.clear()), 1);
        }
    }

    /// Drain-on-quiesce: retirement discards everything pending, including
    /// batches stamped beyond any round the consumer reached, and the
    /// capacity of the cell vectors survives for producer reuse.
    #[test]
    fn discard_all_empties_ring() {
        let ring: BatchRing<u32> = BatchRing::new();
        let mut staging = batch(&[1, 2, 3]);
        unsafe {
            assert!(ring.try_push(5, &mut staging));
            staging.extend(batch(&[4]));
            assert!(ring.try_push(6, &mut staging));
            assert_eq!(ring.discard_all(), 2);
            assert_eq!(ring.len(), 0);
            // Pushing past the wrap point lands in a cell drained above;
            // its vector (empty, capacity retained) swaps back to the
            // producer for reuse.
            for r in 7..10 {
                staging.extend(batch(&[9]));
                assert!(ring.try_push(r, &mut staging));
            }
            assert!(
                staging.capacity() >= 3,
                "swap must return a reusable vector"
            );
        }
    }

    /// Two real threads, many batches: FIFO order and payload fidelity hold
    /// under genuine concurrency, with the producer spinning on backpressure
    /// exactly as the executor's publish loop does.
    #[test]
    fn cross_thread_fifo_stress() {
        let ring: BatchRing<u64> = BatchRing::new();
        let rounds: u32 = 20_000;
        crossbeam::thread::scope(|scope| {
            let ring = &ring;
            scope.spawn(move |_| {
                let mut staging: Vec<(u32, u64)> = Vec::new();
                for r in 0..rounds {
                    staging.push((r, r as u64 * 3 + 1));
                    // SAFETY: this thread is the unique producer.
                    while !unsafe { ring.try_push(r, &mut staging) } {
                        std::hint::spin_loop();
                    }
                }
            });
            scope.spawn(move |_| {
                let mut next: u32 = 0;
                while next < rounds {
                    // SAFETY: this thread is the unique consumer.
                    unsafe {
                        ring.pop_upto(rounds, |r, items| {
                            assert_eq!(r, next, "batches must arrive in FIFO order");
                            assert_eq!(items.len(), 1);
                            let (slot, payload) = items.pop().unwrap();
                            assert_eq!(slot, r);
                            assert_eq!(payload, r as u64 * 3 + 1);
                            next += 1;
                        });
                    }
                    std::hint::spin_loop();
                }
            });
        })
        .unwrap();
    }
}
