//! Execution metrics: what an experiment measures.

/// Per-round statistics, recorded when tracing is enabled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// Round number (0-based).
    pub round: u32,
    /// Nodes that were still running at the start of this round.
    pub active_nodes: usize,
    /// Messages sent during this round.
    pub messages: u64,
}

/// Statistics of one sharded-executor run: how the partition looked and
/// how many shard-rounds the quiesced-shard retirement saved. `None` on
/// the sequential executor only — [`crate::Executor::Parallel`] is an
/// alias for the pinned-worker sharded engine and reports these too.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardExecStats {
    /// Number of shards the run used.
    pub shards: usize,
    /// Boundary edges of the partition (cross-shard traffic candidates).
    pub cut_edges: usize,
    /// Shard-rounds actually stepped (a shard stepped in one round = 1).
    pub shard_rounds_stepped: u64,
    /// Shard-rounds skipped because the shard was fully quiesced.
    pub shard_rounds_skipped: u64,
}

/// Uniform low-level work counters, collected by **every** executor (the
/// perf telemetry plane reads them; collection is a handful of integer adds
/// per stepped node, so they are always on).
///
/// The sparse-scheduling story is told by two mirrored counters:
/// [`ExecPerf::halted_scans`] is the price the dense sequential scan pays
/// for iterating past already-halted residents, while
/// [`ExecPerf::sparse_skips`] counts the halted node-rounds the
/// pinned-worker engine's node-granular active lists never touched at all.
/// For the same run the identity is exact: `halted_scans` on the
/// sequential executor equals `sparse_skips` on the engine (retired shards
/// contribute their full resident count per skipped round), and an engine
/// run reports `halted_scans == 0`. All engine counters are per-worker
/// accumulators merged once at join, so they are deterministic across
/// scheduling interleavings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecPerf {
    /// Protocol `round()` invocations (node-rounds actually stepped).
    pub node_rounds: u64,
    /// Halted residents a dense scan iterated past without stepping.
    pub halted_scans: u64,
    /// Halted node-rounds the sparse scheduler never visited.
    pub sparse_skips: u64,
    /// Messages delivered by a direct (same-arena) write.
    pub local_messages: u64,
    /// Messages routed through the batched cross-shard boundary queues.
    pub boundary_messages: u64,
    /// Arena inbox stamps exposed to stepped nodes (Σ degree over all
    /// `round()` invocations) — the read-side scan work a protocol can pay.
    pub stamp_scans: u64,
}

impl ExecPerf {
    /// Accumulates another run's counters into `self`.
    pub fn absorb(&mut self, other: ExecPerf) {
        self.node_rounds += other.node_rounds;
        self.halted_scans += other.halted_scans;
        self.sparse_skips += other.sparse_skips;
        self.local_messages += other.local_messages;
        self.boundary_messages += other.boundary_messages;
        self.stamp_scans += other.stamp_scans;
    }
}

/// The result of simulating a protocol to completion (or to the round cap).
#[derive(Clone, Debug)]
pub struct SimOutcome<O> {
    /// Local output of every node, indexed by node id.
    pub outputs: Vec<O>,
    /// Number of communication rounds executed. This is the quantity the
    /// paper's theorems bound.
    pub rounds: u32,
    /// Total messages sent over all rounds (a secondary cost measure; the
    /// LOCAL model does not charge for it, but it is interesting to report).
    pub messages: u64,
    /// True if every node halted before the round cap.
    pub completed: bool,
    /// Per-round statistics if tracing was enabled.
    pub trace: Option<Vec<RoundStats>>,
    /// Sharded-engine statistics ([`crate::Executor::Sharded`] and
    /// [`crate::Executor::Parallel`]; `None` on the sequential executor).
    pub sharding: Option<ShardExecStats>,
    /// Low-level work counters (collected by every executor).
    pub perf: ExecPerf,
}

impl<O> SimOutcome<O> {
    /// The round by which the last node halted. Panics if not completed.
    pub fn rounds_checked(&self) -> u32 {
        assert!(self.completed, "simulation hit the round cap");
        self.rounds
    }
}

/// The communication-cost summary every protocol stack reports in the same
/// shape: rounds until the last node halted, total messages sent. The
/// scenario registry and the experiment harness consume only this, so a new
/// protocol stack plugs in by implementing [`Summarize`] on its result type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Communication rounds executed.
    pub rounds: u32,
    /// Total messages sent over all rounds.
    pub messages: u64,
}

/// Anything that can report a uniform [`RunSummary`].
pub trait Summarize {
    /// The run's communication cost.
    fn summary(&self) -> RunSummary;
}

impl<O> Summarize for SimOutcome<O> {
    fn summary(&self) -> RunSummary {
        RunSummary {
            rounds: self.rounds,
            messages: self.messages,
        }
    }
}
