//! Dynamic token games: live instance mutation with incremental solution
//! repair.
//!
//! A [`DynamicGame`] holds a solved token dropping instance together with a
//! maintained index of its solution (occupancy, consumed edges, traversal
//! origins) and absorbs [`ChurnEvent`]s — token arrivals/drops and edge
//! inserts/deletes — by repairing the solution *locally* instead of
//! re-running a solver: a new token greedily descends through unconsumed
//! edges; a dropped token frees its path, and the maximality rule (output
//! rule 3) is restored by a worklist sweep that re-extends exactly the
//! tokens adjacent to the freed nodes and edges. Work is counted in nodes
//! and edges examined, so tests and experiments can compare against the
//! cost of a full recompute.
//!
//! The repair is deterministic (worklist ordered by node id, descents take
//! the smallest-id child), so any two histories ending in the same event
//! sequence produce identical solutions — the property the differential
//! tests pin down. After every event the maintained solution still
//! satisfies output rules 1–3 against [`crate::verify::verify_solution`];
//! the index is redundant state and [`DynamicGame::verify`] cross-checks it
//! against a from-scratch recomputation (the "verifier delta" — the full
//! verifier stays an independent judge, the index only accelerates repair).

use crate::game::TokenGame;
use crate::solution::{Solution, Traversal};
use crate::verify::{verify_solution, Violation};
use std::collections::BTreeSet;
use td_graph::{CsrGraph, GraphBuilder, NodeId};
use td_local::churn::{ChurnError, ChurnEvent};

/// A live token game plus its incrementally repaired solution.
pub struct DynamicGame {
    game: TokenGame,
    solution: Solution,
    /// Occupancy index: the traversal ending at each node, if any (a node
    /// is occupied iff the entry is `Some`).
    dest_of: Vec<Option<u32>>,
    /// Consumed edges, by `EdgeId`.
    used: Vec<bool>,
    /// Traversal index by origin node.
    traversal_of: Vec<Option<u32>>,
    /// Nodes + edges examined by the last repair.
    last_work: u64,
}

impl DynamicGame {
    /// Wraps an already-solved instance. Panics if the solution does not
    /// verify against the game.
    pub fn from_solved(game: TokenGame, solution: Solution) -> Self {
        verify_solution(&game, &solution).expect("seed solution must verify");
        let n = game.num_nodes();
        let mut dg = DynamicGame {
            dest_of: vec![None; n],
            used: vec![false; game.graph().num_edges()],
            traversal_of: vec![None; n],
            game,
            solution,
            last_work: 0,
        };
        dg.rebuild_index();
        dg
    }

    /// Solves `game` with the lockstep engine and wraps the result.
    pub fn new_solved(game: TokenGame) -> Self {
        let res = crate::lockstep::run(&game);
        Self::from_solved(game, res.solution)
    }

    /// The current instance.
    pub fn game(&self) -> &TokenGame {
        &self.game
    }

    /// The maintained solution.
    pub fn solution(&self) -> &Solution {
        &self.solution
    }

    /// Nodes + edges the last event's repair examined.
    pub fn last_work(&self) -> u64 {
        self.last_work
    }

    fn rebuild_index(&mut self) {
        self.dest_of = vec![None; self.game.num_nodes()];
        self.used = vec![false; self.game.graph().num_edges()];
        self.traversal_of = vec![None; self.game.num_nodes()];
        for (i, t) in self.solution.traversals.iter().enumerate() {
            self.dest_of[t.destination().idx()] = Some(i as u32);
            self.traversal_of[t.origin().idx()] = Some(i as u32);
            for w in t.path.windows(2) {
                let e = self
                    .game
                    .graph()
                    .edge_between(w[0], w[1])
                    .expect("path follows edges");
                self.used[e.idx()] = true;
            }
        }
    }

    /// Applies one event, repairs rules 1–3 locally, and returns the work
    /// (nodes + edges examined).
    pub fn apply(&mut self, event: &ChurnEvent) -> Result<u64, ChurnError> {
        self.last_work = 0;
        match *event {
            ChurnEvent::TokenArrive(v) => self.token_arrive(v),
            ChurnEvent::TokenDrop(v) => self.token_drop(v),
            ChurnEvent::EdgeInsert { u, v } => self.edge_insert(u, v),
            ChurnEvent::EdgeDelete { u, v } => self.edge_delete(u, v),
            _ => Err(ChurnError::Unsupported("token game")),
        }?;
        Ok(self.last_work)
    }

    fn token_arrive(&mut self, v: NodeId) -> Result<(), ChurnError> {
        if v.idx() >= self.game.num_nodes() {
            return Err(ChurnError::NoSuchEntity(format!("{v}")));
        }
        if self.game.has_token(v) {
            return Err(ChurnError::InvalidEvent(format!("{v} already has a token")));
        }
        self.game.set_token(v, true);
        // The new token descends greedily; adding occupancy and consuming
        // edges can only *help* everyone else's maximality.
        let path = self.descend(v);
        if path.len() == 1 && self.dest_of[v.idx()].is_some() {
            // Pinned on another token's destination (v was passed through
            // by that token's traversal): no local fix exists — fall back.
            return self.full_recompute();
        }
        let idx = self.solution.traversals.len() as u32;
        self.dest_of[path.last().unwrap().idx()] = Some(idx);
        self.traversal_of[v.idx()] = Some(idx);
        self.solution.traversals.push(Traversal { path });
        Ok(())
    }

    fn token_drop(&mut self, v: NodeId) -> Result<(), ChurnError> {
        let Some(ti) = self.traversal_of.get(v.idx()).copied().flatten() else {
            return Err(ChurnError::NoSuchEntity(format!("no token origin at {v}")));
        };
        self.game.set_token(v, false);
        let t = self.solution.traversals.swap_remove(ti as usize);
        self.traversal_of[v.idx()] = None;
        // Free the traversal's footprint first (the swapped-in traversal
        // may have its destination anywhere, including at `t`'s origin).
        let dest = t.destination();
        self.dest_of[dest.idx()] = None;
        if let Some(moved) = self.solution.traversals.get(ti as usize) {
            self.traversal_of[moved.origin().idx()] = Some(ti);
            self.dest_of[moved.destination().idx()] = Some(ti);
        }
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        for w in t.path.windows(2) {
            let e = self.game.graph().edge_between(w[0], w[1]).expect("edge");
            self.used[e.idx()] = false;
            dirty.insert(w[0]); // upper endpoint may now extend through it
        }
        for (_, parent) in self.game.parents(dest) {
            dirty.insert(parent);
        }
        self.restore_maximality(dirty);
        Ok(())
    }

    fn edge_insert(&mut self, u: NodeId, v: NodeId) -> Result<(), ChurnError> {
        let g = self.game.graph();
        if u.idx() >= g.num_nodes() || v.idx() >= g.num_nodes() || u == v {
            return Err(ChurnError::NoSuchEntity(format!("endpoints {u}, {v}")));
        }
        if g.edge_between(u, v).is_some() {
            return Err(ChurnError::InvalidEvent(format!(
                "edge {{{u}, {v}}} already exists"
            )));
        }
        if self.game.level(u).abs_diff(self.game.level(v)) != 1 {
            return Err(ChurnError::InvalidEvent(format!(
                "edge {{{u}, {v}}} does not join adjacent levels"
            )));
        }
        let mut edges: Vec<(u32, u32)> = g.edge_list().map(|(_, a, b)| (a.0, b.0)).collect();
        edges.push((u.0, v.0));
        self.rebuild_instance(&edges)?;
        // The only possible new rule-3 violation is through the new edge.
        let upper = if self.game.level(u) > self.game.level(v) {
            u
        } else {
            v
        };
        self.restore_maximality(BTreeSet::from([upper]));
        Ok(())
    }

    fn edge_delete(&mut self, u: NodeId, v: NodeId) -> Result<(), ChurnError> {
        let g = self.game.graph();
        let Some(del) = g.edge_between(u, v) else {
            return Err(ChurnError::NoSuchEntity(format!("edge {{{u}, {v}}}")));
        };
        let was_used = self.used[del.idx()];
        let edges: Vec<(u32, u32)> = g
            .edge_list()
            .filter(|&(e, _, _)| e != del)
            .map(|(_, a, b)| (a.0, b.0))
            .collect();
        let upper = if self.game.level(u) > self.game.level(v) {
            u
        } else {
            v
        };
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        if was_used && self.dest_of[upper.idx()].is_some() {
            // The traversal to truncate would land on another token's
            // destination: no local fix — rebuild and fall back (the stale
            // solution is discarded wholesale, so no index remap happens).
            self.rebuild_game(&edges)?;
            return self.full_recompute();
        }
        if was_used {
            // Truncate the traversal that crossed the deleted edge at the
            // upper endpoint; its freed suffix may unblock others.
            let ti = self
                .solution
                .traversals
                .iter()
                .position(|t| {
                    t.path
                        .windows(2)
                        .any(|w| (w[0], w[1]) == (upper, g.other_endpoint(del, upper)))
                })
                .expect("used edge belongs to a traversal");
            let t = &mut self.solution.traversals[ti];
            let cut = t
                .path
                .iter()
                .position(|&x| x == upper)
                .expect("upper endpoint on path");
            let freed: Vec<NodeId> = t.path.split_off(cut + 1);
            let old_dest = *freed.last().expect("suffix nonempty");
            self.dest_of[old_dest.idx()] = None;
            self.dest_of[upper.idx()] = Some(ti as u32);
            // No need to clear `used` bits here: rebuild_instance below
            // recomputes the whole index from the truncated solution.
            let mut prev = upper;
            for &x in &freed {
                dirty.insert(prev);
                prev = x;
            }
            for (_, parent) in self.game.parents(old_dest) {
                dirty.insert(parent);
            }
            dirty.insert(upper); // the truncated token may re-descend
        }
        self.rebuild_instance(&edges)?;
        self.restore_maximality(dirty);
        Ok(())
    }

    /// Rebuilds the graph (same levels/tokens) from an edge list.
    fn rebuild_game(&mut self, edges: &[(u32, u32)]) -> Result<(), ChurnError> {
        let n = self.game.num_nodes();
        let mut b = GraphBuilder::with_capacity(n, edges.len());
        for &(a, c) in edges {
            b.add_edge(NodeId(a), NodeId(c)).expect("simple edge list");
        }
        let graph: CsrGraph = b.build().expect("valid edge list");
        self.game = TokenGame::new(
            graph,
            self.game.levels().to_vec(),
            self.game.tokens().to_vec(),
        )
        .map_err(|e| ChurnError::InvalidEvent(e.to_string()))?;
        Ok(())
    }

    /// Rebuilds the graph and remaps the consumed-edge index to the new
    /// edge ids (the maintained solution must still fit the new graph).
    fn rebuild_instance(&mut self, edges: &[(u32, u32)]) -> Result<(), ChurnError> {
        self.rebuild_game(edges)?;
        // Edge ids changed wholesale: recompute the consumed-edge index
        // from the maintained solution (levels/occupancy are untouched).
        self.used = vec![false; self.game.graph().num_edges()];
        for t in &self.solution.traversals {
            for w in t.path.windows(2) {
                let e = self
                    .game
                    .graph()
                    .edge_between(w[0], w[1])
                    .expect("surviving path edge");
                self.used[e.idx()] = true;
            }
        }
        Ok(())
    }

    /// Deterministic full-recompute fallback for the rare conflicts a local
    /// patch cannot express (a token pinned on another's destination). The
    /// result depends only on the current instance, so differential runs
    /// that hit the fallback still agree.
    fn full_recompute(&mut self) -> Result<(), ChurnError> {
        let res = crate::lockstep::run(&self.game);
        self.last_work += (self.game.num_nodes() + self.game.graph().num_edges()) as u64;
        self.solution = res.solution;
        self.rebuild_index();
        Ok(())
    }

    /// Greedy descent from `from`: repeatedly move through the smallest-id
    /// unconsumed edge to an unoccupied child, consuming edges along the
    /// way. Returns the full path (possibly a singleton).
    fn descend(&mut self, from: NodeId) -> Vec<NodeId> {
        let mut path = vec![from];
        let mut cur = from;
        loop {
            let kids: Vec<(td_graph::Port, NodeId)> = self.game.children(cur).collect();
            self.last_work += 1 + kids.len() as u64;
            let mut next: Option<(NodeId, td_graph::EdgeId)> = None;
            for (p, child) in kids {
                let e = self.game.graph().edge_at(cur, p);
                if self.used[e.idx()] || self.dest_of[child.idx()].is_some() {
                    continue;
                }
                if next.is_none_or(|(c, _)| child < c) {
                    next = Some((child, e));
                }
            }
            let Some((child, e)) = next else {
                return path;
            };
            self.used[e.idx()] = true;
            path.push(child);
            cur = child;
        }
    }

    /// Restores output rule 3 around the dirty nodes: any destination with
    /// an unconsumed edge to an unoccupied child re-descends; every node it
    /// vacates puts its parents back on the worklist.
    fn restore_maximality(&mut self, mut worklist: BTreeSet<NodeId>) {
        while let Some(x) = worklist.pop_first() {
            self.last_work += 1;
            // Which traversal ends here? O(1) via the occupancy index.
            let Some(ti) = self.dest_of[x.idx()] else {
                continue;
            };
            let extension = self.descend(x);
            if extension.len() == 1 {
                continue; // already maximal
            }
            let new_dest = *extension.last().unwrap();
            self.dest_of[x.idx()] = None;
            self.dest_of[new_dest.idx()] = Some(ti);
            self.solution.traversals[ti as usize]
                .path
                .extend(&extension[1..]);
            // Vacating x may unblock its parents.
            for (_, parent) in self.game.parents(x) {
                worklist.insert(parent);
            }
        }
    }

    /// Full verification: the maintained solution satisfies rules 1–3, and
    /// the incremental index matches a from-scratch recomputation.
    pub fn verify(&self) -> Result<(), Violation> {
        verify_solution(&self.game, &self.solution)?;
        let mut dest_of: Vec<Option<u32>> = vec![None; self.game.num_nodes()];
        let mut used = vec![false; self.game.graph().num_edges()];
        for (i, t) in self.solution.traversals.iter().enumerate() {
            dest_of[t.destination().idx()] = Some(i as u32);
            for w in t.path.windows(2) {
                let e = self.game.graph().edge_between(w[0], w[1]).unwrap();
                used[e.idx()] = true;
            }
        }
        assert_eq!(dest_of, self.dest_of, "occupancy index diverged");
        assert_eq!(used, self.used, "consumed-edge index diverged");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_dynamic(seed: u64) -> DynamicGame {
        let mut rng = SmallRng::seed_from_u64(seed);
        let game = TokenGame::random(&[8, 8, 8, 8], 3, 0.5, &mut rng);
        DynamicGame::new_solved(game)
    }

    #[test]
    fn token_arrival_descends_and_verifies() {
        let mut dg = random_dynamic(1);
        let free: Vec<NodeId> = dg
            .game()
            .graph()
            .nodes()
            .filter(|&v| !dg.game().has_token(v))
            .collect();
        for v in free.into_iter().take(5) {
            dg.apply(&ChurnEvent::TokenArrive(v)).unwrap();
            dg.verify().unwrap();
        }
    }

    #[test]
    fn token_drop_restores_maximality() {
        let mut dg = random_dynamic(2);
        let origins: Vec<NodeId> = dg
            .solution()
            .traversals
            .iter()
            .map(|t| t.origin())
            .collect();
        for v in origins.into_iter().take(6) {
            dg.apply(&ChurnEvent::TokenDrop(v)).unwrap();
            dg.verify().unwrap();
        }
    }

    #[test]
    fn figure2_arrival_then_drop_roundtrip() {
        let mut dg = DynamicGame::new_solved(TokenGame::figure2());
        let before = dg.solution().traversals.len();
        // v0..v2 are bottom-level and tokenless in Figure 2.
        dg.apply(&ChurnEvent::TokenArrive(NodeId(0))).unwrap();
        dg.verify().unwrap();
        assert_eq!(dg.solution().traversals.len(), before + 1);
        dg.apply(&ChurnEvent::TokenDrop(NodeId(0))).unwrap();
        dg.verify().unwrap();
        assert_eq!(dg.solution().traversals.len(), before);
    }

    #[test]
    fn edge_churn_repairs() {
        let mut dg = random_dynamic(3);
        let mut rng = SmallRng::seed_from_u64(77);
        for step in 0..12 {
            let g = dg.game().graph();
            if rng.gen_bool(0.5) && g.num_edges() > 4 {
                let e = td_graph::EdgeId(rng.gen_range(0..g.num_edges() as u32));
                let (u, v) = g.endpoints(e);
                dg.apply(&ChurnEvent::EdgeDelete { u, v }).unwrap();
            } else {
                // Find a missing adjacent-level pair.
                let mut found = None;
                'outer: for u in g.nodes() {
                    for v in g.nodes() {
                        if u != v
                            && dg.game().level(u) == dg.game().level(v) + 1
                            && g.edge_between(u, v).is_none()
                        {
                            found = Some((u, v));
                            break 'outer;
                        }
                    }
                }
                if let Some((u, v)) = found {
                    dg.apply(&ChurnEvent::EdgeInsert { u, v }).unwrap();
                }
            }
            dg.verify().unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
    }

    #[test]
    fn repair_work_is_local() {
        // A wide instance: one token drop must not examine the world.
        let mut rng = SmallRng::seed_from_u64(4);
        let game = TokenGame::random(&[60, 60, 60], 3, 0.5, &mut rng);
        let m = game.graph().num_edges() as u64;
        let mut dg = DynamicGame::new_solved(game);
        let origin = dg.solution().traversals[0].origin();
        let work = dg.apply(&ChurnEvent::TokenDrop(origin)).unwrap();
        dg.verify().unwrap();
        assert!(
            work * 4 < m,
            "drop repair examined {work} of {m} edge-equivalents"
        );
    }

    #[test]
    fn rejects_invalid_events() {
        let mut dg = random_dynamic(5);
        let occupied_origin = dg.solution().traversals[0].origin();
        assert!(matches!(
            dg.apply(&ChurnEvent::TokenArrive(occupied_origin)),
            Err(ChurnError::InvalidEvent(_))
        ));
        let tokenless = dg
            .game()
            .graph()
            .nodes()
            .find(|&v| !dg.game().has_token(v))
            .unwrap();
        assert!(matches!(
            dg.apply(&ChurnEvent::TokenDrop(tokenless)),
            Err(ChurnError::NoSuchEntity(_))
        ));
        assert_eq!(
            dg.apply(&ChurnEvent::CustomerLeave(0)),
            Err(ChurnError::Unsupported("token game"))
        );
        // Same-level edge insert is rejected.
        let g = dg.game().graph();
        let (mut a, mut b) = (None, None);
        for v in g.nodes() {
            if dg.game().level(v) == 0 {
                match a {
                    None => a = Some(v),
                    Some(first) if b.is_none() && g.edge_between(first, v).is_none() => {
                        b = Some(v);
                    }
                    _ => {}
                }
            }
        }
        if let (Some(a), Some(b)) = (a, b) {
            assert!(matches!(
                dg.apply(&ChurnEvent::EdgeInsert { u: a, v: b }),
                Err(ChurnError::InvalidEvent(_))
            ));
        }
    }

    #[test]
    fn apply_returns_work_counter() {
        let mut dg = random_dynamic(6);
        let free = dg
            .game()
            .graph()
            .nodes()
            .find(|&v| !dg.game().has_token(v))
            .unwrap();
        let work = dg.apply(&ChurnEvent::TokenArrive(free)).unwrap();
        assert!(work >= 1);
        assert_eq!(work, dg.last_work());
    }
}
