//! # td-core — the token dropping game (paper Section 4)
//!
//! The **token dropping game** is the paper's new primitive. The input is a
//! graph whose nodes sit on levels `0..=L` with every edge joining adjacent
//! levels, plus at most one token per node. A token on level `ℓ` may move to
//! an *unoccupied* node on level `ℓ - 1` along an *unused* edge; every edge
//! may be used at most once in the whole game. The goal is to reach a stuck
//! configuration; the output is the set of token *traversals*, which must be
//! (1) edge-disjoint, (2) have pairwise distinct destinations, and (3) be
//! maximal (no stuck token has an unused edge to an unoccupied child).
//!
//! This crate provides:
//!
//! * [`TokenGame`] — validated instances, generators, and the Figure 2
//!   example instance;
//! * [`Solution`] / [`MoveLog`] — traversals, tails and extended traversals
//!   (Definition 4.3 / Figure 3), and reconstruction from move events;
//! * [`verify`] — independent verifiers for the three output rules and for
//!   the temporal dynamics (replaying moves against occupancy);
//! * [`proposal`] — the paper's distributed **proposal algorithm**
//!   (Theorem 4.1, O(L·Δ²) rounds) as a [`td_local::Protocol`];
//! * [`lockstep`] — a fast engine executing the same per-round dynamics
//!   without message objects (used for large parameter sweeps; tests pin it
//!   to the protocol);
//! * [`three_level`] — the specialised O(Δ) algorithm for games with three
//!   levels (Theorem 4.7);
//! * [`greedy`] — the trivial centralized sequential baseline;
//! * [`matching`] — maximal bipartite matching via height-2 games, the
//!   reduction behind the Ω(Δ + log n/log log n) lower bound (Theorem 4.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynamic;
pub mod game;
pub mod game_io;
pub mod greedy;
pub mod lockstep;
pub mod matching;
pub mod proposal;
pub mod solution;
pub mod three_level;
pub mod verify;

pub use dynamic::DynamicGame;
pub use game::TokenGame;
pub use solution::{MoveEvent, MoveLog, Solution, Traversal};
pub use verify::{verify_dynamics, verify_solution, Violation};
