//! The trivial centralized sequential baseline for token dropping
//! (Section 1.2: "repeatedly pick any token that can be moved downwards and
//! move it by one step").
//!
//! Used as a correctness oracle and as the sequential-work baseline in the
//! benches: it counts *individual token moves*, the quantity a centralized
//! scheduler would execute one at a time.

use crate::game::TokenGame;
use crate::solution::{MoveEvent, MoveLog, Solution};
use td_graph::NodeId;

/// Result of the greedy baseline.
#[derive(Clone, Debug)]
pub struct GreedyResult {
    /// The reconstructed traversals.
    pub solution: Solution,
    /// Every move, in execution order (each event gets its own round index,
    /// reflecting strictly sequential execution).
    pub log: MoveLog,
    /// Total number of sequential steps (== `log.len()`).
    pub steps: usize,
}

/// Runs the sequential greedy: scan nodes in id order, move any movable
/// token one step down (to its smallest-id unoccupied child along an
/// unconsumed edge), repeat until stuck.
pub fn run(game: &TokenGame) -> GreedyResult {
    let g = game.graph();
    let n = g.num_nodes();
    let mut occupied: Vec<bool> = (0..n).map(|v| game.has_token(NodeId::from(v))).collect();
    let mut consumed: Vec<bool> = vec![false; g.num_edges()];
    let mut log = MoveLog::default();
    let mut step: u32 = 0;

    // A simple worklist of candidate movers; a node re-enters when it
    // receives a token.
    let mut work: Vec<u32> = (0..n as u32).rev().collect();
    let mut queued: Vec<bool> = vec![true; n];
    while let Some(v) = work.pop() {
        queued[v as usize] = false;
        if !occupied[v as usize] {
            continue;
        }
        let node = NodeId(v);
        let mut target: Option<(td_graph::Port, NodeId)> = None;
        for (p, child) in game.children(node) {
            let e = g.edge_at(node, p);
            if consumed[e.idx()] || occupied[child.idx()] {
                continue;
            }
            if target.is_none_or(|(_, best)| child < best) {
                target = Some((p, child));
            }
        }
        if let Some((p, child)) = target {
            let e = g.edge_at(node, p);
            consumed[e.idx()] = true;
            occupied[v as usize] = false;
            occupied[child.idx()] = true;
            log.events.push(MoveEvent {
                round: step,
                from: node,
                to: child,
            });
            step += 1;
            // The moved token may move again; the vacated node's parents may
            // now move into it.
            if !queued[child.idx()] {
                queued[child.idx()] = true;
                work.push(child.0);
            }
            for (pp, parent) in game.parents(node) {
                let pe = g.edge_at(node, pp);
                if !consumed[pe.idx()] && occupied[parent.idx()] && !queued[parent.idx()] {
                    queued[parent.idx()] = true;
                    work.push(parent.0);
                }
            }
        }
    }

    let steps = log.len();
    let solution = Solution::from_moves(game, &log);
    GreedyResult {
        solution,
        log,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_dynamics, verify_solution};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use td_graph::CsrGraph;

    #[test]
    fn drops_token_down_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let game = TokenGame::new(g, vec![0, 1, 2, 3], vec![false, false, false, true]).unwrap();
        let res = run(&game);
        verify_solution(&game, &res.solution).unwrap();
        verify_dynamics(&game, &res.log).unwrap();
        assert_eq!(res.steps, 3);
        assert_eq!(
            res.solution.traversals[0].path,
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn figure2_valid() {
        let game = TokenGame::figure2();
        let res = run(&game);
        verify_solution(&game, &res.solution).unwrap();
        verify_dynamics(&game, &res.log).unwrap();
    }

    #[test]
    fn random_games_valid_and_edge_budget() {
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..25 {
            let game = TokenGame::random(&[6, 9, 9, 6, 4], 3, 0.4, &mut rng);
            let res = run(&game);
            verify_solution(&game, &res.solution).unwrap();
            verify_dynamics(&game, &res.log).unwrap();
            // Each edge is used at most once: moves <= m.
            assert!(res.steps <= game.graph().num_edges());
        }
    }

    #[test]
    fn greedy_and_lockstep_agree_on_validity_not_output() {
        // Different engines may produce different (both valid) solutions.
        let mut rng = SmallRng::seed_from_u64(18);
        let game = TokenGame::random(&[8, 8, 8], 2, 0.5, &mut rng);
        let a = run(&game);
        let b = crate::lockstep::run(&game);
        verify_solution(&game, &a.solution).unwrap();
        verify_solution(&game, &b.solution).unwrap();
        assert_eq!(a.solution.traversals.len(), b.solution.traversals.len());
    }
}
