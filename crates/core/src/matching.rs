//! Maximal bipartite matching via height-2 token dropping (Theorem 4.6).
//!
//! The paper's lower bound reduces bipartite maximal matching *to* token
//! dropping: make every side-1 node a level-1 node holding a token and every
//! side-0 node a level-0 node; the traversals of any valid solution are a
//! maximal matching. Running this reduction end-to-end (and verifying
//! maximality) certifies that the reduction works as stated, which is the
//! checkable content of the Ω(Δ + log n / log log n) bound.

use crate::game::TokenGame;
use crate::lockstep;
use td_graph::{CsrGraph, EdgeId, NodeId};

/// Computes a maximal matching of a bipartite graph by playing the height-2
/// token dropping game with the proposal algorithm.
///
/// `side[v] ∈ {0, 1}` must be a proper 2-coloring. Returns the matched edges
/// and the number of game rounds used.
pub fn maximal_matching_via_token_dropping(graph: &CsrGraph, side: &[u8]) -> (Vec<EdgeId>, u32) {
    let game = TokenGame::from_bipartite_for_matching(graph.clone(), side)
        .expect("side array must 2-color the graph");
    let res = lockstep::run(&game);
    let mut matched = Vec::new();
    for t in &res.solution.traversals {
        if t.hops() == 1 {
            let e = graph
                .edge_between(t.path[0], t.path[1])
                .expect("traversal follows an edge");
            matched.push(e);
        }
        debug_assert!(t.hops() <= 1, "height-2 games move tokens at most once");
    }
    matched.sort_unstable();
    (matched, res.rounds)
}

/// Checks that `matched` is a matching of `graph` (no shared endpoints).
pub fn is_matching(graph: &CsrGraph, matched: &[EdgeId]) -> bool {
    let mut used = vec![false; graph.num_nodes()];
    for &e in matched {
        let (u, v) = graph.endpoints(e);
        if used[u.idx()] || used[v.idx()] {
            return false;
        }
        used[u.idx()] = true;
        used[v.idx()] = true;
    }
    true
}

/// Checks that `matched` is a *maximal* matching: it is a matching and every
/// edge of the graph has at least one matched endpoint.
pub fn is_maximal_matching(graph: &CsrGraph, matched: &[EdgeId]) -> bool {
    if !is_matching(graph, matched) {
        return false;
    }
    let mut used = vec![false; graph.num_nodes()];
    for &e in matched {
        let (u, v) = graph.endpoints(e);
        used[u.idx()] = true;
        used[v.idx()] = true;
    }
    graph
        .edge_list()
        .all(|(_, u, v)| used[u.idx()] || used[v.idx()])
}

/// Size of a maximum matching, via augmenting paths (Hopcroft–Karp would be
/// overkill; this is the simple Hungarian-style O(V·E) routine). Used in
/// tests to sanity-check matching quality (maximal ≥ maximum / 2).
pub fn maximum_matching_size(graph: &CsrGraph, side: &[u8]) -> usize {
    let n = graph.num_nodes();
    let mut matched_to: Vec<Option<NodeId>> = vec![None; n];
    let mut size = 0;
    for u in graph.nodes().filter(|v| side[v.idx()] == 1) {
        let mut visited = vec![false; n];
        if augment(graph, u, &mut matched_to, &mut visited) {
            size += 1;
        }
    }
    size
}

fn augment(
    graph: &CsrGraph,
    u: NodeId,
    matched_to: &mut Vec<Option<NodeId>>,
    visited: &mut Vec<bool>,
) -> bool {
    for w in graph.neighbor_ids(u) {
        if visited[w.idx()] {
            continue;
        }
        visited[w.idx()] = true;
        let next = matched_to[w.idx()];
        if next.is_none() || augment(graph, next.unwrap(), matched_to, visited) {
            matched_to[w.idx()] = Some(u);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use td_graph::bipartite::bipartition;
    use td_graph::gen::classic::complete_bipartite;
    use td_graph::gen::random::random_bipartite;

    #[test]
    fn complete_bipartite_matching() {
        let g = complete_bipartite(4, 6);
        let side: Vec<u8> = (0..10).map(|v| if v < 4 { 1 } else { 0 }).collect();
        let (matched, _rounds) = maximal_matching_via_token_dropping(&g, &side);
        assert!(is_maximal_matching(&g, &matched));
        // K_{4,6} has a perfect matching on the smaller side; maximal
        // matchings here are maximum because every side-1 node can always
        // find a free partner... not guaranteed in general, but matching
        // size must be >= max/2 = 2.
        assert!(matched.len() >= 2);
        assert_eq!(maximum_matching_size(&g, &side), 4);
    }

    #[test]
    fn random_bipartite_maximal() {
        let mut rng = SmallRng::seed_from_u64(51);
        for trial in 0..20 {
            let customers = 30;
            let servers = 20;
            let g = random_bipartite(customers, servers, 1..=4, &mut rng);
            let bp = bipartition(&g).unwrap();
            // Customers should be side 1 (they get the tokens).
            let side: Vec<u8> = (0..g.num_nodes())
                .map(|v| if v < customers { 1 } else { 0 })
                .collect();
            // The generator guarantees customers/servers are the two sides.
            assert!(bp.verify(&g));
            let (matched, rounds) = maximal_matching_via_token_dropping(&g, &side);
            assert!(
                is_maximal_matching(&g, &matched),
                "trial {trial}: not maximal"
            );
            // Maximal matchings 2-approximate maximum matchings.
            let maximum = maximum_matching_size(&g, &side);
            assert!(2 * matched.len() >= maximum, "trial {trial}");
            // Height-2 games: rounds should be small (O(Δ)-ish in practice).
            assert!(rounds <= (g.max_degree() as u32 + 2) * 3, "trial {trial}");
        }
    }

    #[test]
    fn empty_graph_matching() {
        let g = CsrGraph::from_edges(3, &[]).unwrap();
        let side = vec![1, 0, 1];
        let (matched, _) = maximal_matching_via_token_dropping(&g, &side);
        assert!(matched.is_empty());
        assert!(is_maximal_matching(&g, &matched));
    }

    #[test]
    fn is_matching_rejects_shared_endpoint() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let edges: Vec<EdgeId> = g.edges().collect();
        assert!(!is_matching(&g, &edges));
        assert!(is_matching(&g, &edges[..1]));
    }

    #[test]
    fn is_maximal_rejects_extensible() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let e0: Vec<EdgeId> = vec![EdgeId(0)];
        assert!(is_matching(&g, &e0));
        assert!(!is_maximal_matching(&g, &e0)); // edge (2,3) uncovered
    }
}
